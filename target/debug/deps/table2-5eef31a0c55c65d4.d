/root/repo/target/debug/deps/table2-5eef31a0c55c65d4.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-5eef31a0c55c65d4.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
