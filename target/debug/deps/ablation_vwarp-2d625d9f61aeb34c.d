/root/repo/target/debug/deps/ablation_vwarp-2d625d9f61aeb34c.d: crates/bench/src/bin/ablation_vwarp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_vwarp-2d625d9f61aeb34c.rmeta: crates/bench/src/bin/ablation_vwarp.rs Cargo.toml

crates/bench/src/bin/ablation_vwarp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
