/root/repo/target/debug/deps/proptest_invariants-c130dbae698e7ecc.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-c130dbae698e7ecc: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
