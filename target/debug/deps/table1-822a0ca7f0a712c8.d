/root/repo/target/debug/deps/table1-822a0ca7f0a712c8.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-822a0ca7f0a712c8.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
