/root/repo/target/debug/deps/proptest_wire-bfee5e5934f376cb.d: tests/proptest_wire.rs

/root/repo/target/debug/deps/proptest_wire-bfee5e5934f376cb: tests/proptest_wire.rs

tests/proptest_wire.rs:
