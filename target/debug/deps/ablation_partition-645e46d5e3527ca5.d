/root/repo/target/debug/deps/ablation_partition-645e46d5e3527ca5.d: crates/bench/src/bin/ablation_partition.rs Cargo.toml

/root/repo/target/debug/deps/libablation_partition-645e46d5e3527ca5.rmeta: crates/bench/src/bin/ablation_partition.rs Cargo.toml

crates/bench/src/bin/ablation_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
