/root/repo/target/debug/deps/table3-9f291a1f5beaa304.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-9f291a1f5beaa304: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
