/root/repo/target/debug/deps/ablation_sync-4c0778fc4c6a70e6.d: crates/bench/src/bin/ablation_sync.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sync-4c0778fc4c6a70e6.rmeta: crates/bench/src/bin/ablation_sync.rs Cargo.toml

crates/bench/src/bin/ablation_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
