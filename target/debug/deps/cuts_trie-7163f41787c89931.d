/root/repo/target/debug/deps/cuts_trie-7163f41787c89931.d: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

/root/repo/target/debug/deps/libcuts_trie-7163f41787c89931.rlib: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

/root/repo/target/debug/deps/libcuts_trie-7163f41787c89931.rmeta: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

crates/trie/src/lib.rs:
crates/trie/src/chunk.rs:
crates/trie/src/csf.rs:
crates/trie/src/naive.rs:
crates/trie/src/serial.rs:
crates/trie/src/space.rs:
crates/trie/src/table.rs:
crates/trie/src/trie.rs:
