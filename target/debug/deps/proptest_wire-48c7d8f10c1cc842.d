/root/repo/target/debug/deps/proptest_wire-48c7d8f10c1cc842.d: tests/proptest_wire.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_wire-48c7d8f10c1cc842.rmeta: tests/proptest_wire.rs Cargo.toml

tests/proptest_wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
