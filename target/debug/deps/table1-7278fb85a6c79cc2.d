/root/repo/target/debug/deps/table1-7278fb85a6c79cc2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-7278fb85a6c79cc2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
