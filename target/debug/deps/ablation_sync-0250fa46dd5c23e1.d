/root/repo/target/debug/deps/ablation_sync-0250fa46dd5c23e1.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/debug/deps/ablation_sync-0250fa46dd5c23e1: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:
