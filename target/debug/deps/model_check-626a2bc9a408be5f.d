/root/repo/target/debug/deps/model_check-626a2bc9a408be5f.d: crates/bench/src/bin/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-626a2bc9a408be5f.rmeta: crates/bench/src/bin/model_check.rs Cargo.toml

crates/bench/src/bin/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
