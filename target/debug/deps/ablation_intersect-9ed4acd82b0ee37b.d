/root/repo/target/debug/deps/ablation_intersect-9ed4acd82b0ee37b.d: crates/bench/src/bin/ablation_intersect.rs

/root/repo/target/debug/deps/ablation_intersect-9ed4acd82b0ee37b: crates/bench/src/bin/ablation_intersect.rs

crates/bench/src/bin/ablation_intersect.rs:
