/root/repo/target/debug/deps/dist_equivalence-b4b94f8f79b43b30.d: tests/dist_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libdist_equivalence-b4b94f8f79b43b30.rmeta: tests/dist_equivalence.rs Cargo.toml

tests/dist_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
