/root/repo/target/debug/deps/distributed-615f2088b82d66b4.d: crates/bench/benches/distributed.rs Cargo.toml

/root/repo/target/debug/deps/libdistributed-615f2088b82d66b4.rmeta: crates/bench/benches/distributed.rs Cargo.toml

crates/bench/benches/distributed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
