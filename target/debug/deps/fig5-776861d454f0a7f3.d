/root/repo/target/debug/deps/fig5-776861d454f0a7f3.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-776861d454f0a7f3.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
