/root/repo/target/debug/deps/fig2c-aa019386e8a4f535.d: crates/bench/src/bin/fig2c.rs

/root/repo/target/debug/deps/fig2c-aa019386e8a4f535: crates/bench/src/bin/fig2c.rs

crates/bench/src/bin/fig2c.rs:
