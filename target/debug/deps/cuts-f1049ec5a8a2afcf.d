/root/repo/target/debug/deps/cuts-f1049ec5a8a2afcf.d: src/lib.rs

/root/repo/target/debug/deps/libcuts-f1049ec5a8a2afcf.rlib: src/lib.rs

/root/repo/target/debug/deps/libcuts-f1049ec5a8a2afcf.rmeta: src/lib.rs

src/lib.rs:
