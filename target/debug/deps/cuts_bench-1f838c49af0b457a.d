/root/repo/target/debug/deps/cuts_bench-1f838c49af0b457a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_bench-1f838c49af0b457a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
