/root/repo/target/debug/deps/fig5-50a1619b1d503e8c.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-50a1619b1d503e8c.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
