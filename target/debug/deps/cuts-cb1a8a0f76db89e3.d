/root/repo/target/debug/deps/cuts-cb1a8a0f76db89e3.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cuts-cb1a8a0f76db89e3: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
