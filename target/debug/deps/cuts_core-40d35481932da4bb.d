/root/repo/target/debug/deps/cuts_core-40d35481932da4bb.d: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libcuts_core-40d35481932da4bb.rlib: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libcuts_core-40d35481932da4bb.rmeta: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/complexity.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/intersect.rs:
crates/core/src/kernels.rs:
crates/core/src/order.rs:
crates/core/src/reference.rs:
crates/core/src/result.rs:
