/root/repo/target/debug/deps/end_to_end-d8795cb99f0e2595.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d8795cb99f0e2595: tests/end_to_end.rs

tests/end_to_end.rs:
