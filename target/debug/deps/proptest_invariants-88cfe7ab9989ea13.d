/root/repo/target/debug/deps/proptest_invariants-88cfe7ab9989ea13.d: tests/proptest_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_invariants-88cfe7ab9989ea13.rmeta: tests/proptest_invariants.rs Cargo.toml

tests/proptest_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
