/root/repo/target/debug/deps/labeled_matching-967f94a2a399598c.d: tests/labeled_matching.rs Cargo.toml

/root/repo/target/debug/deps/liblabeled_matching-967f94a2a399598c.rmeta: tests/labeled_matching.rs Cargo.toml

tests/labeled_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
