/root/repo/target/debug/deps/ablation_intersect-e65bc216c9547966.d: crates/bench/src/bin/ablation_intersect.rs Cargo.toml

/root/repo/target/debug/deps/libablation_intersect-e65bc216c9547966.rmeta: crates/bench/src/bin/ablation_intersect.rs Cargo.toml

crates/bench/src/bin/ablation_intersect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
