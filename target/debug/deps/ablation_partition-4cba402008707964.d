/root/repo/target/debug/deps/ablation_partition-4cba402008707964.d: crates/bench/src/bin/ablation_partition.rs

/root/repo/target/debug/deps/ablation_partition-4cba402008707964: crates/bench/src/bin/ablation_partition.rs

crates/bench/src/bin/ablation_partition.rs:
