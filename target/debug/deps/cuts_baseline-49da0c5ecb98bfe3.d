/root/repo/target/debug/deps/cuts_baseline-49da0c5ecb98bfe3.d: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

/root/repo/target/debug/deps/cuts_baseline-49da0c5ecb98bfe3: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

crates/baseline/src/lib.rs:
crates/baseline/src/error.rs:
crates/baseline/src/gsi.rs:
crates/baseline/src/gunrock.rs:
crates/baseline/src/vf2.rs:
