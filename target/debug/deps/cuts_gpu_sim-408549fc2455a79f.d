/root/repo/target/debug/deps/cuts_gpu_sim-408549fc2455a79f.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

/root/repo/target/debug/deps/cuts_gpu_sim-408549fc2455a79f: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/primitives.rs:
