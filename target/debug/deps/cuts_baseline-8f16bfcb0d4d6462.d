/root/repo/target/debug/deps/cuts_baseline-8f16bfcb0d4d6462.d: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_baseline-8f16bfcb0d4d6462.rmeta: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/error.rs:
crates/baseline/src/gsi.rs:
crates/baseline/src/gunrock.rs:
crates/baseline/src/vf2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
