/root/repo/target/debug/deps/fault_recovery-5d5ffc59a07677c3.d: tests/fault_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libfault_recovery-5d5ffc59a07677c3.rmeta: tests/fault_recovery.rs Cargo.toml

tests/fault_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
