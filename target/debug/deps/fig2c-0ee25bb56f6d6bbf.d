/root/repo/target/debug/deps/fig2c-0ee25bb56f6d6bbf.d: crates/bench/src/bin/fig2c.rs Cargo.toml

/root/repo/target/debug/deps/libfig2c-0ee25bb56f6d6bbf.rmeta: crates/bench/src/bin/fig2c.rs Cargo.toml

crates/bench/src/bin/fig2c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
