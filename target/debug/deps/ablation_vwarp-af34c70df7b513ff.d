/root/repo/target/debug/deps/ablation_vwarp-af34c70df7b513ff.d: crates/bench/src/bin/ablation_vwarp.rs Cargo.toml

/root/repo/target/debug/deps/libablation_vwarp-af34c70df7b513ff.rmeta: crates/bench/src/bin/ablation_vwarp.rs Cargo.toml

crates/bench/src/bin/ablation_vwarp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
