/root/repo/target/debug/deps/ablation_chunk-81848c5aabbe154b.d: crates/bench/src/bin/ablation_chunk.rs

/root/repo/target/debug/deps/ablation_chunk-81848c5aabbe154b: crates/bench/src/bin/ablation_chunk.rs

crates/bench/src/bin/ablation_chunk.rs:
