/root/repo/target/debug/deps/cuts_baseline-aac6e805a4af73f6.d: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_baseline-aac6e805a4af73f6.rmeta: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs Cargo.toml

crates/baseline/src/lib.rs:
crates/baseline/src/error.rs:
crates/baseline/src/gsi.rs:
crates/baseline/src/gunrock.rs:
crates/baseline/src/vf2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
