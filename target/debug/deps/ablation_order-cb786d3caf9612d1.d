/root/repo/target/debug/deps/ablation_order-cb786d3caf9612d1.d: crates/bench/src/bin/ablation_order.rs

/root/repo/target/debug/deps/ablation_order-cb786d3caf9612d1: crates/bench/src/bin/ablation_order.rs

crates/bench/src/bin/ablation_order.rs:
