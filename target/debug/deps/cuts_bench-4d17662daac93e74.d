/root/repo/target/debug/deps/cuts_bench-4d17662daac93e74.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_bench-4d17662daac93e74.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
