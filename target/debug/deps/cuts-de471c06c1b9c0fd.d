/root/repo/target/debug/deps/cuts-de471c06c1b9c0fd.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/cuts-de471c06c1b9c0fd: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
