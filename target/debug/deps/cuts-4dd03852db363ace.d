/root/repo/target/debug/deps/cuts-4dd03852db363ace.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcuts-4dd03852db363ace.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
