/root/repo/target/debug/deps/fig4-247c13cc23efe04d.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-247c13cc23efe04d.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
