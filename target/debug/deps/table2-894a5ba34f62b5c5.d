/root/repo/target/debug/deps/table2-894a5ba34f62b5c5.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-894a5ba34f62b5c5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
