/root/repo/target/debug/deps/fig5-17d5ff710bbc87be.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-17d5ff710bbc87be: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
