/root/repo/target/debug/deps/cuts_graph-5b5027545e7070d8.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/canonical.rs crates/graph/src/components.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/classic.rs crates/graph/src/generators/er.rs crates/graph/src/generators/mesh.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/rmat.rs crates/graph/src/generators/road.rs crates/graph/src/graph.rs crates/graph/src/labels.rs crates/graph/src/query_gen.rs crates/graph/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_graph-5b5027545e7070d8.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/canonical.rs crates/graph/src/components.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/generators/mod.rs crates/graph/src/generators/classic.rs crates/graph/src/generators/er.rs crates/graph/src/generators/mesh.rs crates/graph/src/generators/powerlaw.rs crates/graph/src/generators/rmat.rs crates/graph/src/generators/road.rs crates/graph/src/graph.rs crates/graph/src/labels.rs crates/graph/src/query_gen.rs crates/graph/src/stats.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/canonical.rs:
crates/graph/src/components.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/edgelist.rs:
crates/graph/src/generators/mod.rs:
crates/graph/src/generators/classic.rs:
crates/graph/src/generators/er.rs:
crates/graph/src/generators/mesh.rs:
crates/graph/src/generators/powerlaw.rs:
crates/graph/src/generators/rmat.rs:
crates/graph/src/generators/road.rs:
crates/graph/src/graph.rs:
crates/graph/src/labels.rs:
crates/graph/src/query_gen.rs:
crates/graph/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
