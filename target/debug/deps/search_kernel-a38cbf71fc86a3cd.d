/root/repo/target/debug/deps/search_kernel-a38cbf71fc86a3cd.d: crates/bench/benches/search_kernel.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_kernel-a38cbf71fc86a3cd.rmeta: crates/bench/benches/search_kernel.rs Cargo.toml

crates/bench/benches/search_kernel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
