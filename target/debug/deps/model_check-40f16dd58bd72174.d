/root/repo/target/debug/deps/model_check-40f16dd58bd72174.d: crates/bench/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-40f16dd58bd72174: crates/bench/src/bin/model_check.rs

crates/bench/src/bin/model_check.rs:
