/root/repo/target/debug/deps/cuts_bench-54797cc22e144c90.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cuts_bench-54797cc22e144c90: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
