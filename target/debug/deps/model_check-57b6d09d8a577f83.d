/root/repo/target/debug/deps/model_check-57b6d09d8a577f83.d: crates/bench/src/bin/model_check.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_check-57b6d09d8a577f83.rmeta: crates/bench/src/bin/model_check.rs Cargo.toml

crates/bench/src/bin/model_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
