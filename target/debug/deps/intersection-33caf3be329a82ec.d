/root/repo/target/debug/deps/intersection-33caf3be329a82ec.d: crates/bench/benches/intersection.rs Cargo.toml

/root/repo/target/debug/deps/libintersection-33caf3be329a82ec.rmeta: crates/bench/benches/intersection.rs Cargo.toml

crates/bench/benches/intersection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
