/root/repo/target/debug/deps/cuts_dist-d7d66c0f7cf5717d.d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/debug/deps/cuts_dist-d7d66c0f7cf5717d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

crates/dist/src/lib.rs:
crates/dist/src/config.rs:
crates/dist/src/fault.rs:
crates/dist/src/ledger.rs:
crates/dist/src/metrics.rs:
crates/dist/src/mpi.rs:
crates/dist/src/protocol.rs:
crates/dist/src/runner.rs:
crates/dist/src/sync_runner.rs:
crates/dist/src/worker.rs:
