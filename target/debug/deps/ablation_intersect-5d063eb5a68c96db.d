/root/repo/target/debug/deps/ablation_intersect-5d063eb5a68c96db.d: crates/bench/src/bin/ablation_intersect.rs Cargo.toml

/root/repo/target/debug/deps/libablation_intersect-5d063eb5a68c96db.rmeta: crates/bench/src/bin/ablation_intersect.rs Cargo.toml

crates/bench/src/bin/ablation_intersect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
