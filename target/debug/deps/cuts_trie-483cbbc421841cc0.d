/root/repo/target/debug/deps/cuts_trie-483cbbc421841cc0.d: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_trie-483cbbc421841cc0.rmeta: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs Cargo.toml

crates/trie/src/lib.rs:
crates/trie/src/chunk.rs:
crates/trie/src/csf.rs:
crates/trie/src/naive.rs:
crates/trie/src/serial.rs:
crates/trie/src/space.rs:
crates/trie/src/table.rs:
crates/trie/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
