/root/repo/target/debug/deps/cuts-10667ea8473bfdb6.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libcuts-10667ea8473bfdb6.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
