/root/repo/target/debug/deps/dist_equivalence-3ea6b6a433630685.d: tests/dist_equivalence.rs

/root/repo/target/debug/deps/dist_equivalence-3ea6b6a433630685: tests/dist_equivalence.rs

tests/dist_equivalence.rs:
