/root/repo/target/debug/deps/cuts_bench-73612ac3d2e694d1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cuts_bench-73612ac3d2e694d1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
