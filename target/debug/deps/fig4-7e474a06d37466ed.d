/root/repo/target/debug/deps/fig4-7e474a06d37466ed.d: crates/bench/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-7e474a06d37466ed.rmeta: crates/bench/src/bin/fig4.rs Cargo.toml

crates/bench/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
