/root/repo/target/debug/deps/cuts_gpu_sim-f6c6aa65ce76047f.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_gpu_sim-f6c6aa65ce76047f.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs Cargo.toml

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/primitives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
