/root/repo/target/debug/deps/ablation_chunk-b6213f4c32dd145b.d: crates/bench/src/bin/ablation_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libablation_chunk-b6213f4c32dd145b.rmeta: crates/bench/src/bin/ablation_chunk.rs Cargo.toml

crates/bench/src/bin/ablation_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
