/root/repo/target/debug/deps/cuts_trie-a2d276d3c59ed218.d: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_trie-a2d276d3c59ed218.rmeta: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs Cargo.toml

crates/trie/src/lib.rs:
crates/trie/src/chunk.rs:
crates/trie/src/csf.rs:
crates/trie/src/naive.rs:
crates/trie/src/serial.rs:
crates/trie/src/space.rs:
crates/trie/src/table.rs:
crates/trie/src/trie.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
