/root/repo/target/debug/deps/ablation_sync-1d707b17020505d0.d: crates/bench/src/bin/ablation_sync.rs Cargo.toml

/root/repo/target/debug/deps/libablation_sync-1d707b17020505d0.rmeta: crates/bench/src/bin/ablation_sync.rs Cargo.toml

crates/bench/src/bin/ablation_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
