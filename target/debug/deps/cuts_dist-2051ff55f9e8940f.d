/root/repo/target/debug/deps/cuts_dist-2051ff55f9e8940f.d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/debug/deps/libcuts_dist-2051ff55f9e8940f.rlib: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/debug/deps/libcuts_dist-2051ff55f9e8940f.rmeta: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

crates/dist/src/lib.rs:
crates/dist/src/config.rs:
crates/dist/src/metrics.rs:
crates/dist/src/mpi.rs:
crates/dist/src/protocol.rs:
crates/dist/src/runner.rs:
crates/dist/src/sync_runner.rs:
crates/dist/src/worker.rs:
