/root/repo/target/debug/deps/model_check-478d17f025bad82c.d: crates/bench/src/bin/model_check.rs

/root/repo/target/debug/deps/model_check-478d17f025bad82c: crates/bench/src/bin/model_check.rs

crates/bench/src/bin/model_check.rs:
