/root/repo/target/debug/deps/end_to_end-d41de977046ad5de.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d41de977046ad5de: tests/end_to_end.rs

tests/end_to_end.rs:
