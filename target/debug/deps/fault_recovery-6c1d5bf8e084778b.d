/root/repo/target/debug/deps/fault_recovery-6c1d5bf8e084778b.d: tests/fault_recovery.rs

/root/repo/target/debug/deps/fault_recovery-6c1d5bf8e084778b: tests/fault_recovery.rs

tests/fault_recovery.rs:
