/root/repo/target/debug/deps/ablation_order-2405797dd3d22f2d.d: crates/bench/src/bin/ablation_order.rs Cargo.toml

/root/repo/target/debug/deps/libablation_order-2405797dd3d22f2d.rmeta: crates/bench/src/bin/ablation_order.rs Cargo.toml

crates/bench/src/bin/ablation_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
