/root/repo/target/debug/deps/cuts_bench-c7c63ce58ec5533e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcuts_bench-c7c63ce58ec5533e.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcuts_bench-c7c63ce58ec5533e.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
