/root/repo/target/debug/deps/ablation_partition-cbf5efb1352d7884.d: crates/bench/src/bin/ablation_partition.rs Cargo.toml

/root/repo/target/debug/deps/libablation_partition-cbf5efb1352d7884.rmeta: crates/bench/src/bin/ablation_partition.rs Cargo.toml

crates/bench/src/bin/ablation_partition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
