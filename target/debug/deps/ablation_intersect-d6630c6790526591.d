/root/repo/target/debug/deps/ablation_intersect-d6630c6790526591.d: crates/bench/src/bin/ablation_intersect.rs

/root/repo/target/debug/deps/ablation_intersect-d6630c6790526591: crates/bench/src/bin/ablation_intersect.rs

crates/bench/src/bin/ablation_intersect.rs:
