/root/repo/target/debug/deps/cuts_gpu_sim-9c8e5f7aa2a485fd.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

/root/repo/target/debug/deps/libcuts_gpu_sim-9c8e5f7aa2a485fd.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

/root/repo/target/debug/deps/libcuts_gpu_sim-9c8e5f7aa2a485fd.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/primitives.rs:
