/root/repo/target/debug/deps/ablation_vwarp-bde785d3f00603ef.d: crates/bench/src/bin/ablation_vwarp.rs

/root/repo/target/debug/deps/ablation_vwarp-bde785d3f00603ef: crates/bench/src/bin/ablation_vwarp.rs

crates/bench/src/bin/ablation_vwarp.rs:
