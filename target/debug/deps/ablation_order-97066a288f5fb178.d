/root/repo/target/debug/deps/ablation_order-97066a288f5fb178.d: crates/bench/src/bin/ablation_order.rs

/root/repo/target/debug/deps/ablation_order-97066a288f5fb178: crates/bench/src/bin/ablation_order.rs

crates/bench/src/bin/ablation_order.rs:
