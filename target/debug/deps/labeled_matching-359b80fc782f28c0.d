/root/repo/target/debug/deps/labeled_matching-359b80fc782f28c0.d: tests/labeled_matching.rs

/root/repo/target/debug/deps/labeled_matching-359b80fc782f28c0: tests/labeled_matching.rs

tests/labeled_matching.rs:
