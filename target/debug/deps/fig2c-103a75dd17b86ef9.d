/root/repo/target/debug/deps/fig2c-103a75dd17b86ef9.d: crates/bench/src/bin/fig2c.rs

/root/repo/target/debug/deps/fig2c-103a75dd17b86ef9: crates/bench/src/bin/fig2c.rs

crates/bench/src/bin/fig2c.rs:
