/root/repo/target/debug/deps/cuts-c69a6a41cda1a7dc.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcuts-c69a6a41cda1a7dc.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
