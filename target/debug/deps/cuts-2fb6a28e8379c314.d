/root/repo/target/debug/deps/cuts-2fb6a28e8379c314.d: src/lib.rs

/root/repo/target/debug/deps/cuts-2fb6a28e8379c314: src/lib.rs

src/lib.rs:
