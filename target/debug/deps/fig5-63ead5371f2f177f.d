/root/repo/target/debug/deps/fig5-63ead5371f2f177f.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-63ead5371f2f177f: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
