/root/repo/target/debug/deps/fig4-ffc1bc2760012741.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ffc1bc2760012741: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
