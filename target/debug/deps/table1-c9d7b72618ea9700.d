/root/repo/target/debug/deps/table1-c9d7b72618ea9700.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c9d7b72618ea9700: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
