/root/repo/target/debug/deps/cuts-106cecf575e57328.d: src/lib.rs

/root/repo/target/debug/deps/cuts-106cecf575e57328: src/lib.rs

src/lib.rs:
