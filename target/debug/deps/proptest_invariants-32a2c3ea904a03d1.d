/root/repo/target/debug/deps/proptest_invariants-32a2c3ea904a03d1.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-32a2c3ea904a03d1: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
