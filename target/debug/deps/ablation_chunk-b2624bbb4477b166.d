/root/repo/target/debug/deps/ablation_chunk-b2624bbb4477b166.d: crates/bench/src/bin/ablation_chunk.rs

/root/repo/target/debug/deps/ablation_chunk-b2624bbb4477b166: crates/bench/src/bin/ablation_chunk.rs

crates/bench/src/bin/ablation_chunk.rs:
