/root/repo/target/debug/deps/ablation_partition-f6fa376142580aef.d: crates/bench/src/bin/ablation_partition.rs

/root/repo/target/debug/deps/ablation_partition-f6fa376142580aef: crates/bench/src/bin/ablation_partition.rs

crates/bench/src/bin/ablation_partition.rs:
