/root/repo/target/debug/deps/fig2c-110d47ad92d5ce53.d: crates/bench/src/bin/fig2c.rs Cargo.toml

/root/repo/target/debug/deps/libfig2c-110d47ad92d5ce53.rmeta: crates/bench/src/bin/fig2c.rs Cargo.toml

crates/bench/src/bin/fig2c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
