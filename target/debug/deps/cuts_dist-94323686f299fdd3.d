/root/repo/target/debug/deps/cuts_dist-94323686f299fdd3.d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_dist-94323686f299fdd3.rmeta: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs Cargo.toml

crates/dist/src/lib.rs:
crates/dist/src/config.rs:
crates/dist/src/fault.rs:
crates/dist/src/ledger.rs:
crates/dist/src/metrics.rs:
crates/dist/src/mpi.rs:
crates/dist/src/protocol.rs:
crates/dist/src/runner.rs:
crates/dist/src/sync_runner.rs:
crates/dist/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
