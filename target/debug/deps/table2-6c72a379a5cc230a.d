/root/repo/target/debug/deps/table2-6c72a379a5cc230a.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-6c72a379a5cc230a: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
