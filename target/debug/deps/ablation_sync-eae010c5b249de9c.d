/root/repo/target/debug/deps/ablation_sync-eae010c5b249de9c.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/debug/deps/ablation_sync-eae010c5b249de9c: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:
