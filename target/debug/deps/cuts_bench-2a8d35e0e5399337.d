/root/repo/target/debug/deps/cuts_bench-2a8d35e0e5399337.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcuts_bench-2a8d35e0e5399337.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcuts_bench-2a8d35e0e5399337.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
