/root/repo/target/debug/deps/labeled_matching-b42b39c0c44c572b.d: tests/labeled_matching.rs

/root/repo/target/debug/deps/labeled_matching-b42b39c0c44c572b: tests/labeled_matching.rs

tests/labeled_matching.rs:
