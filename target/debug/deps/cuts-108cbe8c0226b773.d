/root/repo/target/debug/deps/cuts-108cbe8c0226b773.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcuts-108cbe8c0226b773.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
