/root/repo/target/debug/deps/ablation_chunk-c10cf02b5cb958ac.d: crates/bench/src/bin/ablation_chunk.rs Cargo.toml

/root/repo/target/debug/deps/libablation_chunk-c10cf02b5cb958ac.rmeta: crates/bench/src/bin/ablation_chunk.rs Cargo.toml

crates/bench/src/bin/ablation_chunk.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
