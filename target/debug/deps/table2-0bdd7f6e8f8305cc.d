/root/repo/target/debug/deps/table2-0bdd7f6e8f8305cc.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-0bdd7f6e8f8305cc.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
