/root/repo/target/debug/deps/fig4-c2d9201fbed8187b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c2d9201fbed8187b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
