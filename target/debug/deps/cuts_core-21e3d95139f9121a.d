/root/repo/target/debug/deps/cuts_core-21e3d95139f9121a.d: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libcuts_core-21e3d95139f9121a.rmeta: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/complexity.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/intersect.rs:
crates/core/src/kernels.rs:
crates/core/src/order.rs:
crates/core/src/reference.rs:
crates/core/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
