/root/repo/target/debug/deps/ablation_vwarp-b85f797355f46573.d: crates/bench/src/bin/ablation_vwarp.rs

/root/repo/target/debug/deps/ablation_vwarp-b85f797355f46573: crates/bench/src/bin/ablation_vwarp.rs

crates/bench/src/bin/ablation_vwarp.rs:
