/root/repo/target/debug/deps/ablation_order-fbb9696b1df5cdb4.d: crates/bench/src/bin/ablation_order.rs Cargo.toml

/root/repo/target/debug/deps/libablation_order-fbb9696b1df5cdb4.rmeta: crates/bench/src/bin/ablation_order.rs Cargo.toml

crates/bench/src/bin/ablation_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
