/root/repo/target/debug/deps/table3-3b2f69da3489fd50.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-3b2f69da3489fd50.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
