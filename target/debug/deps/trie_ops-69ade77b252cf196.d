/root/repo/target/debug/deps/trie_ops-69ade77b252cf196.d: crates/bench/benches/trie_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtrie_ops-69ade77b252cf196.rmeta: crates/bench/benches/trie_ops.rs Cargo.toml

crates/bench/benches/trie_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
