/root/repo/target/debug/deps/table3-8626c57cc2c1dcbb.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-8626c57cc2c1dcbb: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
