/root/repo/target/debug/deps/cuts-66f4db5c3b4d3508.d: src/lib.rs

/root/repo/target/debug/deps/libcuts-66f4db5c3b4d3508.rlib: src/lib.rs

/root/repo/target/debug/deps/libcuts-66f4db5c3b4d3508.rmeta: src/lib.rs

src/lib.rs:
