/root/repo/target/debug/deps/cuts_baseline-7bfffd90dff0da55.d: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

/root/repo/target/debug/deps/libcuts_baseline-7bfffd90dff0da55.rlib: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

/root/repo/target/debug/deps/libcuts_baseline-7bfffd90dff0da55.rmeta: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

crates/baseline/src/lib.rs:
crates/baseline/src/error.rs:
crates/baseline/src/gsi.rs:
crates/baseline/src/gunrock.rs:
crates/baseline/src/vf2.rs:
