/root/repo/target/debug/examples/distributed_scaling-1a9cfd48033f1338.d: examples/distributed_scaling.rs

/root/repo/target/debug/examples/distributed_scaling-1a9cfd48033f1338: examples/distributed_scaling.rs

examples/distributed_scaling.rs:
