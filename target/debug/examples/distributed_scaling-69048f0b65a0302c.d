/root/repo/target/debug/examples/distributed_scaling-69048f0b65a0302c.d: examples/distributed_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_scaling-69048f0b65a0302c.rmeta: examples/distributed_scaling.rs Cargo.toml

examples/distributed_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
