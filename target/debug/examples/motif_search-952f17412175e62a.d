/root/repo/target/debug/examples/motif_search-952f17412175e62a.d: examples/motif_search.rs

/root/repo/target/debug/examples/motif_search-952f17412175e62a: examples/motif_search.rs

examples/motif_search.rs:
