/root/repo/target/debug/examples/motif_search-b17cd120c3ddf03c.d: examples/motif_search.rs Cargo.toml

/root/repo/target/debug/examples/libmotif_search-b17cd120c3ddf03c.rmeta: examples/motif_search.rs Cargo.toml

examples/motif_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
