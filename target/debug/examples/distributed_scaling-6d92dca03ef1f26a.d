/root/repo/target/debug/examples/distributed_scaling-6d92dca03ef1f26a.d: examples/distributed_scaling.rs

/root/repo/target/debug/examples/distributed_scaling-6d92dca03ef1f26a: examples/distributed_scaling.rs

examples/distributed_scaling.rs:
