/root/repo/target/debug/examples/road_patterns-a168d8fe7a09b033.d: examples/road_patterns.rs Cargo.toml

/root/repo/target/debug/examples/libroad_patterns-a168d8fe7a09b033.rmeta: examples/road_patterns.rs Cargo.toml

examples/road_patterns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
