/root/repo/target/debug/examples/social_cliques-7f3685130dddec6a.d: examples/social_cliques.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_cliques-7f3685130dddec6a.rmeta: examples/social_cliques.rs Cargo.toml

examples/social_cliques.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
