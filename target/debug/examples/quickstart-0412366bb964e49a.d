/root/repo/target/debug/examples/quickstart-0412366bb964e49a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0412366bb964e49a: examples/quickstart.rs

examples/quickstart.rs:
