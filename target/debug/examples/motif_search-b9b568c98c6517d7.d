/root/repo/target/debug/examples/motif_search-b9b568c98c6517d7.d: examples/motif_search.rs

/root/repo/target/debug/examples/motif_search-b9b568c98c6517d7: examples/motif_search.rs

examples/motif_search.rs:
