/root/repo/target/debug/examples/social_cliques-fc2121e79864cb4d.d: examples/social_cliques.rs

/root/repo/target/debug/examples/social_cliques-fc2121e79864cb4d: examples/social_cliques.rs

examples/social_cliques.rs:
