/root/repo/target/debug/examples/quickstart-df06ca6e2a57ff10.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-df06ca6e2a57ff10.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
