/root/repo/target/debug/examples/road_patterns-5d84f8f325cb01bd.d: examples/road_patterns.rs

/root/repo/target/debug/examples/road_patterns-5d84f8f325cb01bd: examples/road_patterns.rs

examples/road_patterns.rs:
