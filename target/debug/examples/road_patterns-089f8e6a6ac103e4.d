/root/repo/target/debug/examples/road_patterns-089f8e6a6ac103e4.d: examples/road_patterns.rs

/root/repo/target/debug/examples/road_patterns-089f8e6a6ac103e4: examples/road_patterns.rs

examples/road_patterns.rs:
