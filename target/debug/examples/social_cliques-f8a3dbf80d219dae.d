/root/repo/target/debug/examples/social_cliques-f8a3dbf80d219dae.d: examples/social_cliques.rs

/root/repo/target/debug/examples/social_cliques-f8a3dbf80d219dae: examples/social_cliques.rs

examples/social_cliques.rs:
