/root/repo/target/debug/examples/quickstart-d24ac533842e4d81.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d24ac533842e4d81: examples/quickstart.rs

examples/quickstart.rs:
