/root/repo/target/release/deps/table3-8b85202813f6a376.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-8b85202813f6a376: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
