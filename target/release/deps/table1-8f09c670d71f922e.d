/root/repo/target/release/deps/table1-8f09c670d71f922e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-8f09c670d71f922e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
