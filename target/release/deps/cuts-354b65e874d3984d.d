/root/repo/target/release/deps/cuts-354b65e874d3984d.d: src/lib.rs

/root/repo/target/release/deps/libcuts-354b65e874d3984d.rlib: src/lib.rs

/root/repo/target/release/deps/libcuts-354b65e874d3984d.rmeta: src/lib.rs

src/lib.rs:
