/root/repo/target/release/deps/ablation_sync-fd6fa3459d385d2a.d: crates/bench/src/bin/ablation_sync.rs

/root/repo/target/release/deps/ablation_sync-fd6fa3459d385d2a: crates/bench/src/bin/ablation_sync.rs

crates/bench/src/bin/ablation_sync.rs:
