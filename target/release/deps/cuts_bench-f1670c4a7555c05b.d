/root/repo/target/release/deps/cuts_bench-f1670c4a7555c05b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcuts_bench-f1670c4a7555c05b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libcuts_bench-f1670c4a7555c05b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
