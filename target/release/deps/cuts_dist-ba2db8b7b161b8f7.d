/root/repo/target/release/deps/cuts_dist-ba2db8b7b161b8f7.d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/release/deps/libcuts_dist-ba2db8b7b161b8f7.rlib: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/release/deps/libcuts_dist-ba2db8b7b161b8f7.rmeta: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

crates/dist/src/lib.rs:
crates/dist/src/config.rs:
crates/dist/src/metrics.rs:
crates/dist/src/mpi.rs:
crates/dist/src/protocol.rs:
crates/dist/src/runner.rs:
crates/dist/src/sync_runner.rs:
crates/dist/src/worker.rs:
