/root/repo/target/release/deps/distributed-800148ad1f51e658.d: crates/bench/benches/distributed.rs

/root/repo/target/release/deps/distributed-800148ad1f51e658: crates/bench/benches/distributed.rs

crates/bench/benches/distributed.rs:
