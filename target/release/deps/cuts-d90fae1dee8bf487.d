/root/repo/target/release/deps/cuts-d90fae1dee8bf487.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/cuts-d90fae1dee8bf487: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
