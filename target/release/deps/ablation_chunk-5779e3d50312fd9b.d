/root/repo/target/release/deps/ablation_chunk-5779e3d50312fd9b.d: crates/bench/src/bin/ablation_chunk.rs

/root/repo/target/release/deps/ablation_chunk-5779e3d50312fd9b: crates/bench/src/bin/ablation_chunk.rs

crates/bench/src/bin/ablation_chunk.rs:
