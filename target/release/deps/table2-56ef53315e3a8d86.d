/root/repo/target/release/deps/table2-56ef53315e3a8d86.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-56ef53315e3a8d86: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
