/root/repo/target/release/deps/fig2c-8ec67e1eb1bab582.d: crates/bench/src/bin/fig2c.rs

/root/repo/target/release/deps/fig2c-8ec67e1eb1bab582: crates/bench/src/bin/fig2c.rs

crates/bench/src/bin/fig2c.rs:
