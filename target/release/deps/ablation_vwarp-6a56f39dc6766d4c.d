/root/repo/target/release/deps/ablation_vwarp-6a56f39dc6766d4c.d: crates/bench/src/bin/ablation_vwarp.rs

/root/repo/target/release/deps/ablation_vwarp-6a56f39dc6766d4c: crates/bench/src/bin/ablation_vwarp.rs

crates/bench/src/bin/ablation_vwarp.rs:
