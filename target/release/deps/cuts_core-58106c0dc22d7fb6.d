/root/repo/target/release/deps/cuts_core-58106c0dc22d7fb6.d: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

/root/repo/target/release/deps/libcuts_core-58106c0dc22d7fb6.rlib: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

/root/repo/target/release/deps/libcuts_core-58106c0dc22d7fb6.rmeta: crates/core/src/lib.rs crates/core/src/complexity.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/intersect.rs crates/core/src/kernels.rs crates/core/src/order.rs crates/core/src/reference.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/complexity.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/intersect.rs:
crates/core/src/kernels.rs:
crates/core/src/order.rs:
crates/core/src/reference.rs:
crates/core/src/result.rs:
