/root/repo/target/release/deps/ablation_order-54507e5bdeff657b.d: crates/bench/src/bin/ablation_order.rs

/root/repo/target/release/deps/ablation_order-54507e5bdeff657b: crates/bench/src/bin/ablation_order.rs

crates/bench/src/bin/ablation_order.rs:
