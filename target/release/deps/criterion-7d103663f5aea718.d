/root/repo/target/release/deps/criterion-7d103663f5aea718.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7d103663f5aea718.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7d103663f5aea718.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
