/root/repo/target/release/deps/cuts-3fd34141689f14f1.d: src/lib.rs

/root/repo/target/release/deps/libcuts-3fd34141689f14f1.rlib: src/lib.rs

/root/repo/target/release/deps/libcuts-3fd34141689f14f1.rmeta: src/lib.rs

src/lib.rs:
