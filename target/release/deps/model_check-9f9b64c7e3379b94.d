/root/repo/target/release/deps/model_check-9f9b64c7e3379b94.d: crates/bench/src/bin/model_check.rs

/root/repo/target/release/deps/model_check-9f9b64c7e3379b94: crates/bench/src/bin/model_check.rs

crates/bench/src/bin/model_check.rs:
