/root/repo/target/release/deps/cuts_dist-acf7003a62c483fa.d: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/release/deps/libcuts_dist-acf7003a62c483fa.rlib: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

/root/repo/target/release/deps/libcuts_dist-acf7003a62c483fa.rmeta: crates/dist/src/lib.rs crates/dist/src/config.rs crates/dist/src/fault.rs crates/dist/src/ledger.rs crates/dist/src/metrics.rs crates/dist/src/mpi.rs crates/dist/src/protocol.rs crates/dist/src/runner.rs crates/dist/src/sync_runner.rs crates/dist/src/worker.rs

crates/dist/src/lib.rs:
crates/dist/src/config.rs:
crates/dist/src/fault.rs:
crates/dist/src/ledger.rs:
crates/dist/src/metrics.rs:
crates/dist/src/mpi.rs:
crates/dist/src/protocol.rs:
crates/dist/src/runner.rs:
crates/dist/src/sync_runner.rs:
crates/dist/src/worker.rs:
