/root/repo/target/release/deps/ablation_intersect-c0d54fbe9c06f7b9.d: crates/bench/src/bin/ablation_intersect.rs

/root/repo/target/release/deps/ablation_intersect-c0d54fbe9c06f7b9: crates/bench/src/bin/ablation_intersect.rs

crates/bench/src/bin/ablation_intersect.rs:
