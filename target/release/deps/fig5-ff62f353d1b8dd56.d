/root/repo/target/release/deps/fig5-ff62f353d1b8dd56.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-ff62f353d1b8dd56: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
