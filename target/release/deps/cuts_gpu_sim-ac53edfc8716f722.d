/root/repo/target/release/deps/cuts_gpu_sim-ac53edfc8716f722.d: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

/root/repo/target/release/deps/libcuts_gpu_sim-ac53edfc8716f722.rlib: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

/root/repo/target/release/deps/libcuts_gpu_sim-ac53edfc8716f722.rmeta: crates/gpu-sim/src/lib.rs crates/gpu-sim/src/buffer.rs crates/gpu-sim/src/config.rs crates/gpu-sim/src/cost.rs crates/gpu-sim/src/counters.rs crates/gpu-sim/src/device.rs crates/gpu-sim/src/error.rs crates/gpu-sim/src/occupancy.rs crates/gpu-sim/src/primitives.rs

crates/gpu-sim/src/lib.rs:
crates/gpu-sim/src/buffer.rs:
crates/gpu-sim/src/config.rs:
crates/gpu-sim/src/cost.rs:
crates/gpu-sim/src/counters.rs:
crates/gpu-sim/src/device.rs:
crates/gpu-sim/src/error.rs:
crates/gpu-sim/src/occupancy.rs:
crates/gpu-sim/src/primitives.rs:
