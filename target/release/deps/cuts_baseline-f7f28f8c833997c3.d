/root/repo/target/release/deps/cuts_baseline-f7f28f8c833997c3.d: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

/root/repo/target/release/deps/libcuts_baseline-f7f28f8c833997c3.rlib: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

/root/repo/target/release/deps/libcuts_baseline-f7f28f8c833997c3.rmeta: crates/baseline/src/lib.rs crates/baseline/src/error.rs crates/baseline/src/gsi.rs crates/baseline/src/gunrock.rs crates/baseline/src/vf2.rs

crates/baseline/src/lib.rs:
crates/baseline/src/error.rs:
crates/baseline/src/gsi.rs:
crates/baseline/src/gunrock.rs:
crates/baseline/src/vf2.rs:
