/root/repo/target/release/deps/ablation_partition-10fc5c5f41be3db3.d: crates/bench/src/bin/ablation_partition.rs

/root/repo/target/release/deps/ablation_partition-10fc5c5f41be3db3: crates/bench/src/bin/ablation_partition.rs

crates/bench/src/bin/ablation_partition.rs:
