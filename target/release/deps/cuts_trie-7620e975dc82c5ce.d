/root/repo/target/release/deps/cuts_trie-7620e975dc82c5ce.d: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

/root/repo/target/release/deps/libcuts_trie-7620e975dc82c5ce.rlib: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

/root/repo/target/release/deps/libcuts_trie-7620e975dc82c5ce.rmeta: crates/trie/src/lib.rs crates/trie/src/chunk.rs crates/trie/src/csf.rs crates/trie/src/naive.rs crates/trie/src/serial.rs crates/trie/src/space.rs crates/trie/src/table.rs crates/trie/src/trie.rs

crates/trie/src/lib.rs:
crates/trie/src/chunk.rs:
crates/trie/src/csf.rs:
crates/trie/src/naive.rs:
crates/trie/src/serial.rs:
crates/trie/src/space.rs:
crates/trie/src/table.rs:
crates/trie/src/trie.rs:
