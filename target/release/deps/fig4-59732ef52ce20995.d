/root/repo/target/release/deps/fig4-59732ef52ce20995.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-59732ef52ce20995: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
