//! Compressed Sparse Fibre (CSF) representation — Figure 3(B).
//!
//! CSF stores each level as a node-id array plus an index array giving each
//! entry the contiguous range of its children in the next level. It is more
//! compact than the PA/CA trie by roughly one word per entry, but — as
//! §4.1.1 explains — children of one parent must be contiguous, so building
//! it in parallel needs a two-pass count-then-write algorithm. We implement
//! it (a) to validate the trie against an independent representation and
//! (b) to account its exact word cost for the Table 1 comparison.

use crate::trie::{HostTrie, NO_PARENT};

/// A CSF-encoded path set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csf {
    /// `node_ids[l]` — candidate vertex of every entry at level `l`,
    /// children of one parent contiguous.
    pub node_ids: Vec<Vec<u32>>,
    /// `child_index[l][i] .. child_index[l][i+1]` — children of entry `i`
    /// of level `l` within `node_ids[l + 1]`. Present for every level that
    /// has a successor.
    pub child_index: Vec<Vec<u32>>,
}

impl Csf {
    /// Builds a CSF from a host trie using the two-pass strategy the paper
    /// describes for prior work: pass 1 counts children per parent, pass 2
    /// scatters after a prefix sum.
    pub fn from_host_trie(t: &HostTrie) -> Csf {
        let nl = t.levels.len();
        let mut node_ids: Vec<Vec<u32>> = Vec::with_capacity(nl);
        let mut child_index: Vec<Vec<u32>> = Vec::new();
        if nl == 0 {
            return Csf {
                node_ids,
                child_index,
            };
        }
        // Level 0 keeps its order; `perm` maps trie entry index -> position
        // within its CSF level.
        let mut perm: Vec<u32> = vec![0; t.len()];
        let l0 = t.levels[0].clone();
        node_ids.push(l0.clone().map(|i| t.ca[i]).collect());
        for (pos, i) in l0.enumerate() {
            perm[i] = pos as u32;
        }
        for l in 1..nl {
            let prev = t.levels[l - 1].clone();
            let cur = t.levels[l].clone();
            let prev_len = prev.len();
            // Pass 1: count children per parent position.
            let mut counts = vec![0u32; prev_len];
            for i in cur.clone() {
                let p = t.pa[i];
                debug_assert_ne!(p, NO_PARENT);
                counts[perm[p as usize] as usize] += 1;
            }
            // Prefix sum -> index array.
            let mut index = vec![0u32; prev_len + 1];
            for i in 0..prev_len {
                index[i + 1] = index[i] + counts[i];
            }
            // Pass 2: scatter children into contiguous per-parent slots.
            let mut cursor = index.clone();
            let mut ids = vec![0u32; cur.len()];
            for i in cur.clone() {
                let slot = &mut cursor[perm[t.pa[i] as usize] as usize];
                ids[*slot as usize] = t.ca[i];
                perm[i] = *slot;
                *slot += 1;
            }
            child_index.push(index);
            node_ids.push(ids);
        }
        Csf {
            node_ids,
            child_index,
        }
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.node_ids.len()
    }

    /// Exact storage in words: node ids plus every index array.
    pub fn words_used(&self) -> usize {
        self.node_ids.iter().map(Vec::len).sum::<usize>()
            + self.child_index.iter().map(Vec::len).sum::<usize>()
    }

    /// Expands every root-to-deepest-level path (for equivalence tests).
    pub fn full_paths(&self) -> Vec<Vec<u32>> {
        let nl = self.num_levels();
        if nl == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut stack: Vec<(usize, usize, Vec<u32>)> = (0..self.node_ids[0].len())
            .map(|i| (0usize, i, vec![self.node_ids[0][i]]))
            .collect();
        while let Some((l, i, path)) = stack.pop() {
            if l + 1 == nl {
                out.push(path);
                continue;
            }
            let lo = self.child_index[l][i] as usize;
            let hi = self.child_index[l][i + 1] as usize;
            for c in lo..hi {
                let mut p = path.clone();
                p.push(self.node_ids[l + 1][c]);
                stack.push((l + 1, c, p));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trie() -> HostTrie {
        // Interleaved children (the write order CSF cannot produce in one
        // pass): roots 0, 1; children written as (0->3), (1->2), (0->4).
        HostTrie {
            pa: vec![NO_PARENT, NO_PARENT, 0, 1, 0],
            ca: vec![10, 11, 3, 2, 4],
            levels: vec![0..2, 2..5],
        }
    }

    #[test]
    fn children_become_contiguous() {
        let csf = Csf::from_host_trie(&sample_trie());
        assert_eq!(csf.node_ids[0], vec![10, 11]);
        // Children of root 0 first (3, 4), then root 1's (2).
        assert_eq!(csf.node_ids[1], vec![3, 4, 2]);
        assert_eq!(csf.child_index[0], vec![0, 2, 3]);
    }

    #[test]
    fn paths_equivalent_to_trie() {
        let t = sample_trie();
        let csf = Csf::from_host_trie(&t);
        let mut a = csf.full_paths();
        let mut b = t.paths_at_level(1);
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn word_accounting() {
        let csf = Csf::from_host_trie(&sample_trie());
        // node ids: 2 + 3; index: 3.
        assert_eq!(csf.words_used(), 8);
    }

    #[test]
    fn three_levels() {
        let t = HostTrie {
            pa: vec![NO_PARENT, 0, 0, 1, 2],
            ca: vec![5, 6, 7, 8, 9],
            levels: vec![0..1, 1..3, 3..5],
        };
        let csf = Csf::from_host_trie(&t);
        let mut a = csf.full_paths();
        let mut b = t.paths_at_level(2);
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(csf.num_levels(), 3);
    }

    #[test]
    fn empty() {
        let csf = Csf::from_host_trie(&HostTrie::new());
        assert_eq!(csf.num_levels(), 0);
        assert!(csf.full_paths().is_empty());
        assert_eq!(csf.words_used(), 0);
    }
}
