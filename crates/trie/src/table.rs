//! The PA/CA pair table: two device arrays, one shared atomic cursor.
//!
//! Storage comes in two shapes. A *single-segment* table wraps one PA and
//! one CA buffer of arbitrary equal capacity — the original flat layout,
//! still used for host-side tries and exact-size allocations. A *chained*
//! table is built over an [`Arena`] slab class: each segment is a pair of
//! power-of-two slabs (one PA, one CA), and [`PairTable::grow_to`]
//! appends fresh segments in place — no reallocation, no copy, no
//! retry-from-scratch — while committed entries and in-flight cursors
//! stay valid. Entry `i` lives at offset `i & (seg_entries - 1)` of
//! segment `i >> seg_shift`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use cuts_gpu_sim::{Arena, Device, DeviceError, GlobalBuffer, Slab};

/// One array's worth of segment storage: a flat buffer (single-segment
/// tables) or an arena slab (chained tables).
enum SegStore {
    Buffer(GlobalBuffer),
    Slab(Slab),
}

impl SegStore {
    #[inline]
    fn capacity(&self) -> usize {
        match self {
            SegStore::Buffer(b) => b.capacity(),
            SegStore::Slab(s) => s.capacity(),
        }
    }

    #[inline]
    fn get(&self, idx: usize) -> u32 {
        match self {
            SegStore::Buffer(b) => b.get(idx),
            SegStore::Slab(s) => s.get(idx),
        }
    }

    /// # Safety
    /// Same contract as [`GlobalBuffer::write_raw`]: no concurrent reader
    /// or writer of `idx`.
    #[inline]
    unsafe fn write_raw(&self, idx: usize, val: u32) {
        match self {
            SegStore::Buffer(b) => unsafe { b.write_raw(idx, val) },
            SegStore::Slab(s) => unsafe { s.write_raw(idx, val) },
        }
    }
}

/// One link of the chain: paired PA and CA storage of equal capacity.
struct Segment {
    pa: SegStore,
    ca: SegStore,
}

/// Where a chained table's segments come from.
struct ChainSource {
    arena: Arena,
    class: usize,
}

/// Two parallel device arrays (parent indices and candidate ids) appended
/// through a single shared cursor, so entry `i` of one always pairs with
/// entry `i` of the other even under concurrent appends.
pub struct PairTable {
    /// Segment spine. Slot `s` is initialised exactly once, before
    /// `capacity` is raised to cover it (release/acquire pairing on
    /// `capacity` makes the segment visible to every reader that can
    /// address it).
    segs: Box<[OnceLock<Segment>]>,
    committed_segs: AtomicUsize,
    /// Entries per segment (power of two for chained tables; the full
    /// capacity for single-segment ones).
    seg_entries: usize,
    seg_shift: u32,
    /// Committed entry capacity (`committed_segs × seg_entries` when
    /// chained; fixed when single).
    capacity: AtomicUsize,
    cursor: AtomicUsize,
    /// Single-segment fast path: direct indexing, arbitrary capacity.
    single: bool,
    /// Serialises [`PairTable::grow_to`] callers.
    grow: Mutex<()>,
    source: Option<ChainSource>,
}

impl PairTable {
    fn from_segment(seg: Segment) -> Self {
        let capacity = seg.pa.capacity();
        assert_eq!(
            capacity,
            seg.ca.capacity(),
            "PA and CA buffers must pair exactly"
        );
        let slot = OnceLock::new();
        slot.set(seg).ok().expect("fresh OnceLock");
        PairTable {
            segs: Box::new([slot]),
            committed_segs: AtomicUsize::new(1),
            seg_entries: capacity,
            seg_shift: 0,
            capacity: AtomicUsize::new(capacity),
            cursor: AtomicUsize::new(0),
            single: true,
            grow: Mutex::new(()),
            source: None,
        }
    }

    /// Allocates a single-segment table of `capacity` entries from device
    /// memory (costs `2 × capacity` words against the device budget).
    pub fn on_device(device: &Device, capacity: usize) -> Result<Self, DeviceError> {
        let pa = device.alloc_buffer(capacity)?;
        let ca = match device.alloc_buffer(capacity) {
            Ok(b) => b,
            Err(e) => {
                drop(pa);
                return Err(e);
            }
        };
        Ok(PairTable::from_segment(Segment {
            pa: SegStore::Buffer(pa),
            ca: SegStore::Buffer(ca),
        }))
    }

    /// Unaccounted host-side table (tests).
    pub fn on_host(capacity: usize) -> Self {
        PairTable::from_segment(Segment {
            pa: SegStore::Buffer(GlobalBuffer::new(capacity)),
            ca: SegStore::Buffer(GlobalBuffer::new(capacity)),
        })
    }

    /// Builds a single-segment table over two existing buffers of equal
    /// capacity. Both are cleared: a recycled buffer's stale contents must
    /// never masquerade as committed entries.
    pub fn from_buffers(pa: GlobalBuffer, ca: GlobalBuffer) -> Self {
        assert_eq!(
            pa.capacity(),
            ca.capacity(),
            "PA and CA buffers must pair exactly"
        );
        pa.clear();
        ca.clear();
        PairTable::from_segment(Segment {
            pa: SegStore::Buffer(pa),
            ca: SegStore::Buffer(ca),
        })
    }

    /// Builds a chained table over slab class `class` of `arena`. Each
    /// segment holds `slab_words` entries (one PA slab + one CA slab);
    /// enough segments for `initial_entries` are acquired up front, and
    /// [`PairTable::grow_to`] may append more until `limit_entries` is
    /// covered. Capacities are therefore always a multiple of the slab
    /// size — callers needing an exact entry budget enforce it at the
    /// cursor, not the storage, layer.
    pub fn chained_on_arena(
        arena: &Arena,
        class: usize,
        initial_entries: usize,
        limit_entries: usize,
    ) -> Result<Self, DeviceError> {
        let seg_entries = arena.spec(class).slab_words;
        debug_assert!(seg_entries.is_power_of_two());
        let limit = limit_entries.max(initial_entries).max(1);
        let max_segs = limit.div_ceil(seg_entries);
        let want_segs = initial_entries.div_ceil(seg_entries).max(1);
        let segs: Box<[OnceLock<Segment>]> = (0..max_segs).map(|_| OnceLock::new()).collect();
        let t = PairTable {
            segs,
            committed_segs: AtomicUsize::new(0),
            seg_entries,
            seg_shift: seg_entries.trailing_zeros(),
            capacity: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            single: false,
            grow: Mutex::new(()),
            source: Some(ChainSource {
                arena: arena.clone(),
                class,
            }),
        };
        t.grow_to(want_segs * seg_entries)?;
        Ok(t)
    }

    /// Appends segments until the capacity covers `target_entries`.
    /// Returns the new capacity. Committed entries, sealed levels, and
    /// concurrent readers are untouched: growth is a pure chain append.
    ///
    /// Fails with [`DeviceError::OutOfMemory`] when the arena class is
    /// exhausted or the chain's spine (its `limit_entries`) is full; a
    /// partial grow keeps every segment it managed to add.
    pub fn grow_to(&self, target_entries: usize) -> Result<usize, DeviceError> {
        let source = self
            .source
            .as_ref()
            .expect("grow_to requires a chained table");
        let _g = self.grow.lock().unwrap();
        let mut committed = self.committed_segs.load(Ordering::Acquire);
        let need = target_entries.div_ceil(self.seg_entries);
        while committed < need {
            if committed >= self.segs.len() {
                return Err(DeviceError::OutOfMemory {
                    requested: 2 * self.seg_entries,
                    available: 0,
                });
            }
            let pa = source.arena.acquire(source.class)?;
            // A failed CA acquire drops `pa`, returning its slab bit.
            let ca = source.arena.acquire(source.class)?;
            self.segs[committed]
                .set(Segment {
                    pa: SegStore::Slab(pa),
                    ca: SegStore::Slab(ca),
                })
                .ok()
                .expect("segment slot initialised twice");
            committed += 1;
            self.committed_segs.store(committed, Ordering::Release);
            self.capacity
                .store(committed * self.seg_entries, Ordering::Release);
        }
        Ok(self.capacity.load(Ordering::Acquire))
    }

    /// Decomposes a single-segment table back into its `(PA, CA)` buffers
    /// so they can be returned to a pool.
    ///
    /// # Panics
    /// On chained tables — their storage belongs to the arena and is
    /// released by dropping the table.
    pub fn into_buffers(self) -> (GlobalBuffer, GlobalBuffer) {
        assert!(self.single, "into_buffers requires a single-segment table");
        let mut segs = self.segs.into_vec();
        let seg = segs
            .remove(0)
            .into_inner()
            .expect("single-segment table always has its segment");
        match (seg.pa, seg.ca) {
            (SegStore::Buffer(pa), SegStore::Buffer(ca)) => (pa, ca),
            _ => unreachable!("single-segment tables are buffer-backed"),
        }
    }

    /// True when the table grows by chaining arena slabs.
    #[inline]
    pub fn is_chained(&self) -> bool {
        !self.single
    }

    /// Entries per segment (the whole capacity for single-segment tables).
    #[inline]
    pub fn seg_entries(&self) -> usize {
        self.seg_entries
    }

    /// Upper bound [`PairTable::grow_to`] can ever reach: the chain's
    /// spine length (or the fixed capacity when single-segment).
    #[inline]
    pub fn max_entries(&self) -> usize {
        if self.single {
            self.capacity()
        } else {
            self.segs.len() * self.seg_entries
        }
    }

    /// Entry capacity committed so far.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Committed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.capacity())
    }

    /// True if no entries are committed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims `n` entries with one atomic fetch-add; rolls back on
    /// overflow so `len()` stays exact. The end-of-range check uses
    /// `checked_add` so a pathological `n` near `usize::MAX` overflows
    /// the claim instead of wrapping past the capacity comparison.
    pub fn reserve(&self, n: usize) -> Result<PairRange<'_>, DeviceError> {
        let capacity = self.capacity();
        let start = self.cursor.fetch_add(n, Ordering::AcqRel);
        match start.checked_add(n) {
            Some(end) if end <= capacity => Ok(PairRange {
                table: self,
                start,
                len: n,
            }),
            _ => {
                self.cursor.fetch_sub(n, Ordering::AcqRel);
                Err(DeviceError::BufferOverflow { capacity })
            }
        }
    }

    /// Locates entry `i`: its segment and in-segment offset.
    #[inline]
    fn locate(&self, i: usize) -> (&Segment, usize) {
        if self.single {
            let seg = self.segs[0].get().expect("single segment present");
            (seg, i)
        } else {
            let s = i >> self.seg_shift;
            let off = i & (self.seg_entries - 1);
            let seg = self.segs[s]
                .get()
                .expect("entry index beyond committed capacity");
            (seg, off)
        }
    }

    /// Parent index of entry `i`.
    #[inline]
    pub fn parent(&self, i: usize) -> u32 {
        let (seg, off) = self.locate(i);
        seg.pa.get(off)
    }

    /// Candidate id of entry `i`.
    #[inline]
    pub fn candidate(&self, i: usize) -> u32 {
        let (seg, off) = self.locate(i);
        seg.ca.get(off)
    }

    /// Shrinks the committed length (hybrid BFS-DFS reclaims chunk
    /// scratch levels this way).
    pub fn truncate(&self, len: usize) {
        let cur = self.cursor.load(Ordering::Acquire);
        assert!(len <= cur, "truncate can only shrink");
        self.cursor.store(len, Ordering::Release);
    }

    /// Drops all entries. Chained storage keeps its segments: clearing is
    /// the between-queries reset, not a release.
    pub fn clear(&self) {
        self.cursor.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for PairTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairTable")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("chained", &self.is_chained())
            .field("seg_entries", &self.seg_entries)
            .finish()
    }
}

/// An exclusively-owned range of a [`PairTable`].
pub struct PairRange<'a> {
    table: &'a PairTable,
    start: usize,
    len: usize,
}

impl PairRange<'_> {
    /// Absolute index of the first claimed entry.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of claimed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the claimed range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes the pair at `offset` within the claimed range.
    #[inline]
    pub fn write(&self, offset: usize, parent: u32, candidate: u32) {
        assert!(offset < self.len, "write past pair reservation");
        let (seg, off) = self.table.locate(self.start + offset);
        // SAFETY: the entry lies in a range claimed by a unique fetch-add;
        // no other thread touches it until the kernel joins.
        unsafe {
            seg.pa.write_raw(off, parent);
            seg.ca.write_raw(off, candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::{ClassSpec, DeviceConfig};

    fn chain_arena(device: &Device, slab_words: usize, slabs: usize) -> Arena {
        Arena::new(device, &[ClassSpec { slab_words, slabs }]).unwrap()
    }

    #[test]
    fn paired_appends() {
        let t = PairTable::on_host(8);
        let r = t.reserve(2).unwrap();
        r.write(0, 10, 100);
        r.write(1, 11, 101);
        assert_eq!(t.len(), 2);
        assert_eq!((t.parent(0), t.candidate(0)), (10, 100));
        assert_eq!((t.parent(1), t.candidate(1)), (11, 101));
    }

    #[test]
    fn overflow_rolls_back() {
        let t = PairTable::on_host(3);
        t.reserve(2).unwrap();
        assert!(t.reserve(2).is_err());
        assert_eq!(t.len(), 2);
        t.reserve(1).unwrap();
    }

    #[test]
    fn reserve_near_usize_max_overflows_cleanly() {
        let t = PairTable::on_host(8);
        t.reserve(3).unwrap();
        // start + n wraps usize; an unchecked comparison would conclude
        // the claim fits and hand out entries past the capacity.
        assert!(matches!(
            t.reserve(usize::MAX - 1),
            Err(DeviceError::BufferOverflow { capacity: 8 })
        ));
        assert_eq!(t.len(), 3, "failed claim rolled back");
        t.reserve(5).unwrap(); // table still fully usable
    }

    #[test]
    fn device_accounting_two_arrays() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(100));
        let t = PairTable::on_device(&d, 30).unwrap();
        assert_eq!(d.allocated_words(), 60);
        drop(t);
        assert_eq!(d.allocated_words(), 0);
        // Second array failing must release the first.
        assert!(PairTable::on_device(&d, 60).is_err());
        assert_eq!(d.allocated_words(), 0);
    }

    #[test]
    fn concurrent_pairs_stay_paired() {
        let t = PairTable::on_host(4000);
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..100u32 {
                        let r = t.reserve(5).unwrap();
                        for k in 0..5u32 {
                            // parent and candidate carry the same tag so a
                            // torn pair is detectable.
                            let tag = tid * 1_000_000 + i * 100 + k;
                            r.write(k as usize, tag, tag.wrapping_add(7));
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4000);
        for i in 0..t.len() {
            assert_eq!(
                t.candidate(i),
                t.parent(i).wrapping_add(7),
                "torn pair at {i}"
            );
        }
    }

    #[test]
    fn from_buffers_clears_and_into_buffers_returns() {
        let pa = GlobalBuffer::new(8);
        let ca = GlobalBuffer::new(8);
        pa.reserve(3).unwrap();
        let t = PairTable::from_buffers(pa, ca);
        assert!(t.is_empty(), "stale contents must be discarded");
        let r = t.reserve(2).unwrap();
        r.write(0, 1, 2);
        r.write(1, 3, 4);
        let (pa, ca) = t.into_buffers();
        assert_eq!(pa.capacity(), 8);
        assert_eq!((pa.get(1), ca.get(1)), (3, 4));
    }

    #[test]
    #[should_panic(expected = "pair exactly")]
    fn from_buffers_rejects_mismatched_capacities() {
        let _ = PairTable::from_buffers(GlobalBuffer::new(8), GlobalBuffer::new(4));
    }

    #[test]
    fn truncate_then_reuse() {
        let t = PairTable::on_host(10);
        t.reserve(6).unwrap();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        let r = t.reserve(3).unwrap();
        assert_eq!(r.start(), 2);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn chained_table_spans_segments_transparently() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = chain_arena(&d, 8, 8);
        // 20 entries over 8-entry segments -> 3 segments (24 capacity).
        let t = PairTable::chained_on_arena(&arena, 0, 20, 32).unwrap();
        assert!(t.is_chained());
        assert_eq!(t.capacity(), 24);
        assert_eq!(t.seg_entries(), 8);
        assert_eq!(t.max_entries(), 32);
        // One reservation straddling the segment boundary.
        let r = t.reserve(12).unwrap();
        for k in 0..12u32 {
            r.write(k as usize, k, k + 1000);
        }
        for k in 0..12u32 {
            assert_eq!(t.parent(k as usize), k);
            assert_eq!(t.candidate(k as usize), k + 1000);
        }
    }

    #[test]
    fn grow_appends_without_disturbing_entries() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = chain_arena(&d, 8, 10);
        let t = PairTable::chained_on_arena(&arena, 0, 8, 40).unwrap();
        assert_eq!(t.capacity(), 8);
        let r = t.reserve(8).unwrap();
        for k in 0..8u32 {
            r.write(k as usize, k, k * 2);
        }
        assert!(t.reserve(1).is_err(), "chain full before growth");
        let allocs_before = d.alloc_calls();

        assert_eq!(t.grow_to(20).unwrap(), 24);
        assert_eq!(d.alloc_calls(), allocs_before, "growth is allocator-free");
        // Old entries intact, new space usable.
        for k in 0..8u32 {
            assert_eq!((t.parent(k as usize), t.candidate(k as usize)), (k, k * 2));
        }
        let r = t.reserve(10).unwrap();
        assert_eq!(r.start(), 8);
        r.write(9, 77, 78);
        assert_eq!((t.parent(17), t.candidate(17)), (77, 78));
        // Growing to an already-covered target is a no-op.
        assert_eq!(t.grow_to(10).unwrap(), 24);
    }

    #[test]
    fn grow_stops_at_spine_and_class_exhaustion() {
        let d = Device::new(DeviceConfig::test_small());
        // Spine limit: plenty of slabs, short spine.
        let arena = chain_arena(&d, 8, 10);
        let t = PairTable::chained_on_arena(&arena, 0, 8, 16).unwrap();
        t.grow_to(16).unwrap();
        assert!(matches!(
            t.grow_to(17),
            Err(DeviceError::OutOfMemory { .. })
        ));
        assert_eq!(t.capacity(), 16, "failed grow keeps committed segments");

        // Class exhaustion: spine would allow more, slabs run out.
        let small = chain_arena(&d, 8, 3);
        let t2 = PairTable::chained_on_arena(&small, 0, 8, 80).unwrap();
        assert!(matches!(
            t2.grow_to(24),
            Err(DeviceError::OutOfMemory { .. })
        ));
        // The partial grow committed what it could (one more segment
        // needs 2 slabs; only 1 remained).
        assert_eq!(t2.capacity(), 8);
    }

    #[test]
    fn dropping_chained_table_returns_slabs() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = chain_arena(&d, 16, 6);
        let t = PairTable::chained_on_arena(&arena, 0, 48, 48).unwrap();
        assert_eq!(arena.free_slabs(0), 0);
        drop(t);
        assert_eq!(arena.free_slabs(0), 6, "all slab pairs released");
        // The arena's carve is still the only device allocation.
        assert_eq!(d.alloc_calls(), 1);
    }

    #[test]
    fn clear_keeps_chain_segments() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = chain_arena(&d, 8, 6);
        let t = PairTable::chained_on_arena(&arena, 0, 8, 24).unwrap();
        t.grow_to(24).unwrap();
        t.clear();
        assert_eq!(t.capacity(), 24, "reset keeps grown capacity");
        assert_eq!(arena.free_slabs(0), 0, "segments stay acquired");
        let r = t.reserve(24).unwrap();
        r.write(23, 5, 6);
        assert_eq!((t.parent(23), t.candidate(23)), (5, 6));
    }

    #[test]
    fn concurrent_pairs_stay_paired_across_chain() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = chain_arena(&d, 64, 16);
        // 8 segments of 64 entries = 512; threads write 500.
        let t = PairTable::chained_on_arena(&arena, 0, 512, 512).unwrap();
        std::thread::scope(|s| {
            for tid in 0..5u32 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..20u32 {
                        let r = t.reserve(5).unwrap();
                        for k in 0..5u32 {
                            let tag = tid * 1_000_000 + i * 100 + k;
                            r.write(k as usize, tag, tag.wrapping_add(7));
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 500);
        for i in 0..t.len() {
            assert_eq!(
                t.candidate(i),
                t.parent(i).wrapping_add(7),
                "torn pair at {i}"
            );
        }
    }
}
