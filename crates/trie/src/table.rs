//! The PA/CA pair table: two device arrays, one shared atomic cursor.

use std::sync::atomic::{AtomicUsize, Ordering};

use cuts_gpu_sim::{Device, DeviceError, GlobalBuffer};

/// Two parallel device arrays (parent indices and candidate ids) appended
/// through a single shared cursor, so entry `i` of one always pairs with
/// entry `i` of the other even under concurrent appends.
pub struct PairTable {
    pa: GlobalBuffer,
    ca: GlobalBuffer,
    cursor: AtomicUsize,
}

impl PairTable {
    /// Allocates a table of `capacity` entries from device memory (costs
    /// `2 × capacity` words against the device budget).
    pub fn on_device(device: &Device, capacity: usize) -> Result<Self, DeviceError> {
        let pa = device.alloc_buffer(capacity)?;
        let ca = match device.alloc_buffer(capacity) {
            Ok(b) => b,
            Err(e) => {
                drop(pa);
                return Err(e);
            }
        };
        Ok(PairTable {
            pa,
            ca,
            cursor: AtomicUsize::new(0),
        })
    }

    /// Unaccounted host-side table (tests).
    pub fn on_host(capacity: usize) -> Self {
        PairTable {
            pa: GlobalBuffer::new(capacity),
            ca: GlobalBuffer::new(capacity),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Builds a table over two existing (e.g. pooled) buffers of equal
    /// capacity. Both are cleared: a recycled buffer's stale contents must
    /// never masquerade as committed entries.
    pub fn from_buffers(pa: GlobalBuffer, ca: GlobalBuffer) -> Self {
        assert_eq!(
            pa.capacity(),
            ca.capacity(),
            "PA and CA buffers must pair exactly"
        );
        pa.clear();
        ca.clear();
        PairTable {
            pa,
            ca,
            cursor: AtomicUsize::new(0),
        }
    }

    /// Decomposes the table back into its `(PA, CA)` buffers so they can
    /// be returned to a pool.
    pub fn into_buffers(self) -> (GlobalBuffer, GlobalBuffer) {
        (self.pa, self.ca)
    }

    /// Entry capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.pa.capacity()
    }

    /// Committed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.capacity())
    }

    /// True if no entries are committed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims `n` entries with one atomic fetch-add; rolls back on
    /// overflow so `len()` stays exact.
    pub fn reserve(&self, n: usize) -> Result<PairRange<'_>, DeviceError> {
        let start = self.cursor.fetch_add(n, Ordering::AcqRel);
        if start + n > self.capacity() {
            self.cursor.fetch_sub(n, Ordering::AcqRel);
            return Err(DeviceError::BufferOverflow {
                capacity: self.capacity(),
            });
        }
        Ok(PairRange {
            table: self,
            start,
            len: n,
        })
    }

    /// Parent index of entry `i`.
    #[inline]
    pub fn parent(&self, i: usize) -> u32 {
        self.pa.get(i)
    }

    /// Candidate id of entry `i`.
    #[inline]
    pub fn candidate(&self, i: usize) -> u32 {
        self.ca.get(i)
    }

    /// Shrinks the committed length (hybrid BFS-DFS reclaims chunk
    /// scratch levels this way).
    pub fn truncate(&self, len: usize) {
        let cur = self.cursor.load(Ordering::Acquire);
        assert!(len <= cur, "truncate can only shrink");
        self.cursor.store(len, Ordering::Release);
    }

    /// Drops all entries.
    pub fn clear(&self) {
        self.cursor.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for PairTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairTable")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

/// An exclusively-owned range of a [`PairTable`].
pub struct PairRange<'a> {
    table: &'a PairTable,
    start: usize,
    len: usize,
}

impl PairRange<'_> {
    /// Absolute index of the first claimed entry.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of claimed entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the claimed range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes the pair at `offset` within the claimed range.
    #[inline]
    pub fn write(&self, offset: usize, parent: u32, candidate: u32) {
        assert!(offset < self.len, "write past pair reservation");
        let idx = self.start + offset;
        // SAFETY: `idx` lies in a range claimed by a unique fetch-add;
        // no other thread touches it until the kernel joins.
        unsafe {
            self.table.pa.write_raw(idx, parent);
            self.table.ca.write_raw(idx, candidate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;

    #[test]
    fn paired_appends() {
        let t = PairTable::on_host(8);
        let r = t.reserve(2).unwrap();
        r.write(0, 10, 100);
        r.write(1, 11, 101);
        assert_eq!(t.len(), 2);
        assert_eq!((t.parent(0), t.candidate(0)), (10, 100));
        assert_eq!((t.parent(1), t.candidate(1)), (11, 101));
    }

    #[test]
    fn overflow_rolls_back() {
        let t = PairTable::on_host(3);
        t.reserve(2).unwrap();
        assert!(t.reserve(2).is_err());
        assert_eq!(t.len(), 2);
        t.reserve(1).unwrap();
    }

    #[test]
    fn device_accounting_two_arrays() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(100));
        let t = PairTable::on_device(&d, 30).unwrap();
        assert_eq!(d.allocated_words(), 60);
        drop(t);
        assert_eq!(d.allocated_words(), 0);
        // Second array failing must release the first.
        assert!(PairTable::on_device(&d, 60).is_err());
        assert_eq!(d.allocated_words(), 0);
    }

    #[test]
    fn concurrent_pairs_stay_paired() {
        let t = PairTable::on_host(4000);
        std::thread::scope(|s| {
            for tid in 0..8u32 {
                let t = &t;
                s.spawn(move || {
                    for i in 0..100u32 {
                        let r = t.reserve(5).unwrap();
                        for k in 0..5u32 {
                            // parent and candidate carry the same tag so a
                            // torn pair is detectable.
                            let tag = tid * 1_000_000 + i * 100 + k;
                            r.write(k as usize, tag, tag.wrapping_add(7));
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4000);
        for i in 0..t.len() {
            assert_eq!(
                t.candidate(i),
                t.parent(i).wrapping_add(7),
                "torn pair at {i}"
            );
        }
    }

    #[test]
    fn from_buffers_clears_and_into_buffers_returns() {
        let pa = GlobalBuffer::new(8);
        let ca = GlobalBuffer::new(8);
        pa.reserve(3).unwrap();
        let t = PairTable::from_buffers(pa, ca);
        assert!(t.is_empty(), "stale contents must be discarded");
        let r = t.reserve(2).unwrap();
        r.write(0, 1, 2);
        r.write(1, 3, 4);
        let (pa, ca) = t.into_buffers();
        assert_eq!(pa.capacity(), 8);
        assert_eq!((pa.get(1), ca.get(1)), (3, 4));
    }

    #[test]
    #[should_panic(expected = "pair exactly")]
    fn from_buffers_rejects_mismatched_capacities() {
        let _ = PairTable::from_buffers(GlobalBuffer::new(8), GlobalBuffer::new(4));
    }

    #[test]
    fn truncate_then_reuse() {
        let t = PairTable::on_host(10);
        t.reserve(6).unwrap();
        t.truncate(2);
        assert_eq!(t.len(), 2);
        let r = t.reserve(3).unwrap();
        assert_eq!(r.start(), 2);
        t.clear();
        assert!(t.is_empty());
    }
}
