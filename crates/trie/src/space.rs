//! Word-exact storage accounting and the closed-form space model.
//!
//! Table 1 of the paper compares, per partial-path depth, "naive storage"
//! against "our storage" on enron with a 5-clique query. Reverse-engineering
//! its rows fixes the accounting conventions precisely:
//!
//! * naive(l)  = Σ_{i ≤ l} i · |P_i|   (every level keeps full flat paths)
//! * cuts(l)   = Σ_{i ≤ l} 2 · |P_i|   (one PA word + one CA word per entry)
//!
//! e.g. depth 1: naive = |P_1| = 16514, cuts = 2·|P_1| = 33028, ratio 0.5 —
//! exactly the first Table 1 row. [`LevelCounts`] implements both, plus the
//! CSF cost and the theoretical growth model of Equations 1–5.

/// Per-level partial-path counts `|P_1| … |P_L|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelCounts(pub Vec<u64>);

/// One row of a Table 1-style storage report.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceRow {
    /// Partial-path depth (1-based, like the paper).
    pub depth: usize,
    /// Paths at this depth.
    pub paths: u64,
    /// Naive cumulative words.
    pub naive_words: u64,
    /// cuTS cumulative words.
    pub cuts_words: u64,
    /// CSF cumulative words.
    pub csf_words: u64,
    /// naive / cuts (the paper's "compression ratio" column).
    pub compression_ratio: f64,
}

impl LevelCounts {
    /// Naive cumulative words through depth `l` (1-based).
    pub fn naive_words(&self, l: usize) -> u64 {
        (1..=l).map(|i| i as u64 * self.0[i - 1]).sum()
    }

    /// Frontier-only naive words at depth `l` (Equation 3's `|P_l| × l`).
    pub fn naive_frontier_words(&self, l: usize) -> u64 {
        l as u64 * self.0[l - 1]
    }

    /// cuTS cumulative words through depth `l`.
    pub fn cuts_words(&self, l: usize) -> u64 {
        (1..=l).map(|i| 2 * self.0[i - 1]).sum()
    }

    /// CSF cumulative words through depth `l`: one node-id word per entry
    /// plus an index array of `|P_i| + 1` for every non-leaf level.
    pub fn csf_words(&self, l: usize) -> u64 {
        let ids: u64 = (1..=l).map(|i| self.0[i - 1]).sum();
        let index: u64 = (1..l).map(|i| self.0[i - 1] + 1).sum();
        ids + index
    }

    /// Compression ratio naive/cuts at depth `l` (Table 1's last column).
    /// An unsatisfiable query stores zero cuts words (`|P_1| = 0`); the
    /// ratio is reported as 0 then, never NaN — `report()` rows and the
    /// `cuts space` table/JSON render this value directly.
    pub fn compression_ratio(&self, l: usize) -> f64 {
        let cuts = self.cuts_words(l);
        if cuts == 0 {
            0.0
        } else {
            self.naive_words(l) as f64 / cuts as f64
        }
    }

    /// Full report, one row per depth.
    pub fn report(&self) -> Vec<SpaceRow> {
        (1..=self.0.len())
            .map(|l| SpaceRow {
                depth: l,
                paths: self.0[l - 1],
                naive_words: self.naive_words(l),
                cuts_words: self.cuts_words(l),
                csf_words: self.csf_words(l),
                compression_ratio: self.compression_ratio(l),
            })
            .collect()
    }
}

/// Equation 2: estimated paths at depth `l` given `|P_1|` and the per-level
/// growth factor `ds = δ × σ`.
pub fn estimated_paths(p1: f64, ds: f64, l: usize) -> f64 {
    p1 * ds.powi(l as i32 - 1)
}

/// Equation 3: traditional (frontier) space at depth `l`.
pub fn estimated_trad_space(p1: f64, ds: f64, l: usize) -> f64 {
    estimated_paths(p1, ds, l) * l as f64
}

/// Equation 4 with the geometric series summed exactly:
/// `S_cuts(l) = |P_1| · (ds^l − 1) / (ds − 1)` for `ds ≠ 1`.
/// (The paper's printed form drops one term of the series; the exact sum is
/// used here and noted in EXPERIMENTS.md.)
pub fn estimated_cuts_space(p1: f64, ds: f64, l: usize) -> f64 {
    if (ds - 1.0).abs() < 1e-12 {
        p1 * l as f64
    } else {
        p1 * (ds.powi(l as i32) - 1.0) / (ds - 1.0)
    }
}

/// The paper's Equation 5 claim: a reduction factor of `l × (ds − 1)`.
pub fn paper_reduction_factor(ds: f64, l: usize) -> f64 {
    l as f64 * (ds - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Per-level counts reverse-engineered from Table 1 (enron + 5-clique):
    /// they reproduce every cell of the table exactly.
    fn table1_counts() -> LevelCounts {
        LevelCounts(vec![16_514, 307_402, 4_284_642, 56_127_696, 697_122_720])
    }

    #[test]
    fn unsatisfiable_query_ratio_is_zero_not_nan() {
        // |P_1| = 0: an unsatisfiable query stores nothing, so
        // cuts_words(l) = 0 for every depth. The ratio must render as 0
        // (the old division produced NaN, which leaked into report()
        // rows and the `cuts space` table/JSON).
        let c = LevelCounts(vec![0, 0, 0]);
        for l in 1..=3 {
            let r = c.compression_ratio(l);
            assert!(r.is_finite(), "depth {l} ratio must be finite");
            assert_eq!(r, 0.0);
        }
        for row in c.report() {
            assert!(row.compression_ratio.is_finite());
            assert_eq!(row.compression_ratio, 0.0);
        }
    }

    #[test]
    fn table1_naive_column() {
        let c = table1_counts();
        assert_eq!(c.naive_words(1), 16_514);
        assert_eq!(c.naive_words(2), 631_318);
        assert_eq!(c.naive_words(3), 13_485_244);
        assert_eq!(c.naive_words(4), 237_996_028);
        assert_eq!(c.naive_words(5), 3_723_609_628);
    }

    #[test]
    fn table1_cuts_column() {
        let c = table1_counts();
        assert_eq!(c.cuts_words(1), 33_028);
        assert_eq!(c.cuts_words(2), 647_832);
        assert_eq!(c.cuts_words(3), 9_217_116);
        assert_eq!(c.cuts_words(4), 121_472_508);
        assert_eq!(c.cuts_words(5), 1_515_717_948);
    }

    #[test]
    fn table1_compression_ratios() {
        let c = table1_counts();
        let expect = [0.5, 0.974_509, 1.463_065, 1.959_258, 2.456_664];
        for (l, e) in expect.iter().enumerate() {
            let r = c.compression_ratio(l + 1);
            assert!((r - e).abs() < 1e-4, "depth {}: {r} vs {e}", l + 1);
        }
    }

    #[test]
    fn csf_is_smaller_than_cuts() {
        let c = table1_counts();
        for l in 1..=5 {
            assert!(c.csf_words(l) < c.cuts_words(l));
        }
    }

    #[test]
    fn report_shape() {
        let rows = table1_counts().report();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[2].depth, 3);
        assert_eq!(rows[2].naive_words, 13_485_244);
    }

    #[test]
    fn model_monotonic_growth() {
        let p = |l| estimated_paths(100.0, 4.0, l);
        assert!((p(1) - 100.0).abs() < 1e-9);
        assert!((p(3) - 1600.0).abs() < 1e-9);
        // Exact geometric sum: 100 * (4^3 - 1) / 3 = 2100.
        assert!((estimated_cuts_space(100.0, 4.0, 3) - 2100.0).abs() < 1e-9);
        assert!((estimated_trad_space(100.0, 4.0, 3) - 4800.0).abs() < 1e-9);
    }

    #[test]
    fn cuts_model_beats_trad_at_depth() {
        // For ds > 1 and l >= 3 the trie wins and the advantage grows.
        let r3 = estimated_trad_space(1e3, 8.0, 3) / estimated_cuts_space(1e3, 8.0, 3);
        let r6 = estimated_trad_space(1e3, 8.0, 6) / estimated_cuts_space(1e3, 8.0, 6);
        assert!(r3 > 1.0);
        assert!(r6 > r3);
        assert!(paper_reduction_factor(8.0, 6) > paper_reduction_factor(8.0, 3));
    }

    #[test]
    fn ds_one_degenerate() {
        assert!((estimated_cuts_space(10.0, 1.0, 4) - 40.0).abs() < 1e-9);
    }
}
