//! Wire format for work donation (§4.2).
//!
//! A busy node donating work ships either a whole trie or a batch of
//! extracted flat paths; the receiver re-roots them into its own local
//! trie. Encoding is little-endian `u32` words over [`bytes`] buffers.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::csf::Csf;
use crate::trie::HostTrie;

/// Errors from decoding a donation payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload shorter than its header claims.
    Truncated,
    /// Header fields are internally inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Corrupt(what) => write!(f, "payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Cap on `count` in a zero-depth path batch, where the payload length
/// cannot corroborate the header (each path contributes zero words).
const MAX_EMPTY_PATHS: usize = 1 << 20;

/// Encodes a full host trie: `[num_levels, level_ends…, len, pa…, ca…]`.
pub fn encode_trie(t: &HostTrie) -> Bytes {
    let mut b = BytesMut::with_capacity(4 * (2 + t.levels.len() + 2 * t.len()));
    b.put_u32_le(t.levels.len() as u32);
    for l in &t.levels {
        b.put_u32_le(l.end as u32);
    }
    b.put_u32_le(t.len() as u32);
    for &p in &t.pa {
        b.put_u32_le(p);
    }
    for &c in &t.ca {
        b.put_u32_le(c);
    }
    b.freeze()
}

/// Decodes [`encode_trie`] output.
pub fn decode_trie(mut buf: Bytes) -> Result<HostTrie, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let num_levels = buf.get_u32_le() as usize;
    let header_words = num_levels
        .checked_add(1)
        .and_then(|w| w.checked_mul(4))
        .ok_or(WireError::Corrupt("level count overflows"))?;
    if buf.remaining() < header_words {
        return Err(WireError::Truncated);
    }
    let mut levels = Vec::with_capacity(num_levels);
    let mut start = 0usize;
    for _ in 0..num_levels {
        let end = buf.get_u32_le() as usize;
        if end < start {
            return Err(WireError::Corrupt("level ends not monotone"));
        }
        levels.push(start..end);
        start = end;
    }
    let len = buf.get_u32_le() as usize;
    if levels.last().map_or(0, |l| l.end) != len {
        return Err(WireError::Corrupt("length disagrees with level ends"));
    }
    let body = len
        .checked_mul(8)
        .ok_or(WireError::Corrupt("node count overflows"))?;
    if buf.remaining() < body {
        return Err(WireError::Truncated);
    }
    let pa = (0..len).map(|_| buf.get_u32_le()).collect();
    let ca = (0..len).map(|_| buf.get_u32_le()).collect();
    Ok(HostTrie { pa, ca, levels })
}

/// Encodes a CSF path set:
/// `[num_levels, level_lens…, node_ids…, child_index arrays…]`.
///
/// Every level's length is written up front, so the index arrays (whose
/// lengths are `level_lens[l] + 1` for all but the last level) carry no
/// redundant headers. The encoding is canonical: a decoded CSF
/// re-encodes byte-identically.
pub fn encode_csf(c: &Csf) -> Bytes {
    let nl = c.num_levels();
    let mut b = BytesMut::with_capacity(4 * (1 + nl + c.words_used()));
    b.put_u32_le(nl as u32);
    for ids in &c.node_ids {
        b.put_u32_le(ids.len() as u32);
    }
    for ids in &c.node_ids {
        for &v in ids {
            b.put_u32_le(v);
        }
    }
    for index in &c.child_index {
        for &v in index {
            b.put_u32_le(v);
        }
    }
    b.freeze()
}

/// Decodes [`encode_csf`] output, validating every structural invariant
/// of [`Csf`]: index arrays are monotone, start at 0, and end exactly at
/// the next level's length.
pub fn decode_csf(mut buf: Bytes) -> Result<Csf, WireError> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    let nl = buf.get_u32_le() as usize;
    let header = nl
        .checked_mul(4)
        .ok_or(WireError::Corrupt("csf level count overflows"))?;
    if buf.remaining() < header {
        return Err(WireError::Truncated);
    }
    let lens: Vec<usize> = (0..nl).map(|_| buf.get_u32_le() as usize).collect();
    // Total payload words: node ids plus (len + 1)-sized index arrays
    // for every level with a successor. All checked — the lengths came
    // off the wire.
    let mut need = 0usize;
    for (l, &len) in lens.iter().enumerate() {
        let idx = if l + 1 < nl { len + 1 } else { 0 };
        need = need
            .checked_add(len)
            .and_then(|w| w.checked_add(idx))
            .ok_or(WireError::Corrupt("csf size overflows"))?;
    }
    let need_bytes = need
        .checked_mul(4)
        .ok_or(WireError::Corrupt("csf size overflows"))?;
    if buf.remaining() < need_bytes {
        return Err(WireError::Truncated);
    }
    let node_ids: Vec<Vec<u32>> = lens
        .iter()
        .map(|&len| (0..len).map(|_| buf.get_u32_le()).collect())
        .collect();
    let mut child_index: Vec<Vec<u32>> = Vec::with_capacity(nl.saturating_sub(1));
    for l in 0..nl.saturating_sub(1) {
        let index: Vec<u32> = (0..lens[l] + 1).map(|_| buf.get_u32_le()).collect();
        if index.first() != Some(&0) {
            return Err(WireError::Corrupt("csf index must start at 0"));
        }
        if index.windows(2).any(|w| w[0] > w[1]) {
            return Err(WireError::Corrupt("csf index not monotone"));
        }
        if *index.last().expect("len + 1 >= 1 entries") as usize != lens[l + 1] {
            return Err(WireError::Corrupt("csf index does not cover next level"));
        }
        child_index.push(index);
    }
    Ok(Csf {
        node_ids,
        child_index,
    })
}

/// Encodes a batch of uniform-depth flat paths: `[depth, count, words…]`.
pub fn encode_paths(paths: &[Vec<u32>]) -> Bytes {
    let depth = paths.first().map_or(0, Vec::len);
    assert!(paths.iter().all(|p| p.len() == depth), "ragged path batch");
    let mut b = BytesMut::with_capacity(4 * (2 + depth * paths.len()));
    b.put_u32_le(depth as u32);
    b.put_u32_le(paths.len() as u32);
    for p in paths {
        for &v in p {
            b.put_u32_le(v);
        }
    }
    b.freeze()
}

/// Decodes [`encode_paths`] output.
pub fn decode_paths(mut buf: Bytes) -> Result<Vec<Vec<u32>>, WireError> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    let depth = buf.get_u32_le() as usize;
    let count = buf.get_u32_le() as usize;
    // `depth` and `count` come off the wire: size arithmetic must be
    // checked, and a zero-depth header makes `count` unverifiable
    // against the payload length, so bound it before allocating.
    let need = depth
        .checked_mul(count)
        .and_then(|w| w.checked_mul(4))
        .ok_or(WireError::Corrupt("path batch size overflows"))?;
    if buf.remaining() < need {
        return Err(WireError::Truncated);
    }
    if depth == 0 && count > MAX_EMPTY_PATHS {
        return Err(WireError::Corrupt("implausible zero-depth batch"));
    }
    Ok((0..count)
        .map(|_| (0..depth).map(|_| buf.get_u32_le()).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::NO_PARENT;

    fn sample() -> HostTrie {
        HostTrie {
            pa: vec![NO_PARENT, NO_PARENT, 0, 1, 0],
            ca: vec![10, 11, 3, 2, 4],
            levels: vec![0..2, 2..5],
        }
    }

    #[test]
    fn trie_roundtrip() {
        let t = sample();
        let decoded = decode_trie(encode_trie(&t)).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn empty_trie_roundtrip() {
        let t = HostTrie::new();
        assert_eq!(decode_trie(encode_trie(&t)).unwrap(), t);
    }

    #[test]
    fn truncated_trie_rejected() {
        let enc = encode_trie(&sample());
        let cut = enc.slice(0..enc.len() - 4);
        assert_eq!(decode_trie(cut), Err(WireError::Truncated));
    }

    #[test]
    fn corrupt_length_rejected() {
        let t = sample();
        let mut raw = BytesMut::from(&encode_trie(&t)[..]);
        // Overwrite the len field (after num_levels + level ends).
        let len_off = 4 * (1 + t.levels.len());
        raw[len_off..len_off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_trie(raw.freeze()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn paths_roundtrip() {
        let paths = vec![vec![1, 2, 3], vec![4, 5, 6]];
        assert_eq!(decode_paths(encode_paths(&paths)).unwrap(), paths);
        let empty: Vec<Vec<u32>> = vec![];
        assert_eq!(decode_paths(encode_paths(&empty)).unwrap(), empty);
    }

    #[test]
    fn hostile_headers_rejected_without_panic() {
        // depth × count chosen so the naive `4 * depth * count` size
        // computation overflows usize; must be Corrupt, not a panic.
        let mut b = BytesMut::new();
        b.put_u32_le(u32::MAX);
        b.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_paths(b.freeze()),
            Err(WireError::Corrupt(_) | WireError::Truncated)
        ));
        // Zero-depth batch with an absurd count: nothing in the payload
        // corroborates it, so it must be bounded rather than allocated.
        let mut b = BytesMut::new();
        b.put_u32_le(0);
        b.put_u32_le(u32::MAX);
        assert!(matches!(
            decode_paths(b.freeze()),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn csf_roundtrip() {
        let c = Csf::from_host_trie(&sample());
        let enc = encode_csf(&c);
        let back = decode_csf(enc.clone()).unwrap();
        assert_eq!(back, c);
        assert_eq!(encode_csf(&back), enc);
    }

    #[test]
    fn empty_csf_roundtrip() {
        let c = Csf::from_host_trie(&HostTrie::new());
        assert_eq!(decode_csf(encode_csf(&c)).unwrap(), c);
    }

    #[test]
    fn csf_truncation_rejected() {
        let enc = encode_csf(&Csf::from_host_trie(&sample()));
        for cut in 0..enc.len() {
            assert_eq!(
                decode_csf(enc.slice(0..cut)),
                Err(WireError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn csf_bad_index_rejected() {
        let c = Csf::from_host_trie(&sample());
        let enc = encode_csf(&c);
        // The first child_index word sits after num_levels, level lens,
        // and all node ids; it must be 0.
        let off = 4 * (1 + c.num_levels() + c.node_ids.iter().map(Vec::len).sum::<usize>());
        let mut raw = enc.to_vec();
        raw[off..off + 4].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            decode_csf(Bytes::from(raw)),
            Err(WireError::Corrupt(_))
        ));
        // A last index entry that overshoots the next level is corrupt.
        let mut raw = enc.to_vec();
        let last = raw.len() - 4;
        raw[last..].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            decode_csf(Bytes::from(raw)),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_paths_rejected() {
        let enc = encode_paths(&[vec![1, 2, 3]]);
        assert_eq!(
            decode_paths(enc.slice(0..enc.len() - 2)),
            Err(WireError::Truncated)
        );
    }
}
