#![warn(missing_docs)]

//! The cuTS trie (§4.1.1) and the representations it is evaluated against.
//!
//! The paper's central data structure stores the set of partial match paths
//! as two flat device arrays: a **parent array (PA)** holding, for every
//! entry, the index of its parent entry in the previous level, and a
//! **candidate array (CA)** holding the matched data-graph vertex. A single
//! atomic fetch-add claims write space, so children of different parents
//! can interleave freely — the property that lets cuTS build levels in one
//! pass where CSF needs two.
//!
//! This crate provides:
//!
//! * [`PairTable`] — the PA/CA array pair with the shared atomic cursor.
//! * [`Trie`] — levels over a pair table, path extraction, chunking.
//! * [`HostTrie`] — a heap-side copy (donations, verification, tests).
//! * [`csf`] — the Compressed Sparse Fibre representation of the same
//!   path set (the two-pass alternative of Figure 3(B)).
//! * [`naive`] — the flat full-path table (Figure 3's "traditional"
//!   layout, used by the GSI-style baseline).
//! * [`space`] — word-exact storage accounting (Table 1, Figure 2(C)) and
//!   the closed-form model of Equations 1–5.
//! * [`serial`] — the wire format used when a busy node donates work.

pub mod chunk;
pub mod csf;
pub mod naive;
pub mod serial;
pub mod space;
pub mod table;
pub mod trie;

pub use chunk::Chunks;
pub use table::{PairRange, PairTable};
pub use trie::{HostTrie, Trie, ValidateError, NO_PARENT};
