//! Levelled trie over a [`PairTable`].

use std::ops::Range;

use cuts_gpu_sim::{Device, DeviceError};

use crate::table::PairTable;

/// Parent marker for root-level entries.
pub const NO_PARENT: u32 = u32::MAX;

/// A structural defect found by [`HostTrie::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The PA and CA arrays have different lengths.
    LengthMismatch {
        /// Parent-array length.
        pa: usize,
        /// Candidate-array length.
        ca: usize,
    },
    /// A level does not start where the previous one ended, or extends
    /// past the entry count: the levels must tile `0..len` contiguously.
    LevelBounds {
        /// The offending level.
        level: usize,
        /// The level's claimed range.
        start: usize,
        /// The level's claimed end.
        end: usize,
        /// Where the previous level ended.
        expected_start: usize,
        /// Total entries in the trie.
        len: usize,
    },
    /// A level-0 entry has a parent (roots must carry [`NO_PARENT`]).
    RootHasParent {
        /// The offending entry index.
        entry: usize,
        /// The parent it claims.
        parent: u32,
    },
    /// A deeper entry's parent index lies outside the previous level.
    ParentOutsideLevel {
        /// The offending entry index.
        entry: usize,
        /// The entry's level.
        level: usize,
        /// The parent it claims ([`NO_PARENT`] when missing entirely).
        parent: u32,
        /// Start of the valid parent range (previous level).
        prev_start: usize,
        /// End of the valid parent range (previous level).
        prev_end: usize,
    },
    /// The sealed levels do not cover every entry.
    Uncovered {
        /// Entries the levels account for.
        covered: usize,
        /// Entries the trie actually holds.
        len: usize,
    },
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::LengthMismatch { pa, ca } => {
                write!(f, "PA ({pa}) and CA ({ca}) lengths differ")
            }
            ValidateError::LevelBounds {
                level,
                start,
                end,
                expected_start,
                len,
            } => write!(
                f,
                "level {level} range {start}..{end} invalid (previous ended at \
                 {expected_start}, trie holds {len} entries)"
            ),
            ValidateError::RootHasParent { entry, parent } => {
                write!(f, "root entry {entry} has parent {parent}")
            }
            ValidateError::ParentOutsideLevel {
                entry,
                level,
                parent,
                prev_start,
                prev_end,
            } => write!(
                f,
                "entry {entry} at level {level} has parent {parent} outside \
                 {prev_start}..{prev_end}"
            ),
            ValidateError::Uncovered { covered, len } => {
                write!(f, "levels cover 0..{covered} but trie holds {len} entries")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// The cuTS partial-path trie: a [`PairTable`] plus sealed level
/// boundaries. Level `l` holds every partial path of depth `l + 1`; an
/// entry's full path is recovered by chasing parent indices to the root.
///
/// ```
/// use cuts_trie::{Trie, NO_PARENT};
///
/// let mut t = Trie::on_host(16);
/// let r = t.table().reserve(1).unwrap();
/// r.write(0, NO_PARENT, 7); // root candidate: data vertex 7
/// t.seal_level();
/// let r = t.table().reserve(2).unwrap();
/// r.write(0, 0, 3); // two children of entry 0, written with
/// r.write(1, 0, 5); // one atomic reservation
/// t.seal_level();
/// assert_eq!(t.paths_at_level(1), vec![vec![7, 3], vec![7, 5]]);
/// assert_eq!(t.words_used(), 6); // 2 words per entry (PA + CA)
/// ```
pub struct Trie {
    table: PairTable,
    levels: Vec<Range<usize>>,
}

impl Trie {
    /// Allocates a trie with room for `entries` partial-path nodes on a
    /// device (`2 × entries` words of device memory).
    pub fn on_device(device: &Device, entries: usize) -> Result<Self, DeviceError> {
        Ok(Trie {
            table: PairTable::on_device(device, entries)?,
            levels: Vec::new(),
        })
    }

    /// Host-side trie (tests, donations).
    pub fn on_host(entries: usize) -> Self {
        Trie {
            table: PairTable::on_host(entries),
            levels: Vec::new(),
        }
    }

    /// Wraps an existing (e.g. arena-chained or recycled) pair table as an
    /// empty trie. Chained tables keep their grown segments across the
    /// round-trip; only entries and level boundaries are discarded.
    pub fn from_table(table: PairTable) -> Self {
        table.clear();
        Trie {
            table,
            levels: Vec::new(),
        }
    }

    /// Decomposes the trie back into its pair table (for reuse by the
    /// next query). Sealed level boundaries are discarded.
    pub fn into_table(self) -> PairTable {
        self.table
    }

    /// Drops all levels and entries, leaving the allocated storage in
    /// place — the between-queries reset of a long-lived trie.
    pub fn reset(&mut self) {
        self.levels.clear();
        self.table.clear();
    }

    /// Sizes the trie the way the paper does: "we first allocate two big
    /// arrays whose size equals half of the free space available in the
    /// GPU". `fraction` of the device's free words go to the table
    /// (half to PA, half to CA).
    pub fn sized_from_free(device: &Device, fraction: f64) -> Result<Self, DeviceError> {
        assert!(fraction > 0.0 && fraction <= 1.0);
        let entries = ((device.free_words() as f64 * fraction) / 2.0) as usize;
        Trie::on_device(device, entries.max(1))
    }

    /// The underlying pair table (kernels append through this).
    #[inline]
    pub fn table(&self) -> &PairTable {
        &self.table
    }

    /// Entry capacity currently committed by the underlying table.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Grows chained (arena-backed) storage in place until the capacity
    /// covers `target` entries; committed entries and sealed levels are
    /// untouched. See [`PairTable::grow_to`].
    pub fn grow_to(&self, target: usize) -> Result<usize, DeviceError> {
        self.table.grow_to(target)
    }

    /// Number of sealed levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Entry range of sealed level `l`.
    #[inline]
    pub fn level(&self, l: usize) -> Range<usize> {
        self.levels[l].clone()
    }

    /// Number of entries in sealed level `l` (the paper's `|P_{l+1}|`).
    #[inline]
    pub fn level_len(&self, l: usize) -> usize {
        self.levels[l].len()
    }

    /// Sizes of all sealed levels.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|r| r.len()).collect()
    }

    /// Seals everything appended since the previous seal as a new level and
    /// returns its range.
    pub fn seal_level(&mut self) -> Range<usize> {
        let start = self.levels.last().map_or(0, |r| r.end);
        let end = self.table.len();
        debug_assert!(end >= start);
        let range = start..end;
        self.levels.push(range.clone());
        range
    }

    /// Discards the last `n` sealed levels and their entries (hybrid
    /// BFS-DFS reclaims a finished chunk's subtree this way).
    pub fn pop_levels(&mut self, n: usize) {
        assert!(n <= self.levels.len());
        for _ in 0..n {
            self.levels.pop();
        }
        let keep = self.levels.last().map_or(0, |r| r.end);
        self.table.truncate(keep);
    }

    /// Parent index of entry `i` (`NO_PARENT` at the root level).
    #[inline]
    pub fn parent(&self, i: usize) -> u32 {
        self.table.parent(i)
    }

    /// Matched data-graph vertex of entry `i`.
    #[inline]
    pub fn candidate(&self, i: usize) -> u32 {
        self.table.candidate(i)
    }

    /// Words of device memory committed so far (PA + CA entries) — the
    /// quantity Table 1 reports for "our storage".
    pub fn words_used(&self) -> usize {
        2 * self.table.len()
    }

    /// Extracts the full path ending at entry `leaf`, root candidate first.
    pub fn extract_path(&self, leaf: usize) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut i = leaf as u32;
        loop {
            rev.push(self.candidate(i as usize));
            let p = self.parent(i as usize);
            if p == NO_PARENT {
                break;
            }
            i = p;
        }
        rev.reverse();
        rev
    }

    /// All full paths of sealed level `l`, in entry order.
    pub fn paths_at_level(&self, l: usize) -> Vec<Vec<u32>> {
        self.level(l).map(|i| self.extract_path(i)).collect()
    }

    /// Seeds an empty device trie from a host trie (the receiving side of
    /// a §4.2 donation: "integrate it to its own local trie").
    pub fn load(&mut self, host: &HostTrie) -> Result<(), DeviceError> {
        assert!(
            self.levels.is_empty() && self.table.is_empty(),
            "load requires an empty trie"
        );
        for level in &host.levels {
            let r = self.table.reserve(level.len())?;
            for (k, i) in level.clone().enumerate() {
                r.write(k, host.pa[i], host.ca[i]);
            }
            self.seal_level();
        }
        Ok(())
    }

    /// Copies the committed trie to the host.
    pub fn to_host(&self) -> HostTrie {
        let len = self.table.len();
        HostTrie {
            pa: (0..len).map(|i| self.parent(i)).collect(),
            ca: (0..len).map(|i| self.candidate(i)).collect(),
            levels: self.levels.clone(),
        }
    }
}

impl std::fmt::Debug for Trie {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trie")
            .field("levels", &self.level_sizes())
            .field("entries", &self.table.len())
            .field("capacity", &self.table.capacity())
            .finish()
    }
}

/// Heap-resident trie copy: what travels in a donation message and what
/// verification code inspects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostTrie {
    /// Parent indices.
    pub pa: Vec<u32>,
    /// Candidate vertex ids.
    pub ca: Vec<u32>,
    /// Sealed level ranges.
    pub levels: Vec<Range<usize>>,
}

impl HostTrie {
    /// Empty host trie.
    pub fn new() -> Self {
        HostTrie {
            pa: Vec::new(),
            ca: Vec::new(),
            levels: Vec::new(),
        }
    }

    /// Extracts the path ending at `leaf`, root first.
    pub fn extract_path(&self, leaf: usize) -> Vec<u32> {
        let mut rev = Vec::new();
        let mut i = leaf as u32;
        loop {
            rev.push(self.ca[i as usize]);
            let p = self.pa[i as usize];
            if p == NO_PARENT {
                break;
            }
            i = p;
        }
        rev.reverse();
        rev
    }

    /// All paths of level `l`.
    pub fn paths_at_level(&self, l: usize) -> Vec<Vec<u32>> {
        self.levels[l]
            .clone()
            .map(|i| self.extract_path(i))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ca.len()
    }

    /// True if the trie holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ca.is_empty()
    }

    /// Depth (number of levels) of this trie.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Structural integrity check: levels must tile `0..len` contiguously,
    /// level-0 entries must be roots, and every deeper entry's parent must
    /// lie in the previous level. Used by tests and by the donation
    /// receive path to reject corrupt payloads early.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.pa.len() != self.ca.len() {
            return Err(ValidateError::LengthMismatch {
                pa: self.pa.len(),
                ca: self.ca.len(),
            });
        }
        let mut expect_start = 0usize;
        for (l, range) in self.levels.iter().enumerate() {
            if range.start != expect_start || range.end < range.start || range.end > self.ca.len() {
                return Err(ValidateError::LevelBounds {
                    level: l,
                    start: range.start,
                    end: range.end,
                    expected_start: expect_start,
                    len: self.ca.len(),
                });
            }
            for i in range.clone() {
                let p = self.pa[i];
                if l == 0 {
                    if p != NO_PARENT {
                        return Err(ValidateError::RootHasParent {
                            entry: i,
                            parent: p,
                        });
                    }
                } else {
                    let prev = &self.levels[l - 1];
                    if p == NO_PARENT || (p as usize) < prev.start || (p as usize) >= prev.end {
                        return Err(ValidateError::ParentOutsideLevel {
                            entry: i,
                            level: l,
                            parent: p,
                            prev_start: prev.start,
                            prev_end: prev.end,
                        });
                    }
                }
            }
            expect_start = range.end;
        }
        if expect_start != self.ca.len() {
            return Err(ValidateError::Uncovered {
                covered: expect_start,
                len: self.ca.len(),
            });
        }
        Ok(())
    }

    /// Splits the deepest level's paths into up to `parts` contiguous
    /// groups, each re-rooted as an independent trie — the donation-
    /// granularity refinement: a single heavy subtree becomes several
    /// shippable jobs.
    pub fn split_frontier(&self, parts: usize) -> Vec<HostTrie> {
        assert!(parts >= 1);
        if self.levels.is_empty() {
            return vec![];
        }
        let last = self.levels.len() - 1;
        let paths = self.paths_at_level(last);
        if paths.is_empty() {
            return vec![];
        }
        let per = paths.len().div_ceil(parts);
        paths
            .chunks(per.max(1))
            .map(HostTrie::from_flat_paths)
            .collect()
    }

    /// Root candidate (level-0 vertex) of every entry, computed by one
    /// top-down propagation pass. Entry `i`'s slot holds the candidate
    /// of its level-0 ancestor.
    pub fn root_of_entries(&self) -> Vec<u32> {
        let mut roots = vec![0u32; self.ca.len()];
        for (l, range) in self.levels.iter().enumerate() {
            for i in range.clone() {
                roots[i] = if l == 0 {
                    self.ca[i]
                } else {
                    roots[self.pa[i] as usize]
                };
            }
        }
        roots
    }

    /// Dirty-subtree split for batch-dynamic maintenance: partitions the
    /// trie by root, keeping every subtree whose root candidate is
    /// *clean* in the first trie and moving every subtree rooted at a
    /// `dirty` candidate into the second. Both sides keep their levels
    /// and relative entry order; parent indices are remapped to the
    /// compacted layout. The dirty side is what the incremental matcher
    /// releases and re-expands after a graph batch; the clean side is
    /// reusable as-is because none of its entries can reach a changed
    /// vertex.
    pub fn partition_roots(&self, dirty: impl Fn(u32) -> bool) -> (HostTrie, HostTrie) {
        let roots = self.root_of_entries();
        let mut clean = HostTrie::new();
        let mut moved = HostTrie::new();
        // Old entry index -> new index within its destination trie.
        let mut remap = vec![0u32; self.ca.len()];
        for range in &self.levels {
            let (clean_start, moved_start) = (clean.ca.len(), moved.ca.len());
            for i in range.clone() {
                let dest = if dirty(roots[i]) {
                    &mut moved
                } else {
                    &mut clean
                };
                let parent = if self.pa[i] == NO_PARENT {
                    NO_PARENT
                } else {
                    remap[self.pa[i] as usize]
                };
                remap[i] = dest.ca.len() as u32;
                dest.pa.push(parent);
                dest.ca.push(self.ca[i]);
            }
            // Seal the level on both sides even when one is empty, so
            // depths stay aligned for a later merge.
            clean.levels.push(clean_start..clean.ca.len());
            moved.levels.push(moved_start..moved.ca.len());
        }
        (clean, moved)
    }

    /// Builds a single-level host trie from flat paths of uniform depth,
    /// re-rooting each path as a chain (used by the receiving side of a
    /// donation: §4.2 "integrate it to its own local trie").
    pub fn from_flat_paths(paths: &[Vec<u32>]) -> Self {
        let mut t = HostTrie::new();
        if paths.is_empty() {
            return t;
        }
        let depth = paths[0].len();
        assert!(paths.iter().all(|p| p.len() == depth));
        // Chain layout: every path contributes `depth` entries. Shared
        // prefixes are re-merged level by level.
        let mut level_starts = Vec::new();
        // Maps (level, path index) -> entry index, built level by level with
        // prefix sharing via a per-level map from (parent entry, vertex).
        let mut parent_of_path: Vec<u32> = vec![NO_PARENT; paths.len()];
        for l in 0..depth {
            let start = t.ca.len();
            level_starts.push(start);
            let mut seen: std::collections::HashMap<(u32, u32), u32> =
                std::collections::HashMap::new();
            for (pi, path) in paths.iter().enumerate() {
                let key = (parent_of_path[pi], path[l]);
                let entry = *seen.entry(key).or_insert_with(|| {
                    t.pa.push(key.0);
                    t.ca.push(key.1);
                    (t.ca.len() - 1) as u32
                });
                parent_of_path[pi] = entry;
            }
            t.levels.push(start..t.ca.len());
        }
        t
    }
}

impl Default for HostTrie {
    fn default() -> Self {
        HostTrie::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 3 example: root u0 with children u1(u3, u4),
    /// u2(...) etc. Here a small 2-level trie.
    fn sample() -> Trie {
        let mut t = Trie::on_host(64);
        {
            let r = t.table().reserve(2).unwrap();
            r.write(0, NO_PARENT, 0); // u0
            r.write(1, NO_PARENT, 1); // u1
        }
        t.seal_level();
        {
            let r = t.table().reserve(3).unwrap();
            r.write(0, 0, 3); // u0 -> u3
            r.write(1, 0, 4); // u0 -> u4
            r.write(2, 1, 2); // u1 -> u2
        }
        t.seal_level();
        t
    }

    #[test]
    fn seal_and_level_sizes() {
        let t = sample();
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.level_sizes(), vec![2, 3]);
        assert_eq!(t.level(1), 2..5);
        assert_eq!(t.words_used(), 10);
    }

    #[test]
    fn extract_paths() {
        let t = sample();
        assert_eq!(t.extract_path(2), vec![0, 3]);
        assert_eq!(t.extract_path(4), vec![1, 2]);
        assert_eq!(
            t.paths_at_level(1),
            vec![vec![0, 3], vec![0, 4], vec![1, 2]]
        );
    }

    #[test]
    fn pop_levels_reclaims() {
        let mut t = sample();
        t.pop_levels(1);
        assert_eq!(t.num_levels(), 1);
        assert_eq!(t.table().len(), 2);
        // Space is reusable.
        let r = t.table().reserve(1).unwrap();
        r.write(0, 1, 9);
        t.seal_level();
        assert_eq!(t.extract_path(2), vec![1, 9]);
    }

    #[test]
    fn to_host_matches() {
        let t = sample();
        let h = t.to_host();
        assert_eq!(h.len(), 5);
        assert_eq!(h.levels, vec![0..2, 2..5]);
        assert_eq!(h.extract_path(3), vec![0, 4]);
        assert_eq!(h.paths_at_level(1), t.paths_at_level(1));
    }

    #[test]
    fn from_flat_paths_shares_prefixes() {
        let paths = vec![vec![0, 3], vec![0, 4], vec![1, 2]];
        let h = HostTrie::from_flat_paths(&paths);
        // Level 0 has two distinct roots (0 and 1), not three.
        assert_eq!(h.levels[0].len(), 2);
        assert_eq!(h.levels[1].len(), 3);
        let mut got = h.paths_at_level(1);
        got.sort();
        let mut want = paths.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn from_flat_paths_empty() {
        let h = HostTrie::from_flat_paths(&[]);
        assert!(h.is_empty());
        assert!(h.levels.is_empty());
    }

    #[test]
    fn validate_accepts_well_formed_and_rejects_corrupt() {
        let host = sample().to_host();
        host.validate().unwrap();
        assert!(HostTrie::new().validate().is_ok());

        // Root with a parent.
        let mut bad = host.clone();
        bad.pa[0] = 1;
        let err = bad.validate().unwrap_err();
        assert!(matches!(
            err,
            ValidateError::RootHasParent {
                entry: 0,
                parent: 1
            }
        ));
        assert!(err.to_string().contains("root entry"));

        // Parent outside the previous level.
        let mut bad = host.clone();
        bad.pa[3] = 4;
        let err = bad.validate().unwrap_err();
        assert!(matches!(
            err,
            ValidateError::ParentOutsideLevel { entry: 3, .. }
        ));
        assert!(err.to_string().contains("outside"));

        // Levels not tiling the entries.
        let mut bad = host.clone();
        bad.levels[1] = 2..4;
        assert!(matches!(
            bad.validate().unwrap_err(),
            ValidateError::LevelBounds { .. } | ValidateError::Uncovered { .. }
        ));

        // Mismatched array lengths.
        let mut bad = host.clone();
        bad.pa.pop();
        assert!(matches!(
            bad.validate().unwrap_err(),
            ValidateError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn split_frontier_partitions_paths() {
        let host = sample().to_host();
        let parts = host.split_frontier(2);
        assert_eq!(parts.len(), 2);
        let mut all: Vec<Vec<u32>> = parts
            .iter()
            .flat_map(|t| t.paths_at_level(t.depth() - 1))
            .collect();
        all.sort();
        let mut want = host.paths_at_level(1);
        want.sort();
        assert_eq!(all, want);
        // More parts than paths: one trie per path.
        assert_eq!(host.split_frontier(100).len(), 3);
        assert!(HostTrie::new().split_frontier(4).is_empty());
    }

    #[test]
    fn partition_roots_splits_subtrees_and_remaps_parents() {
        let host = sample().to_host(); // paths [0,3] [0,4] [1,2]
        assert_eq!(host.root_of_entries(), vec![0, 1, 0, 0, 1]);
        let (clean, dirty) = host.partition_roots(|r| r == 0);
        clean.validate().unwrap();
        dirty.validate().unwrap();
        assert_eq!(clean.paths_at_level(1), vec![vec![1, 2]]);
        let mut moved = dirty.paths_at_level(1);
        moved.sort();
        assert_eq!(moved, vec![vec![0, 3], vec![0, 4]]);
        // Nothing dirty: everything stays, entry-for-entry.
        let (all, none) = host.partition_roots(|_| false);
        assert_eq!(all, host);
        assert_eq!(none.len(), 0);
        assert_eq!(none.depth(), host.depth(), "levels stay aligned");
    }

    #[test]
    fn load_roundtrips_host_trie() {
        let host = sample().to_host();
        let mut fresh = Trie::on_host(64);
        fresh.load(&host).unwrap();
        assert_eq!(fresh.to_host(), host);
        assert_eq!(fresh.paths_at_level(1), sample().paths_at_level(1));
    }

    #[test]
    fn load_respects_capacity() {
        let host = sample().to_host();
        let mut tiny = Trie::on_host(3);
        assert!(tiny.load(&host).is_err());
    }

    #[test]
    fn reset_and_table_roundtrip() {
        let mut t = sample();
        t.reset();
        assert_eq!(t.num_levels(), 0);
        assert!(t.table().is_empty());
        // Storage is intact and reusable after the reset.
        let r = t.table().reserve(1).unwrap();
        r.write(0, NO_PARENT, 42);
        t.seal_level();
        assert_eq!(t.extract_path(0), vec![42]);

        // from_table wipes any committed entries.
        let table = t.into_table();
        assert_eq!(table.len(), 1);
        let t2 = Trie::from_table(table);
        assert_eq!(t2.num_levels(), 0);
        assert!(t2.table().is_empty());
        assert_eq!(t2.table().capacity(), 64);
    }

    #[test]
    fn chained_storage_roundtrips_through_trie() {
        use cuts_gpu_sim::{Arena, ClassSpec, DeviceConfig};
        let d = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &d,
            &[ClassSpec {
                slab_words: 8,
                slabs: 8,
            }],
        )
        .unwrap();
        let table = crate::table::PairTable::chained_on_arena(&arena, 0, 8, 32).unwrap();
        let mut t = Trie::from_table(table);
        {
            let r = t.table().reserve(2).unwrap();
            r.write(0, NO_PARENT, 0);
            r.write(1, NO_PARENT, 1);
        }
        t.seal_level();
        // Grow mid-build: sealed level and entries survive the append.
        assert_eq!(t.capacity(), 8);
        t.grow_to(24).unwrap();
        assert_eq!(t.capacity(), 24);
        {
            let r = t.table().reserve(16).unwrap();
            for k in 0..16u32 {
                r.write(k as usize, k % 2, 10 + k);
            }
        }
        t.seal_level();
        assert_eq!(t.extract_path(17), vec![1, 25]);

        // into_table / from_table keep the grown chain (capacity and
        // segments), discarding only entries and level boundaries.
        let table = t.into_table();
        assert_eq!(table.len(), 18);
        let t2 = Trie::from_table(table);
        assert!(t2.table().is_empty());
        assert_eq!(t2.num_levels(), 0);
        assert_eq!(t2.capacity(), 24, "grown chain survives the round-trip");
        assert!(t2.table().is_chained());
    }

    #[test]
    fn sized_from_free_respects_budget() {
        use cuts_gpu_sim::DeviceConfig;
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        let _g = d.alloc_buffer(200).unwrap();
        let t = Trie::sized_from_free(&d, 0.5).unwrap();
        // free = 800, fraction 0.5 => 400 words => 200 entries.
        assert_eq!(t.table().capacity(), 200);
        assert_eq!(d.allocated_words(), 600);
    }
}
