//! The naive flat path table: every partial path stores all of its
//! vertices (Figure 2(C), the "traditional representations" of §4.1.1, and
//! the intermediate storage the GSI-style baseline uses).

/// Flat path storage: level `l` is a matrix of `count × depth` words.
#[derive(Debug, Clone, Default)]
pub struct NaivePathTable {
    /// One entry per level: (depth, flattened row-major paths).
    levels: Vec<(usize, Vec<u32>)>,
}

impl NaivePathTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a level of `depth`-long paths from an iterator of rows.
    pub fn push_level<I>(&mut self, depth: usize, rows: I)
    where
        I: IntoIterator<Item = Vec<u32>>,
    {
        let mut flat = Vec::new();
        for row in rows {
            assert_eq!(row.len(), depth, "row depth mismatch");
            flat.extend_from_slice(&row);
        }
        self.levels.push((depth, flat));
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of paths at level `l`.
    pub fn level_count(&self, l: usize) -> usize {
        let (depth, flat) = &self.levels[l];
        if *depth == 0 {
            0
        } else {
            flat.len() / depth
        }
    }

    /// Path `i` of level `l`.
    pub fn path(&self, l: usize, i: usize) -> &[u32] {
        let (depth, flat) = &self.levels[l];
        &flat[i * depth..(i + 1) * depth]
    }

    /// All paths of level `l`.
    pub fn paths(&self, l: usize) -> Vec<Vec<u32>> {
        (0..self.level_count(l))
            .map(|i| self.path(l, i).to_vec())
            .collect()
    }

    /// Words used by level `l` alone (the frontier cost `|P_l| × l` of
    /// Equation 3).
    pub fn words_at_level(&self, l: usize) -> usize {
        self.levels[l].1.len()
    }

    /// Cumulative words through level `l` inclusive — the quantity the
    /// paper's Table 1 reports in its "naive storage" column.
    pub fn words_cumulative(&self, l: usize) -> usize {
        (0..=l).map(|i| self.words_at_level(i)).sum()
    }

    /// Static cost of storing `count` paths of length `depth`.
    pub fn words_for(depth: usize, count: usize) -> usize {
        depth * count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut t = NaivePathTable::new();
        t.push_level(1, vec![vec![4], vec![7]]);
        t.push_level(2, vec![vec![4, 1], vec![4, 2], vec![7, 0]]);
        assert_eq!(t.num_levels(), 2);
        assert_eq!(t.level_count(1), 3);
        assert_eq!(t.path(1, 2), &[7, 0]);
        assert_eq!(t.paths(0), vec![vec![4], vec![7]]);
    }

    #[test]
    fn word_accounting_matches_formula() {
        let mut t = NaivePathTable::new();
        t.push_level(1, (0..16).map(|i| vec![i]).collect::<Vec<_>>());
        t.push_level(2, (0..48).map(|i| vec![i, i]).collect::<Vec<_>>());
        // Figure 2(C): depth 1 = 16 words, depth 2 = 96 words.
        assert_eq!(t.words_at_level(0), 16);
        assert_eq!(t.words_at_level(1), 96);
        assert_eq!(t.words_cumulative(1), 112);
        assert_eq!(NaivePathTable::words_for(2, 48), 96);
    }

    #[test]
    #[should_panic(expected = "row depth mismatch")]
    fn depth_mismatch_panics() {
        let mut t = NaivePathTable::new();
        t.push_level(2, vec![vec![1]]);
    }
}
