//! Chunk iteration for the hybrid BFS-DFS strategy (§4.1.2) and the
//! distributed outer loop (§4.2): "these partial paths are then chunked,
//! and the GPU will process one chunk at a time".

use std::ops::Range;

/// The chunk size the paper found empirically best.
pub const DEFAULT_CHUNK_SIZE: usize = 512;

/// Iterator over fixed-size sub-ranges of an entry range; the last chunk
/// may be short.
#[derive(Debug, Clone)]
pub struct Chunks {
    range: Range<usize>,
    chunk_size: usize,
}

impl Chunks {
    /// Splits `range` into chunks of at most `chunk_size`.
    pub fn new(range: Range<usize>, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        Chunks { range, chunk_size }
    }

    /// Number of chunks that will be produced.
    pub fn count(&self) -> usize {
        self.range.len().div_ceil(self.chunk_size)
    }
}

impl Iterator for Chunks {
    type Item = Range<usize>;

    fn next(&mut self) -> Option<Range<usize>> {
        if self.range.is_empty() {
            return None;
        }
        let start = self.range.start;
        let end = (start + self.chunk_size).min(self.range.end);
        self.range.start = end;
        Some(start..end)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.range.len().div_ceil(self.chunk_size);
        (n, Some(n))
    }
}

impl ExactSizeIterator for Chunks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let c: Vec<_> = Chunks::new(0..1024, 512).collect();
        assert_eq!(c, [0..512, 512..1024]);
    }

    #[test]
    fn ragged_tail() {
        let c: Vec<_> = Chunks::new(10..23, 5).collect();
        assert_eq!(c, [10..15, 15..20, 20..23]);
        assert_eq!(Chunks::new(10..23, 5).count(), 3);
        assert_eq!(Chunks::new(10..23, 5).len(), 3);
    }

    #[test]
    fn empty_range() {
        assert_eq!(Chunks::new(5..5, 512).count(), 0);
        assert!(Chunks::new(5..5, 512).next().is_none());
    }

    #[test]
    fn covers_everything_once() {
        let mut seen = [false; 100];
        for r in Chunks::new(0..100, 7) {
            for i in r {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
