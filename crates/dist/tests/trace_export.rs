//! Golden-file tests for the tracing layer: end-to-end runs (single-node
//! engine, 1-rank and 4-rank distributed) must export well-formed Chrome
//! `trace_event` JSON — balanced `B`/`E` pairs, required fields, one
//! process track per rank — with a rich event-kind census and per-span
//! hardware-counter deltas. And the whole layer must be free when off:
//! a disabled `Trace` holds no journal, records nothing, and leaves the
//! match results identical to an untraced run.

use cuts_core::CutsEngine;
use cuts_dist::{run, DistConfig, Partition};
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{barabasi_albert, clique, erdos_renyi};
use cuts_obs::{chrome_trace, jsonl, validate_chrome, EventKind, Json, Trace, TraceConfig};

fn cfg() -> DistConfig {
    DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 8,
        ..Default::default()
    }
}

#[test]
fn single_node_trace_exports_valid_chrome_json() {
    let trace = Trace::enabled();
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);
    let mut device = Device::new(DeviceConfig::test_small());
    device.set_trace(trace.clone());
    let r = CutsEngine::new(&device).run(&data, &query).unwrap();
    assert!(r.num_matches > 0);

    let events = trace.journal().unwrap().snapshot_sorted();
    let text = chrome_trace(&events);
    let s = validate_chrome(&text).unwrap();
    assert!(s.spans > 0 && s.instants > 0, "{s:?}");
    // Per-span hardware-counter deltas survive export (kernel spans).
    assert!(s.counter_spans > 0, "{s:?}");
    // Single-node: everything on the "local" process track (pid 0).
    assert_eq!(s.pids.iter().copied().collect::<Vec<_>>(), vec![0]);
    // Engine + device instrumentation alone yields a rich census.
    for cat in ["arena", "kernel", "level", "plan", "run", "trie"] {
        assert!(s.categories.contains(cat), "missing {cat}: {s:?}");
    }
}

#[test]
fn distributed_trace_exports_valid_chrome_json_across_ranks() {
    let data = barabasi_albert(80, 3, 7);
    let query = clique(3);
    for ranks in [1, 4] {
        let trace = Trace::enabled();
        let mut c = cfg();
        if ranks > 1 {
            // Skew the initial partition so donations (and their events)
            // actually happen.
            c.partition = Partition::AllToRankZero;
            c.dist_chunk = 4;
        }
        c.trace = trace.clone();
        let r = run(&data, &query, ranks, &c).unwrap();
        assert!(r.total_matches > 0);

        let events = trace.journal().unwrap().snapshot_sorted();
        let text = chrome_trace(&events);
        let s = validate_chrome(&text).unwrap();
        assert!(s.counter_spans > 0, "ranks={ranks}: {s:?}");
        // One process per rank plus the local driver lane for the
        // enclosing `distributed` span: pids {0, 1..=ranks}.
        assert_eq!(s.pids.len(), ranks + 1, "ranks={ranks}: {s:?}");
        assert!(s.pids.contains(&0) && s.pids.contains(&(ranks as u64)));
        // The acceptance bar: at least six distinct event kinds.
        assert!(
            s.categories.len() >= 6,
            "ranks={ranks}: only {:?}",
            s.categories
        );
        for cat in ["chunk", "kernel", "level", "run"] {
            assert!(s.categories.contains(cat), "ranks={ranks}: missing {cat}");
        }
        if ranks > 1 {
            assert!(s.categories.contains("donation"), "{:?}", s.categories);
            assert!(s.categories.contains("heartbeat"), "{:?}", s.categories);
        }
    }
}

#[test]
fn jsonl_export_is_line_delimited_parseable_json() {
    let trace = Trace::enabled();
    let data = erdos_renyi(50, 200, 23);
    let c = DistConfig {
        trace: trace.clone(),
        ..cfg()
    };
    run(&data, &clique(3), 2, &c).unwrap();
    let events = trace.journal().unwrap().snapshot_sorted();
    let text = jsonl(&events);
    let lines: Vec<_> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for line in &lines {
        let o = Json::parse(line).expect(line);
        for key in ["kind", "name", "ts_us"] {
            assert!(o.get(key).is_some(), "{line}");
        }
    }
}

#[test]
fn disabled_tracing_is_free_and_changes_nothing() {
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);

    // Zero-overhead contract: a disabled trace holds no journal, and its
    // spans never record — the instrumentation call sites allocate
    // nothing on this path.
    let off = Trace::disabled();
    assert!(off.journal().is_none());
    assert!(!off.span(EventKind::Run, "run").is_recording());
    off.instant(EventKind::Heartbeat, "free"); // no-op, nowhere to go

    // Single node: traced and untraced runs agree on every deterministic
    // output field (wall_millis is host time and may differ).
    let plain_dev = Device::new(DeviceConfig::test_small());
    let plain = CutsEngine::new(&plain_dev).run(&data, &query).unwrap();
    let traced = Trace::with_config(TraceConfig {
        per_block: true,
        ..Default::default()
    });
    let mut traced_dev = Device::new(DeviceConfig::test_small());
    traced_dev.set_trace(traced.clone());
    let t = CutsEngine::new(&traced_dev).run(&data, &query).unwrap();
    assert_eq!(plain.num_matches, t.num_matches);
    assert_eq!(plain.level_counts, t.level_counts);
    assert_eq!(plain.order, t.order);
    assert_eq!(plain.used_chunking, t.used_chunking);
    assert_eq!(plain.counters, t.counters);
    assert!(!traced.journal().unwrap().snapshot_sorted().is_empty());

    // Distributed: the config's trace defaults to disabled; a recording
    // trace must not perturb the counts.
    let a = run(&data, &query, 2, &cfg()).unwrap();
    let on = Trace::enabled();
    let traced_cfg = DistConfig {
        trace: on.clone(),
        ..cfg()
    };
    let b = run(&data, &query, 2, &traced_cfg).unwrap();
    assert_eq!(a.total_matches, b.total_matches);
    assert_eq!(a.recovery.is_clean(), b.recovery.is_clean());
}
