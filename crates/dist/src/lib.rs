#![warn(missing_docs)]

//! Distributed cuTS (§4.2): the first distributed subgraph-isomorphism
//! runtime for (simulated) GPUs.
//!
//! The paper's cluster is N single-V100 nodes over OpenMPI; here each
//! "node" is an OS thread owning its own simulated [`cuts_gpu_sim::Device`]
//! (its own memory budget and counters), and [`mpi`] provides the
//! message-passing substrate: ranked endpoints with tagged, non-blocking
//! sends over crossbeam channels, per-sender FIFO like MPI point-to-point.
//!
//! Work distribution follows Algorithm 3's chunked, fully asynchronous
//! design: no barrier between levels. Each rank processes its share of
//! root candidates as a queue of path-batch jobs; between jobs it polls
//! for `FREE` broadcasts and donates part of its queue to exactly one free
//! node through the claim/ack [`protocol`] ("only one busy node sends data
//! to a given free node, and a given busy node only sends data to one free
//! node"). Donated work travels as a serialised trie
//! ([`cuts_trie::serial`]), which the receiver integrates and resumes via
//! [`cuts_core::CutsEngine::run_seeded`].
//!
//! Beyond the paper, the runtime is fault-tolerant: [`fault`] injects
//! deterministic rank crashes, message drops, and delays; [`ledger`]
//! tracks chunk ownership so survivors reclaim a dead rank's pending
//! work; and any schedule that leaves one rank alive completes with the
//! exact fault-free match count (see `DESIGN.md` §7).

pub mod config;
pub mod fault;
pub mod ledger;
pub mod metrics;
pub mod mpi;
pub mod protocol;
pub mod runner;
pub mod sync_runner;
pub mod worker;

pub use config::DistConfig;
pub use fault::{FaultInjector, FaultPlan};
pub use ledger::{AliveBoard, ChunkId, ChunkLedger};
pub use metrics::{DistResult, RankMetrics, RecoveryStats};
pub use mpi::{Comm, Message};
pub use runner::run;
#[allow(deprecated)]
pub use runner::{run_distributed, run_distributed_observed, run_distributed_traced};
pub use sync_runner::{run_synchronous, SyncResult};
pub use worker::Partition;
