//! The §4.2 "first strategy" the paper rejects, implemented as an
//! ablation baseline: synchronise all nodes after every outer iteration,
//! exchange partial-path counts, and redistribute paths evenly.
//!
//! The paper's two objections are modelled measurably: (i) **wasted
//! compute cycles** — a barrier after each level means every node waits
//! for the slowest, so the lock-step makespan is `Σ_l max_r t(r, l)`
//! rather than `max_r Σ_l t(r, l)`; and (ii) **expensive copying** —
//! rebalancing ships actual path data every level (tries must be
//! extracted and re-integrated), which we charge to the communication
//! volume. Counts still come out identical, which is the point of an
//! ablation.

use cuts_core::{ExecSession, MatchOrder};
use cuts_gpu_sim::Device;
use cuts_graph::Graph;
use cuts_trie::HostTrie;

use crate::config::DistConfig;
use crate::metrics::{DistResult, RankMetrics, RecoveryStats};
use crate::worker::{Partition, WorkerError};

/// Outcome of a synchronous run: the usual per-rank metrics plus the
/// lock-step makespan (which includes barrier idling).
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// Standard result view (per-rank busy times exclude barrier waits).
    pub dist: DistResult,
    /// Lock-step makespan: `Σ_levels max_rank level_time`.
    pub barrier_makespan_sim_millis: f64,
    /// Mean per-rank idle time spent waiting at barriers:
    /// `Σ_levels mean_rank (max_level_time − own_level_time)` — the
    /// "wasted compute cycles" of §4.2's objection (i).
    pub barrier_idle_sim_millis: f64,
    /// Words of path data moved by rebalancing — objection (ii).
    pub rebalanced_words: u64,
}

/// Runs the synchronous rebalance-every-level strategy. Deterministic and
/// single-threaded: each simulated rank owns a device, and the barrier is
/// the loop structure itself.
pub fn run_synchronous(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
) -> Result<SyncResult, WorkerError> {
    assert!(ranks >= 1);
    let start = std::time::Instant::now();
    let plan = MatchOrder::compute(query)?;
    let n = plan.len();

    let devices: Vec<Device> = (0..ranks)
        .map(|_| Device::new(config.device.clone()))
        .collect();
    // One session per rank, reused across all levels: the plan is built
    // once and the trie chains stay on one arena carve for the whole run.
    let sessions: Vec<ExecSession<'_>> = devices
        .iter()
        .map(|d| ExecSession::new(d, config.engine.clone()))
        .collect();
    let mut metrics: Vec<RankMetrics> = (0..ranks)
        .map(|rank| RankMetrics {
            rank,
            ..Default::default()
        })
        .collect();

    // Initial partition of root candidates (always round-robin here; the
    // strategy rebalances every level anyway).
    let roots: Vec<Vec<u32>> = (0..data.num_vertices() as u32)
        .filter(|&v| {
            data.degree_dominates(v, plan.q_out[0], plan.q_in[0])
                && cuts_core::order::label_ok(data, v, plan.q_label[0])
        })
        .map(|v| vec![v])
        .collect();
    let _ = Partition::RoundRobin; // documented choice
    let mut frontiers: Vec<Vec<Vec<u32>>> = vec![Vec::new(); ranks];
    for (i, p) in roots.into_iter().enumerate() {
        frontiers[i % ranks].push(p);
    }

    let mut barrier_makespan = 0.0f64;
    let mut barrier_idle = 0.0f64;
    let mut rebalanced_words = 0u64;

    for _depth in 1..n {
        // Each rank expands its share one level (the paper's outer
        // iteration), then the barrier.
        let mut level_times = vec![0.0f64; ranks];
        let mut next: Vec<Vec<Vec<u32>>> = vec![Vec::new(); ranks];
        for r in 0..ranks {
            if frontiers[r].is_empty() {
                continue;
            }
            let seed = HostTrie::from_flat_paths(&frontiers[r]);
            let scope = devices[r].counter_scope();
            let expanded = sessions[r].expand_seed_once(data, query, &seed)?;
            let counters = scope.elapsed(&devices[r]);
            let t = cuts_gpu_sim::CostModel::default().millis(&counters, devices[r].config());
            level_times[r] = t;
            metrics[r].busy_sim_millis += t;
            metrics[r].counters += counters;
            metrics[r].jobs_processed += 1;
            next[r] = expanded.paths_at_level(expanded.depth() - 1);
        }
        let level_max = level_times.iter().cloned().fold(0.0, f64::max);
        barrier_makespan += level_max;
        barrier_idle += level_times.iter().map(|&t| level_max - t).sum::<f64>() / ranks as f64;

        // Rebalance: gather everything, redistribute evenly. Every path
        // that changes owner is charged as moved words.
        let mut all: Vec<(usize, Vec<u32>)> = Vec::new();
        for (r, paths) in next.into_iter().enumerate() {
            for p in paths {
                all.push((r, p));
            }
        }
        let mut redistributed: Vec<Vec<Vec<u32>>> = vec![Vec::new(); ranks];
        for (i, (origin, p)) in all.into_iter().enumerate() {
            let dest = i % ranks;
            if dest != origin {
                rebalanced_words += p.len() as u64;
                metrics[origin].bytes_sent += 4 * p.len() as u64;
                metrics[origin].messages_sent += 1;
            }
            redistributed[dest].push(p);
        }
        frontiers = redistributed;
        if frontiers.iter().all(|f| f.is_empty()) {
            break;
        }
    }

    let mut total = 0u64;
    for (r, f) in frontiers.iter().enumerate() {
        metrics[r].matches = f.len() as u64;
        total += f.len() as u64;
    }
    Ok(SyncResult {
        dist: DistResult {
            total_matches: total,
            per_rank: metrics,
            wall_millis: start.elapsed().as_secs_f64() * 1e3,
            recovery: RecoveryStats::default(),
            postmortem: None,
            telemetry: cuts_obs::Registry::disabled(),
        },
        barrier_makespan_sim_millis: barrier_makespan,
        barrier_idle_sim_millis: barrier_idle,
        rebalanced_words,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_core::CutsEngine;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{barabasi_albert, clique, erdos_renyi};

    fn cfg() -> DistConfig {
        DistConfig {
            device: DeviceConfig::test_small(),
            ..Default::default()
        }
    }

    #[test]
    fn sync_counts_match_single_node() {
        let data = erdos_renyi(50, 200, 31);
        let query = clique(3);
        let device = Device::new(DeviceConfig::test_small());
        let want = CutsEngine::new(&device)
            .run(&data, &query)
            .unwrap()
            .num_matches;
        for ranks in [1usize, 2, 4] {
            let r = run_synchronous(&data, &query, ranks, &cfg()).unwrap();
            assert_eq!(r.dist.total_matches, want, "ranks {ranks}");
        }
    }

    #[test]
    fn sync_rebalances_paths() {
        let data = barabasi_albert(80, 3, 5);
        let query = clique(3);
        let r = run_synchronous(&data, &query, 3, &cfg()).unwrap();
        assert!(r.rebalanced_words > 0, "redistribution should move paths");
        // Every rank ends with a near-even share of the final level.
        let counts: Vec<u64> = r.dist.per_rank.iter().map(|m| m.matches).collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "even redistribution: {counts:?}");
    }

    #[test]
    fn barrier_makespan_at_least_any_rank_busy() {
        let data = erdos_renyi(60, 240, 3);
        let query = clique(4);
        let r = run_synchronous(&data, &query, 2, &cfg()).unwrap();
        for m in &r.dist.per_rank {
            assert!(
                r.barrier_makespan_sim_millis >= m.busy_sim_millis - 1e-9,
                "barrier makespan {} vs rank busy {}",
                r.barrier_makespan_sim_millis,
                m.busy_sim_millis
            );
        }
    }
}
