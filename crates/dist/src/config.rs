//! Distributed-run configuration.

use std::time::Duration;

use cuts_core::EngineConfig;
use cuts_gpu_sim::DeviceConfig;

use crate::fault::FaultPlan;
use crate::worker::Partition;

/// Configuration for a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Per-rank device (each node of the paper's cluster has one V100).
    pub device: DeviceConfig,
    /// Per-rank engine configuration.
    pub engine: EngineConfig,
    /// Paths per job batch — the §4.2 outer chunk granularity.
    pub dist_chunk: usize,
    /// Root-candidate partitioning.
    pub partition: Partition,
    /// When a peer is idle and the local queue holds a single heavy job,
    /// expand it one level and re-chunk so part of its subtree can be
    /// donated (the finer-granularity mid-trie donation of §4.2).
    pub progressive_deepening: bool,
    /// Wall-clock pacing factor: after each job, sleep
    /// `sim_millis × pacing` milliseconds so the host timeline tracks the
    /// simulated device timeline. 0 disables. Without pacing, host wall
    /// time (which drives when FREE broadcasts happen) is dominated by
    /// per-job overhead rather than modelled cost, so the donation
    /// protocol cannot react to *simulated* stragglers.
    pub pacing: f64,
    /// Deterministic fault schedule injected at the message/worker layer.
    /// Empty (the default) means a fault-free run.
    pub fault_plan: FaultPlan,
    /// How long a rank may go unheard-from (no message, no heartbeat)
    /// before idle peers treat it as unresponsive and reclaim its pending
    /// chunks. Also bounds how long a donor waits on an unresolved claim.
    pub rank_timeout: Duration,
    /// Interval between heartbeat broadcasts from each worker's main
    /// loop, refreshing peers' liveness views even when no protocol
    /// traffic flows.
    pub heartbeat_interval: Duration,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            device: DeviceConfig::v100_like(),
            engine: EngineConfig::default(),
            dist_chunk: 512,
            partition: Partition::RoundRobin,
            progressive_deepening: true,
            pacing: 0.0,
            fault_plan: FaultPlan::default(),
            rank_timeout: Duration::from_millis(50),
            heartbeat_interval: Duration::from_millis(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DistConfig::default();
        assert_eq!(c.dist_chunk, 512);
        assert_eq!(c.partition, Partition::RoundRobin);
        assert!(c.progressive_deepening);
        assert_eq!(c.pacing, 0.0);
        assert!(c.fault_plan.is_empty());
        assert_eq!(c.rank_timeout, Duration::from_millis(50));
        assert_eq!(c.heartbeat_interval, Duration::from_millis(10));
    }
}
