//! Distributed-run configuration.

use cuts_core::EngineConfig;
use cuts_gpu_sim::DeviceConfig;

use crate::worker::Partition;

/// Configuration for a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Per-rank device (each node of the paper's cluster has one V100).
    pub device: DeviceConfig,
    /// Per-rank engine configuration.
    pub engine: EngineConfig,
    /// Paths per job batch — the §4.2 outer chunk granularity.
    pub dist_chunk: usize,
    /// Root-candidate partitioning.
    pub partition: Partition,
    /// When a peer is idle and the local queue holds a single heavy job,
    /// expand it one level and re-chunk so part of its subtree can be
    /// donated (the finer-granularity mid-trie donation of §4.2).
    pub progressive_deepening: bool,
    /// Wall-clock pacing factor: after each job, sleep
    /// `sim_millis × pacing` milliseconds so the host timeline tracks the
    /// simulated device timeline. 0 disables. Without pacing, host wall
    /// time (which drives when FREE broadcasts happen) is dominated by
    /// per-job overhead rather than modelled cost, so the donation
    /// protocol cannot react to *simulated* stragglers.
    pub pacing: f64,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            device: DeviceConfig::v100_like(),
            engine: EngineConfig::default(),
            dist_chunk: 512,
            partition: Partition::RoundRobin,
            progressive_deepening: true,
            pacing: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DistConfig::default();
        assert_eq!(c.dist_chunk, 512);
        assert_eq!(c.partition, Partition::RoundRobin);
        assert!(c.progressive_deepening);
        assert_eq!(c.pacing, 0.0);
    }
}
