//! Distributed-run configuration.

use std::time::Duration;

use cuts_core::error::{ConfigError, CutsError};
use cuts_core::EngineConfig;
use cuts_gpu_sim::DeviceConfig;
use cuts_obs::{Registry, Trace};

use crate::fault::FaultPlan;
use crate::worker::Partition;

/// Configuration for a distributed run.
#[derive(Clone)]
pub struct DistConfig {
    /// Per-rank device (each node of the paper's cluster has one V100).
    pub device: DeviceConfig,
    /// Per-rank engine configuration.
    pub engine: EngineConfig,
    /// Paths per job batch — the §4.2 outer chunk granularity.
    pub dist_chunk: usize,
    /// Root-candidate partitioning.
    pub partition: Partition,
    /// When a peer is idle and the local queue holds a single heavy job,
    /// expand it one level and re-chunk so part of its subtree can be
    /// donated (the finer-granularity mid-trie donation of §4.2).
    pub progressive_deepening: bool,
    /// Wall-clock pacing factor: after each job, sleep
    /// `sim_millis × pacing` milliseconds so the host timeline tracks the
    /// simulated device timeline. 0 disables. Without pacing, host wall
    /// time (which drives when FREE broadcasts happen) is dominated by
    /// per-job overhead rather than modelled cost, so the donation
    /// protocol cannot react to *simulated* stragglers.
    pub pacing: f64,
    /// Deterministic fault schedule injected at the message/worker layer.
    /// Empty (the default) means a fault-free run.
    pub fault_plan: FaultPlan,
    /// How long a rank may go unheard-from (no message, no heartbeat)
    /// before idle peers treat it as unresponsive and reclaim its pending
    /// chunks. Also bounds how long a donor waits on an unresolved claim.
    pub rank_timeout: Duration,
    /// Interval between heartbeat broadcasts from each worker's main
    /// loop, refreshing peers' liveness views even when no protocol
    /// traffic flows.
    pub heartbeat_interval: Duration,
    /// Trace every rank's kernel launches, chunk lifecycle, donations,
    /// heartbeats, and injected faults are journalled into (rank-tagged).
    /// Disabled by default.
    pub trace: Trace,
    /// Serving-metrics registry the run records per-rank busy gauges,
    /// balance gauges, and recovery counters into; the same handle comes
    /// back on [`crate::DistResult::telemetry`]. Enabled by default —
    /// pass [`Registry::disabled`] to measure the zero-cost path.
    pub telemetry: Registry,
}

impl std::fmt::Debug for DistConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistConfig")
            .field("device", &self.device)
            .field("engine", &self.engine)
            .field("dist_chunk", &self.dist_chunk)
            .field("partition", &self.partition)
            .field("progressive_deepening", &self.progressive_deepening)
            .field("pacing", &self.pacing)
            .field("fault_plan", &self.fault_plan)
            .field("rank_timeout", &self.rank_timeout)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("trace_enabled", &self.trace.is_enabled())
            .field("telemetry_enabled", &self.telemetry.is_enabled())
            .finish()
    }
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            device: DeviceConfig::v100_like(),
            engine: EngineConfig::default(),
            dist_chunk: 512,
            partition: Partition::RoundRobin,
            progressive_deepening: true,
            pacing: 0.0,
            fault_plan: FaultPlan::default(),
            rank_timeout: Duration::from_millis(50),
            heartbeat_interval: Duration::from_millis(10),
            trace: Trace::disabled(),
            telemetry: Registry::enabled(),
        }
    }
}

impl DistConfig {
    /// A validating builder: illegal values (zero ranks, a trie budget
    /// that cannot fit the per-rank device, a fault plan naming ranks
    /// outside the world) surface as typed [`ConfigError`] /
    /// [`cuts_core::error::DistError`] conversions at
    /// [`DistConfigBuilder::build`] time
    /// instead of failing deep inside a run.
    pub fn builder() -> DistConfigBuilder {
        DistConfigBuilder {
            config: DistConfig::default(),
            ranks: None,
        }
    }
}

/// Validating builder for [`DistConfig`] (see [`DistConfig::builder`]).
#[derive(Debug, Clone)]
pub struct DistConfigBuilder {
    config: DistConfig,
    ranks: Option<usize>,
}

impl DistConfigBuilder {
    /// Per-rank device model.
    pub fn device(mut self, d: DeviceConfig) -> Self {
        self.config.device = d;
        self
    }

    /// Per-rank engine configuration.
    pub fn engine(mut self, e: EngineConfig) -> Self {
        self.config.engine = e;
        self
    }

    /// Paths per job batch (must be ≥ 1).
    pub fn dist_chunk(mut self, n: usize) -> Self {
        self.config.dist_chunk = n;
        self
    }

    /// Root-candidate partitioning.
    pub fn partition(mut self, p: Partition) -> Self {
        self.config.partition = p;
        self
    }

    /// Mid-trie donation of a lone heavy job.
    pub fn progressive_deepening(mut self, on: bool) -> Self {
        self.config.progressive_deepening = on;
        self
    }

    /// Wall-clock pacing factor (must be ≥ 0).
    pub fn pacing(mut self, p: f64) -> Self {
        self.config.pacing = p;
        self
    }

    /// Deterministic fault schedule.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = plan;
        self
    }

    /// Unresponsive-rank reclaim timeout (must be non-zero).
    pub fn rank_timeout(mut self, d: Duration) -> Self {
        self.config.rank_timeout = d;
        self
    }

    /// Heartbeat broadcast interval (must be non-zero).
    pub fn heartbeat_interval(mut self, d: Duration) -> Self {
        self.config.heartbeat_interval = d;
        self
    }

    /// Attaches a trace every rank journals into.
    pub fn trace(mut self, t: Trace) -> Self {
        self.config.trace = t;
        self
    }

    /// Explicit serving-metrics registry (default: a fresh enabled one).
    pub fn telemetry(mut self, r: Registry) -> Self {
        self.config.telemetry = r;
        self
    }

    /// Validates against a concrete world size: `build` rejects zero
    /// ranks and fault-plan clauses naming ranks outside `0..ranks`.
    pub fn for_ranks(mut self, ranks: usize) -> Self {
        self.ranks = Some(ranks);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<DistConfig, CutsError> {
        let c = &self.config;
        if c.dist_chunk == 0 {
            return Err(ConfigError::Invalid {
                field: "dist_chunk",
                reason: "must be at least 1",
            }
            .into());
        }
        if c.pacing.is_nan() || c.pacing < 0.0 {
            return Err(ConfigError::Invalid {
                field: "pacing",
                reason: "must be non-negative",
            }
            .into());
        }
        if c.rank_timeout.is_zero() {
            return Err(ConfigError::Invalid {
                field: "rank_timeout",
                reason: "must be positive",
            }
            .into());
        }
        if c.heartbeat_interval.is_zero() {
            return Err(ConfigError::Invalid {
                field: "heartbeat_interval",
                reason: "must be positive",
            }
            .into());
        }
        if let Some(ranks) = self.ranks {
            if ranks == 0 {
                return Err(ConfigError::Invalid {
                    field: "ranks",
                    reason: "must be at least 1",
                }
                .into());
            }
            c.fault_plan.check_ranks(ranks)?;
        }
        // The engine's trie budget must fit the per-rank device.
        let budget_entries =
            (c.device.global_mem_words as f64 * c.engine.trie_fraction) as usize / 2;
        if budget_entries == 0 {
            return Err(ConfigError::Budget {
                required_words: 2,
                device_words: c.device.global_mem_words,
            }
            .into());
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DistConfig::default();
        assert_eq!(c.dist_chunk, 512);
        assert_eq!(c.partition, Partition::RoundRobin);
        assert!(c.progressive_deepening);
        assert_eq!(c.pacing, 0.0);
        assert!(c.fault_plan.is_empty());
        assert_eq!(c.rank_timeout, Duration::from_millis(50));
        assert_eq!(c.heartbeat_interval, Duration::from_millis(10));
    }

    #[test]
    fn builder_validates() {
        let ok = DistConfig::builder()
            .dist_chunk(64)
            .pacing(1.5)
            .for_ranks(4)
            .build()
            .unwrap();
        assert_eq!(ok.dist_chunk, 64);

        assert!(matches!(
            DistConfig::builder().for_ranks(0).build(),
            Err(CutsError::Config(ConfigError::Invalid {
                field: "ranks",
                ..
            }))
        ));
        assert!(matches!(
            DistConfig::builder().dist_chunk(0).build(),
            Err(CutsError::Config(ConfigError::Invalid {
                field: "dist_chunk",
                ..
            }))
        ));
        // A fault plan naming a rank outside the world is caught at
        // build time, not silently dropped at run time.
        let plan = FaultPlan::parse("crash:7@0").unwrap();
        assert!(matches!(
            DistConfig::builder().fault_plan(plan).for_ranks(2).build(),
            Err(CutsError::Dist(
                cuts_core::error::DistError::RankOutOfRange { rank: 7, ranks: 2 }
            ))
        ));
        // Trie budget must fit the device.
        let tiny = DeviceConfig {
            global_mem_words: 1,
            ..DeviceConfig::test_small()
        };
        assert!(matches!(
            DistConfig::builder().device(tiny).build(),
            Err(CutsError::Config(ConfigError::Budget { .. }))
        ));
    }
}
