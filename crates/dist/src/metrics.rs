//! Per-rank and aggregate metrics for the distributed runs (Figures 4-5).

use cuts_gpu_sim::Counters;
use cuts_obs::{Json, Registry, ToJson};

/// Metrics for one rank.
#[derive(Debug, Clone, Default)]
pub struct RankMetrics {
    /// Rank id.
    pub rank: usize,
    /// Matches this rank completed (its own partition plus donations).
    pub matches: u64,
    /// Simulated device-busy time (roofline ms, summed over jobs) — the
    /// per-node "T1…T4" bars of Figure 5.
    pub busy_sim_millis: f64,
    /// Host wall time spent inside kernels/jobs.
    pub busy_wall_millis: f64,
    /// Jobs processed (initial partition chunks + received donations).
    pub jobs_processed: usize,
    /// Donations this rank sent (as the busy side of the protocol).
    pub donations_sent: usize,
    /// Donations this rank received (as the free side).
    pub donations_received: usize,
    /// Messages this rank sent (all tags).
    pub messages_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Chunks this rank reclaimed from crashed or unresponsive peers.
    pub chunks_reassigned: usize,
    /// Donated chunks this rank received (or recomputed) that were
    /// already committed elsewhere — discarded by the at-least-once
    /// dedup, never double-counted.
    pub duplicate_chunks: usize,
    /// Query plans built on this rank (1 in steady state: the session
    /// plans once and reuses across chunks, donations, and replays).
    pub plan_builds: u64,
    /// Jobs that reused the rank's cached plan.
    pub plan_reuses: u64,
    /// Trie slab acquisitions served from the rank's arena — every trie
    /// this rank ran on after the one-time carve, none of which touched
    /// the device allocator.
    pub buffer_reuses: u64,
    /// Messages from this rank eaten by fault injection.
    pub messages_dropped: u64,
    /// Messages from this rank delayed by fault injection.
    pub messages_delayed: u64,
    /// True when this rank crashed (injected fault or panic) and its
    /// remaining work was recovered by the survivors.
    pub lost: bool,
    /// Aggregated device counters across all jobs.
    pub counters: Counters,
}

impl ToJson for RankMetrics {
    fn to_json(&self) -> Json {
        Json::obj([
            ("rank", Json::U64(self.rank as u64)),
            ("matches", Json::U64(self.matches)),
            ("busy_sim_millis", Json::F64(self.busy_sim_millis)),
            ("busy_wall_millis", Json::F64(self.busy_wall_millis)),
            ("jobs_processed", Json::U64(self.jobs_processed as u64)),
            ("donations_sent", Json::U64(self.donations_sent as u64)),
            (
                "donations_received",
                Json::U64(self.donations_received as u64),
            ),
            ("messages_sent", Json::U64(self.messages_sent)),
            ("bytes_sent", Json::U64(self.bytes_sent)),
            (
                "chunks_reassigned",
                Json::U64(self.chunks_reassigned as u64),
            ),
            ("duplicate_chunks", Json::U64(self.duplicate_chunks as u64)),
            ("plan_builds", Json::U64(self.plan_builds)),
            ("plan_reuses", Json::U64(self.plan_reuses)),
            ("buffer_reuses", Json::U64(self.buffer_reuses)),
            ("messages_dropped", Json::U64(self.messages_dropped)),
            ("messages_delayed", Json::U64(self.messages_delayed)),
            ("lost", Json::Bool(self.lost)),
            ("counters", self.counters.to_json()),
        ])
    }
}

/// Aggregate fault-recovery metrics for a run. All-zero in a fault-free
/// run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// Ranks that crashed during the run.
    pub ranks_lost: usize,
    /// Which ranks crashed.
    pub lost_ranks: Vec<usize>,
    /// Chunks re-homed from crashed/unresponsive ranks to survivors.
    pub chunks_reassigned: usize,
    /// Chunks whose results arrived more than once and were deduplicated.
    pub duplicate_chunks: usize,
    /// Messages eaten by fault injection (sum over ranks).
    pub messages_dropped: u64,
    /// Messages delayed by fault injection (sum over ranks).
    pub messages_delayed: u64,
    /// Wall milliseconds from the first rank loss until every outstanding
    /// chunk was re-committed; 0 when no rank was lost.
    pub recovery_millis: f64,
}

impl RecoveryStats {
    /// True when the run saw no faults at all.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

impl ToJson for RecoveryStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("ranks_lost", Json::U64(self.ranks_lost as u64)),
            (
                "lost_ranks",
                Json::Arr(
                    self.lost_ranks
                        .iter()
                        .map(|&r| Json::U64(r as u64))
                        .collect(),
                ),
            ),
            (
                "chunks_reassigned",
                Json::U64(self.chunks_reassigned as u64),
            ),
            ("duplicate_chunks", Json::U64(self.duplicate_chunks as u64)),
            ("messages_dropped", Json::U64(self.messages_dropped)),
            ("messages_delayed", Json::U64(self.messages_delayed)),
            ("recovery_millis", Json::F64(self.recovery_millis)),
            ("clean", Json::Bool(self.is_clean())),
        ])
    }
}

/// Outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Total matches across all ranks.
    pub total_matches: u64,
    /// Per-rank metrics, indexed by rank.
    pub per_rank: Vec<RankMetrics>,
    /// End-to-end wall time of the whole run.
    pub wall_millis: f64,
    /// Fault-recovery metrics (all-zero when nothing failed).
    pub recovery: RecoveryStats,
    /// Path of the flight-recorder post-mortem written when the first
    /// rank died, if any did.
    pub postmortem: Option<String>,
    /// The run's serving-metrics registry (per-rank busy/imbalance
    /// gauges, balance ratio, recovery counters); feed its snapshot to
    /// the Prometheus exporter.
    pub telemetry: Registry,
}

impl DistResult {
    /// Slowest rank's simulated busy time — the distributed makespan that
    /// Figure 4 speedups are computed from.
    pub fn makespan_sim_millis(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.busy_sim_millis)
            .fold(0.0, f64::max)
    }

    /// Load-balance ratio: min/max busy time over ranks (1.0 = perfect,
    /// the Figure 5 claim is that this stays high).
    pub fn balance_ratio(&self) -> f64 {
        let max = self.makespan_sim_millis();
        if max == 0.0 {
            return 1.0;
        }
        let min = self
            .per_rank
            .iter()
            .map(|r| r.busy_sim_millis)
            .fold(f64::INFINITY, f64::min);
        min / max
    }
}

impl ToJson for DistResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_matches", Json::U64(self.total_matches)),
            ("wall_millis", Json::F64(self.wall_millis)),
            ("makespan_sim_millis", Json::F64(self.makespan_sim_millis())),
            ("balance_ratio", Json::F64(self.balance_ratio())),
            (
                "per_rank",
                Json::Arr(self.per_rank.iter().map(ToJson::to_json).collect()),
            ),
            ("recovery", self.recovery.to_json()),
            (
                "postmortem",
                self.postmortem.clone().map_or(Json::Null, Json::Str),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rk(rank: usize, busy: f64) -> RankMetrics {
        RankMetrics {
            rank,
            busy_sim_millis: busy,
            ..Default::default()
        }
    }

    #[test]
    fn makespan_and_balance() {
        let r = DistResult {
            total_matches: 0,
            per_rank: vec![rk(0, 10.0), rk(1, 8.0), rk(2, 9.0)],
            wall_millis: 0.0,
            recovery: RecoveryStats::default(),
            postmortem: None,
            telemetry: Registry::disabled(),
        };
        assert!((r.makespan_sim_millis() - 10.0).abs() < 1e-12);
        assert!((r.balance_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_zero_load() {
        let r = DistResult {
            total_matches: 0,
            per_rank: vec![rk(0, 0.0)],
            wall_millis: 0.0,
            recovery: RecoveryStats::default(),
            postmortem: None,
            telemetry: Registry::disabled(),
        };
        assert_eq!(r.balance_ratio(), 1.0);
    }

    #[test]
    fn recovery_stats_cleanliness() {
        assert!(RecoveryStats::default().is_clean());
        let dirty = RecoveryStats {
            messages_dropped: 1,
            ..Default::default()
        };
        assert!(!dirty.is_clean());
    }
}
