//! Top-level distributed driver: spins up one worker thread per rank over
//! a shared [`Comm`] universe and aggregates results.

use std::time::Instant;

use cuts_graph::Graph;

pub use crate::config::DistConfig;
use crate::metrics::{DistResult, RankMetrics};
use crate::mpi::Comm;
use crate::worker::{Worker, WorkerError};

/// Runs `query` against `data` on `ranks` simulated nodes. The returned
/// total equals the single-node count; per-rank metrics feed Figures 4-5.
///
/// ```
/// use cuts_dist::{run_distributed, DistConfig};
/// use cuts_gpu_sim::DeviceConfig;
/// use cuts_graph::generators::{clique, erdos_renyi};
///
/// let data = erdos_renyi(40, 160, 1);
/// let config = DistConfig {
///     device: DeviceConfig::test_small(),
///     dist_chunk: 8,
///     ..Default::default()
/// };
/// let two = run_distributed(&data, &clique(3), 2, &config).unwrap();
/// let four = run_distributed(&data, &clique(3), 4, &config).unwrap();
/// assert_eq!(two.total_matches, four.total_matches);
/// ```
pub fn run_distributed(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
) -> Result<DistResult, WorkerError> {
    assert!(ranks >= 1);
    let comms = Comm::universe(ranks);
    let start = Instant::now();
    let results: Vec<Result<(u64, RankMetrics), WorkerError>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let cfg = config.clone();
                    s.spawn(move || Worker::new(comm, cfg, data, query).run())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

    let mut per_rank = Vec::with_capacity(ranks);
    let mut total = 0u64;
    for r in results {
        let (count, metrics) = r?;
        total += count;
        per_rank.push(metrics);
    }
    per_rank.sort_by_key(|m| m.rank);
    Ok(DistResult {
        total_matches: total,
        per_rank,
        wall_millis: start.elapsed().as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Partition;
    use cuts_core::CutsEngine;
    use cuts_gpu_sim::{Device, DeviceConfig};
    use cuts_graph::generators::{barabasi_albert, clique, erdos_renyi};

    fn single_node_count(data: &Graph, query: &Graph) -> u64 {
        let device = Device::new(DeviceConfig::test_small());
        CutsEngine::new(&device).run(data, query).unwrap().num_matches
    }

    fn cfg() -> DistConfig {
        DistConfig {
            device: DeviceConfig::test_small(),
            dist_chunk: 8,
            ..Default::default()
        }
    }

    #[test]
    fn matches_single_node_across_rank_counts() {
        let data = erdos_renyi(60, 240, 17);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        for ranks in [1, 2, 4] {
            let r = run_distributed(&data, &query, ranks, &cfg()).unwrap();
            assert_eq!(r.total_matches, want, "ranks = {ranks}");
            assert_eq!(r.per_rank.len(), ranks);
        }
    }

    #[test]
    fn donation_rebalances_all_to_rank_zero() {
        let data = barabasi_albert(80, 3, 7);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let mut c = cfg();
        c.partition = Partition::AllToRankZero;
        c.dist_chunk = 4;
        let r = run_distributed(&data, &query, 3, &c).unwrap();
        assert_eq!(r.total_matches, want);
        // Rank 0 must have donated; someone must have received.
        assert!(r.per_rank[0].donations_sent > 0, "{:?}", r.per_rank);
        let received: usize = r.per_rank.iter().map(|m| m.donations_received).sum();
        assert!(received > 0);
        // And ranks 1/2 actually did work.
        assert!(r.per_rank[1].matches + r.per_rank[2].matches > 0);
    }

    #[test]
    fn progressive_deepening_splits_single_heavy_job() {
        // One root candidate only (a star hub): without deepening, rank 0
        // holds one indivisible job and peers idle; with deepening the
        // hub's subtree is split and donated.
        let data = cuts_graph::generators::star(40);
        let query = cuts_graph::generators::star(4);
        let want = single_node_count(&data, &query);
        assert!(want > 0);
        let mut c = cfg();
        c.dist_chunk = 4;
        c.progressive_deepening = true;
        let r = run_distributed(&data, &query, 2, &c).unwrap();
        assert_eq!(r.total_matches, want);
        // The hub job was split: both ranks processed something.
        assert!(
            r.per_rank.iter().all(|m| m.jobs_processed > 0),
            "{:?}",
            r.per_rank
        );
        assert!(r.per_rank.iter().map(|m| m.donations_sent).sum::<usize>() > 0);
    }

    #[test]
    fn deepening_off_still_correct() {
        let data = barabasi_albert(60, 3, 3);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let mut c = cfg();
        c.progressive_deepening = false;
        let r = run_distributed(&data, &query, 3, &c).unwrap();
        assert_eq!(r.total_matches, want);
    }

    #[test]
    fn zero_match_case_terminates() {
        let data = erdos_renyi(30, 60, 1);
        let query = clique(6); // no degree-5 vertices in this sparse graph
        let r = run_distributed(&data, &query, 2, &cfg()).unwrap();
        assert_eq!(r.total_matches, 0);
    }

    #[test]
    fn metrics_populated() {
        let data = erdos_renyi(50, 200, 23);
        let query = clique(3);
        let r = run_distributed(&data, &query, 2, &cfg()).unwrap();
        for m in &r.per_rank {
            assert!(m.jobs_processed > 0);
            assert!(m.busy_sim_millis > 0.0);
            assert!(m.messages_sent > 0);
        }
        assert!(r.balance_ratio() > 0.0 && r.balance_ratio() <= 1.0);
        assert!(r.makespan_sim_millis() > 0.0);
    }
}
