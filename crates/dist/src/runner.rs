//! Top-level distributed driver: spins up one worker thread per rank over
//! a shared [`Comm`] universe and aggregates results.
//!
//! Failure handling: a worker thread that returns an error or panics is
//! treated as a lost rank, not a lost run. Its death flips the shared
//! [`AliveBoard`] (via a drop guard that fires even during unwinding),
//! surviving ranks reclaim its pending chunks from the
//! [`ChunkLedger`], and the run completes
//! with the identical match count — the ledger sum — plus populated
//! [`RecoveryStats`]. Only when *no* rank survives (or registration
//! itself fails everywhere) does [`run`] return the first rank's error.

use std::sync::Arc;
use std::time::Instant;

use cuts_graph::Graph;
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, EventKind, Registry, Trace};

pub use crate::config::DistConfig;
use crate::fault::FaultInjector;
use crate::ledger::{AliveBoard, ChunkLedger};
use crate::metrics::{DistResult, RankMetrics, RecoveryStats};
use crate::mpi::Comm;
use crate::worker::{Shared, Worker, WorkerError};

/// Flips the rank's liveness flag on *any* exit from the worker thread —
/// clean return, error return, or panic unwind — and starts the recovery
/// clock on the unclean ones.
struct ExitGuard<'a> {
    alive: &'a AliveBoard,
    ledger: &'a ChunkLedger,
    rank: usize,
    clean: bool,
}

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        self.alive.set_dead(self.rank);
        if !self.clean {
            self.ledger.note_loss();
        }
    }
}

/// Runs `query` against `data` on `ranks` simulated nodes — the single
/// distributed entry point. The returned total equals the single-node
/// count — including under any fault plan that leaves at least one rank
/// alive; per-rank metrics feed Figures 4-5.
///
/// Tracing and metrics are part of the configuration: set
/// [`DistConfig::trace`] to journal every rank's kernel launches, chunk
/// lifecycle, donations, heartbeats, and injected faults (rank-tagged,
/// wrapped in one `distributed` span on the caller's lane), and
/// [`DistConfig::telemetry`] to choose the registry receiving per-rank
/// busy gauges, balance gauges, and recovery counters (the same handle
/// comes back on [`DistResult::telemetry`]).
///
/// For a *stream of jobs* over long-lived ranks, use the serving tier
/// (`cuts_core::serve::ServeTier`) instead — it subsumes this path and
/// adds placement, whole-job migration, and job re-admission.
///
/// ```
/// use cuts_dist::{run, DistConfig};
/// use cuts_gpu_sim::DeviceConfig;
/// use cuts_graph::generators::{clique, erdos_renyi};
///
/// let data = erdos_renyi(40, 160, 1);
/// let config = DistConfig {
///     device: DeviceConfig::test_small(),
///     dist_chunk: 8,
///     ..Default::default()
/// };
/// let two = run(&data, &clique(3), 2, &config).unwrap();
/// let four = run(&data, &clique(3), 4, &config).unwrap();
/// assert_eq!(two.total_matches, four.total_matches);
/// ```
pub fn run(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
) -> Result<DistResult, WorkerError> {
    assert!(ranks >= 1);
    let trace = &config.trace;
    let registry = config.telemetry.clone();
    let mut run_span = if trace.is_enabled() {
        let mut s = trace.span(EventKind::Run, "distributed");
        s.arg("ranks", Arg::U64(ranks as u64));
        Some(s)
    } else {
        None
    };
    let injector = if config.fault_plan.is_empty() {
        None
    } else {
        Some(Arc::new(FaultInjector::new(
            config.fault_plan.clone(),
            ranks,
        )))
    };
    let shared = Shared::with_trace(ranks, injector.clone(), trace.clone());
    let comms = Comm::universe_with_faults(ranks, injector.clone());
    let start = Instant::now();
    let outcomes: Vec<Result<(u64, RankMetrics), WorkerError>> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let cfg = config.clone();
                let shared = shared.clone();
                s.spawn(move || {
                    let mut guard = ExitGuard {
                        alive: &shared.alive,
                        ledger: &shared.ledger,
                        rank: comm.rank(),
                        clean: false,
                    };
                    let r = Worker::new(comm, cfg, data, query, shared.clone()).run();
                    guard.clean = r.is_ok();
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(r) => r,
                Err(_) => Err(WorkerError::Panicked { rank }),
            })
            .collect()
    });

    let mut per_rank = Vec::with_capacity(ranks);
    let mut lost_ranks = Vec::new();
    let mut first_error = None;
    let mut postmortem = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok((_, metrics)) => per_rank.push(metrics),
            Err(e) => {
                lost_ranks.push(rank);
                flight::record_rank(
                    rank as u32,
                    FlightCode::RankDead,
                    matches!(e, WorkerError::Panicked { .. }) as u64,
                    0,
                );
                // One post-mortem per run: the flight rings hold the
                // typed events leading up to the first death.
                if first_error.is_none() {
                    first_error = Some(e);
                    postmortem = flight::postmortem("rank_death").map(|p| p.display().to_string());
                }
                per_rank.push(RankMetrics {
                    rank,
                    lost: true,
                    ..Default::default()
                });
            }
        }
    }
    // A rank only exits cleanly once every chunk has committed, so an
    // incomplete ledger means every rank failed: the run is unrecoverable
    // and the first failure is the cause. Likewise when no rank survived,
    // even if they happened to finish the work first.
    if !shared.ledger.all_completed() || lost_ranks.len() == ranks {
        return Err(first_error.expect("incomplete run implies a failed rank"));
    }

    if let Some(inj) = &injector {
        for m in per_rank.iter_mut() {
            m.messages_dropped = inj.messages_dropped(m.rank);
            m.messages_delayed = inj.messages_delayed(m.rank);
        }
    }
    per_rank.sort_by_key(|m| m.rank);
    let recovery = RecoveryStats {
        ranks_lost: lost_ranks.len(),
        lost_ranks,
        chunks_reassigned: shared.ledger.reassigned(),
        duplicate_chunks: per_rank.iter().map(|m| m.duplicate_chunks).sum(),
        messages_dropped: per_rank.iter().map(|m| m.messages_dropped).sum(),
        messages_delayed: per_rank.iter().map(|m| m.messages_delayed).sum(),
        recovery_millis: shared.ledger.recovery_millis(),
    };
    let result = DistResult {
        // The ledger sum, not the per-rank sum: immune to duplicated or
        // re-executed chunks.
        total_matches: shared.ledger.total_matches(),
        per_rank,
        wall_millis: start.elapsed().as_secs_f64() * 1e3,
        recovery,
        postmortem,
        telemetry: registry.clone(),
    };
    if registry.is_enabled() {
        let makespan = result.makespan_sim_millis();
        for m in &result.per_rank {
            let rs = m.rank.to_string();
            let l = [("rank", rs.as_str())];
            registry
                .gauge(
                    "cuts_rank_busy_sim_millis",
                    &l,
                    "Simulated device-busy milliseconds per rank",
                )
                .set(m.busy_sim_millis);
            // Per-rank imbalance: how far this rank trails the slowest
            // one (0 = it set the makespan).
            registry
                .gauge(
                    "cuts_rank_imbalance",
                    &l,
                    "1 - busy/makespan per rank (0 = this rank set the makespan)",
                )
                .set(if makespan > 0.0 {
                    1.0 - m.busy_sim_millis / makespan
                } else {
                    0.0
                });
        }
        registry
            .gauge(
                "cuts_dist_balance_ratio",
                &[],
                "min/max busy time over ranks (1.0 = perfect balance)",
            )
            .set(result.balance_ratio());
        let c = |name, help, v: u64| registry.counter(name, &[], help).add(v);
        c(
            "cuts_dist_ranks_lost_total",
            "Ranks that crashed during the run",
            result.recovery.ranks_lost as u64,
        );
        c(
            "cuts_dist_chunks_reassigned_total",
            "Chunks re-homed from dead or silent ranks to survivors",
            result.recovery.chunks_reassigned as u64,
        );
        c(
            "cuts_dist_duplicate_chunks_total",
            "Chunk results deduplicated by the at-least-once ledger",
            result.recovery.duplicate_chunks as u64,
        );
    }
    if let Some(s) = &mut run_span {
        s.arg("matches", Arg::U64(result.total_matches));
    }
    Ok(result)
}

/// Deprecated alias of [`run`].
///
/// Callers that deny deprecations fail to compile against it:
///
/// ```compile_fail
/// #![deny(deprecated)]
/// use cuts_dist::{run_distributed, DistConfig};
/// use cuts_graph::generators::clique;
///
/// let _ = run_distributed(&clique(4), &clique(3), 2, &DistConfig::default());
/// ```
#[deprecated(
    since = "0.2.0",
    note = "use `cuts_dist::run` (or `cuts_core::serve::ServeTier` for job streams)"
)]
pub fn run_distributed(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
) -> Result<DistResult, WorkerError> {
    run(data, query, ranks, config)
}

/// Deprecated: set [`DistConfig::trace`] and call [`run`].
///
/// Callers that deny deprecations fail to compile against it:
///
/// ```compile_fail
/// #![deny(deprecated)]
/// use cuts_dist::{run_distributed_traced, DistConfig};
/// use cuts_graph::generators::clique;
/// use cuts_obs::Trace;
///
/// let t = Trace::disabled();
/// let _ = run_distributed_traced(&clique(4), &clique(3), 2, &DistConfig::default(), &t);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "set `DistConfig::trace` (or `.builder().trace(..)`) and use `cuts_dist::run`"
)]
pub fn run_distributed_traced(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
    trace: &Trace,
) -> Result<DistResult, WorkerError> {
    let mut c = config.clone();
    c.trace = trace.clone();
    run(data, query, ranks, &c)
}

/// Deprecated: set [`DistConfig::trace`] / [`DistConfig::telemetry`] and
/// call [`run`].
///
/// Callers that deny deprecations fail to compile against it:
///
/// ```compile_fail
/// #![deny(deprecated)]
/// use cuts_dist::{run_distributed_observed, DistConfig};
/// use cuts_graph::generators::clique;
/// use cuts_obs::{Registry, Trace};
///
/// let t = Trace::disabled();
/// let r = Registry::new();
/// let _ = run_distributed_observed(&clique(4), &clique(3), 2, &DistConfig::default(), &t, r);
/// ```
#[deprecated(
    since = "0.2.0",
    note = "set `DistConfig::trace` / `DistConfig::telemetry` and use `cuts_dist::run`"
)]
pub fn run_distributed_observed(
    data: &Graph,
    query: &Graph,
    ranks: usize,
    config: &DistConfig,
    trace: &Trace,
    registry: Registry,
) -> Result<DistResult, WorkerError> {
    let mut c = config.clone();
    c.trace = trace.clone();
    c.telemetry = registry;
    run(data, query, ranks, &c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::worker::Partition;
    use cuts_core::CutsEngine;
    use cuts_gpu_sim::{Device, DeviceConfig};
    use cuts_graph::generators::{barabasi_albert, clique, erdos_renyi};

    fn single_node_count(data: &Graph, query: &Graph) -> u64 {
        let device = Device::new(DeviceConfig::test_small());
        CutsEngine::new(&device)
            .run(data, query)
            .unwrap()
            .num_matches
    }

    fn cfg() -> DistConfig {
        DistConfig {
            device: DeviceConfig::test_small(),
            dist_chunk: 8,
            ..Default::default()
        }
    }

    #[test]
    fn matches_single_node_across_rank_counts() {
        let data = erdos_renyi(60, 240, 17);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        for ranks in [1, 2, 4] {
            let r = run(&data, &query, ranks, &cfg()).unwrap();
            assert_eq!(r.total_matches, want, "ranks = {ranks}");
            assert_eq!(r.per_rank.len(), ranks);
            assert!(r.recovery.is_clean(), "fault-free run: {:?}", r.recovery);
        }
    }

    #[test]
    fn donation_rebalances_all_to_rank_zero() {
        let data = barabasi_albert(80, 3, 7);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let mut c = cfg();
        c.partition = Partition::AllToRankZero;
        c.dist_chunk = 4;
        let r = run(&data, &query, 3, &c).unwrap();
        assert_eq!(r.total_matches, want);
        // Rank 0 must have donated; someone must have received.
        assert!(r.per_rank[0].donations_sent > 0, "{:?}", r.per_rank);
        let received: usize = r.per_rank.iter().map(|m| m.donations_received).sum();
        assert!(received > 0);
        // And ranks 1/2 actually did work.
        assert!(r.per_rank[1].matches + r.per_rank[2].matches > 0);
    }

    #[test]
    fn progressive_deepening_splits_single_heavy_job() {
        // One root candidate only (a star hub): without deepening, rank 0
        // holds one indivisible job and peers idle; with deepening the
        // hub's subtree is split and donated.
        let data = cuts_graph::generators::star(40);
        let query = cuts_graph::generators::star(4);
        let want = single_node_count(&data, &query);
        assert!(want > 0);
        let mut c = cfg();
        c.dist_chunk = 4;
        c.progressive_deepening = true;
        let r = run(&data, &query, 2, &c).unwrap();
        assert_eq!(r.total_matches, want);
        // The hub job was split: both ranks processed something.
        assert!(
            r.per_rank.iter().all(|m| m.jobs_processed > 0),
            "{:?}",
            r.per_rank
        );
        assert!(r.per_rank.iter().map(|m| m.donations_sent).sum::<usize>() > 0);
    }

    #[test]
    fn deepening_off_still_correct() {
        let data = barabasi_albert(60, 3, 3);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let mut c = cfg();
        c.progressive_deepening = false;
        let r = run(&data, &query, 3, &c).unwrap();
        assert_eq!(r.total_matches, want);
    }

    #[test]
    fn zero_match_case_terminates() {
        let data = erdos_renyi(30, 60, 1);
        let query = clique(6); // no degree-5 vertices in this sparse graph
        let r = run(&data, &query, 2, &cfg()).unwrap();
        assert_eq!(r.total_matches, 0);
    }

    #[test]
    fn metrics_populated() {
        let data = erdos_renyi(50, 200, 23);
        let query = clique(3);
        let r = run(&data, &query, 2, &cfg()).unwrap();
        for m in &r.per_rank {
            assert!(m.jobs_processed > 0);
            assert!(m.busy_sim_millis > 0.0);
            assert!(m.messages_sent > 0);
        }
        assert!(r.balance_ratio() > 0.0 && r.balance_ratio() <= 1.0);
        assert!(r.makespan_sim_millis() > 0.0);
    }

    #[test]
    fn crashed_rank_recovered_by_survivor() {
        let data = erdos_renyi(60, 240, 17);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let mut c = cfg();
        c.fault_plan = FaultPlan::parse("crash:1@0").unwrap();
        let r = run(&data, &query, 2, &c).unwrap();
        assert_eq!(r.total_matches, want);
        assert_eq!(r.recovery.lost_ranks, vec![1]);
        assert!(r.per_rank[1].lost);
        assert!(r.recovery.chunks_reassigned > 0);
        assert!(r.recovery.recovery_millis > 0.0);
    }

    #[test]
    fn rank_death_writes_postmortem_and_imbalance_gauges() {
        let data = erdos_renyi(60, 240, 17);
        let query = clique(3);
        let mut c = cfg();
        c.fault_plan = FaultPlan::parse("crash:1@0").unwrap();
        let reg = cuts_obs::Registry::enabled();
        c.telemetry = reg.clone();
        let r = run(&data, &query, 2, &c).unwrap();
        assert_eq!(r.recovery.lost_ranks, vec![1]);
        // The dump exists, parses, and holds the dead rank's last events.
        let path = r.postmortem.as_ref().expect("postmortem on rank death");
        let text = std::fs::read_to_string(path).unwrap();
        let (reason, events) = cuts_obs::flight::parse_dump(&text).unwrap();
        assert_eq!(reason, "rank_death");
        assert!(events
            .iter()
            .any(|e| e.code == cuts_obs::FlightCode::RankDead && e.rank == Some(1)));
        assert!(events
            .iter()
            .any(|e| e.code == cuts_obs::FlightCode::ChunkCommit));
        let _ = std::fs::remove_file(path);
        // Gauges and recovery counters landed in the registry.
        assert_eq!(reg.counter("cuts_dist_ranks_lost_total", &[], "").get(), 1);
        assert!(
            reg.counter("cuts_dist_chunks_reassigned_total", &[], "")
                .get()
                > 0
        );
        let busy0 = reg.gauge("cuts_rank_busy_sim_millis", &[("rank", "0")], "");
        assert!(busy0.get() > 0.0, "surviving rank did the work");
        let prom = reg.snapshot().render();
        assert!(prom.contains("cuts_rank_imbalance"));
        cuts_obs::validate_exposition(&prom).expect("scrapeable");
    }

    #[test]
    fn fault_free_run_keeps_clean_recovery_with_observation() {
        // The observed variant must not perturb results: same counts,
        // clean recovery, no postmortem.
        let data = erdos_renyi(60, 240, 17);
        let query = clique(3);
        let want = single_node_count(&data, &query);
        let r = run(&data, &query, 2, &cfg()).unwrap();
        assert_eq!(r.total_matches, want);
        assert!(r.recovery.is_clean());
        assert!(r.postmortem.is_none());
        assert!(r.telemetry.is_enabled(), "observation is always-on");
    }

    #[test]
    fn worker_panic_becomes_error_not_panic() {
        // All ranks panic immediately: the runner must return Err, never
        // propagate the unwind (the satellite regression for the old
        // `join().expect(...)`).
        let data = erdos_renyi(30, 90, 5);
        let query = clique(3);
        let mut c = cfg();
        c.fault_plan = FaultPlan::parse("panic:0@0").unwrap();
        let r = run(&data, &query, 1, &c);
        match r {
            Err(WorkerError::Panicked { rank: 0 }) => {}
            other => panic!("expected Panicked {{ rank: 0 }}, got {other:?}"),
        }
    }
}
