//! Per-rank worker: Algorithm 3's chunked outer loop with asynchronous
//! donation at chunk boundaries.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;

use cuts_core::{CutsEngine, EngineError, MatchOrder};
use cuts_gpu_sim::Device;
use cuts_graph::Graph;
use cuts_trie::serial::WireError;
use cuts_trie::HostTrie;

use crate::config::DistConfig;
use crate::metrics::RankMetrics;
use crate::mpi::{Comm, Rank};
use crate::protocol::{tag, StatusBoard, WorkPayload};

/// How root candidates are split across ranks at start-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Interleaved assignment (the default; statistically balanced).
    RoundRobin,
    /// Contiguous blocks (id-order locality; imbalanced on skewed graphs —
    /// the ablation case that makes the donation protocol visibly work).
    Block,
    /// Everything to rank 0 (worst case; a pure donation stress test).
    AllToRankZero,
}

/// Worker failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// Local engine failure.
    Engine(EngineError),
    /// Malformed donation payload.
    Wire(WireError),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Engine(e) => write!(f, "{e}"),
            WorkerError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<EngineError> for WorkerError {
    fn from(e: EngineError) -> Self {
        WorkerError::Engine(e)
    }
}

impl From<WireError> for WorkerError {
    fn from(e: WireError) -> Self {
        WorkerError::Wire(e)
    }
}

enum Idle {
    Work(Vec<HostTrie>),
    Done,
}

/// One rank's execution state.
pub struct Worker<'a> {
    comm: Comm,
    device: Device,
    config: DistConfig,
    data: &'a Graph,
    query: &'a Graph,
    board: StatusBoard,
    metrics: RankMetrics,
}

impl<'a> Worker<'a> {
    /// Builds a worker owning its own simulated device.
    pub fn new(comm: Comm, config: DistConfig, data: &'a Graph, query: &'a Graph) -> Self {
        let rank = comm.rank();
        let size = comm.size();
        Worker {
            comm,
            device: Device::new(config.device.clone()),
            config,
            data,
            query,
            board: StatusBoard::new(size, rank),
            metrics: RankMetrics {
                rank,
                ..Default::default()
            },
        }
    }

    /// Initial jobs: this rank's share of the root candidate set, split
    /// into `dist_chunk`-path batches (§4.2 `init_match(Q, D, rank)`).
    fn initial_jobs(&self) -> Result<VecDeque<HostTrie>, WorkerError> {
        let plan = MatchOrder::compute(self.query)?;
        let rank = self.comm.rank();
        let size = self.comm.size();
        let all: Vec<Vec<u32>> = (0..self.data.num_vertices() as u32)
            .filter(|&v| {
                self.data.degree_dominates(v, plan.q_out[0], plan.q_in[0])
                    && cuts_core::order::label_ok(self.data, v, plan.q_label[0])
            })
            .map(|v| vec![v])
            .collect();
        let mine: Vec<Vec<u32>> = match self.config.partition {
            Partition::RoundRobin => all
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| i % size == rank)
                .map(|(_, p)| p)
                .collect(),
            Partition::Block => {
                let per = all.len().div_ceil(size).max(1);
                all.chunks(per)
                    .nth(rank)
                    .map(|c| c.to_vec())
                    .unwrap_or_default()
            }
            Partition::AllToRankZero => {
                if rank == 0 {
                    all
                } else {
                    Vec::new()
                }
            }
        };
        Ok(mine
            .chunks(self.config.dist_chunk)
            .filter(|c| !c.is_empty())
            .map(HostTrie::from_flat_paths)
            .collect())
    }

    /// Runs the rank to completion, returning its match count and metrics.
    pub fn run(mut self) -> Result<(u64, RankMetrics), WorkerError> {
        let mut queue = self.initial_jobs()?;
        let mut total = 0u64;
        loop {
            while let Some(job) = queue.pop_front() {
                self.poll_messages(&mut queue);
                self.maybe_donate(&mut queue);
                // Progressive deepening: when a peer is idle but the queue
                // has nothing spare to donate, split this job's subtree by
                // expanding one level and re-chunking the new frontier —
                // the finer-granularity donation §4.2 gets from shipping
                // partial tries mid-computation.
                // (Not gated on observing a free peer: FREE broadcasts
                // race with start-up, and the split is cheap relative to
                // the subtree it unlocks for donation.)
                if self.config.progressive_deepening
                    && self.comm.size() > 1
                    && queue.is_empty()
                    && job.depth() < self.query.num_vertices().saturating_sub(1)
                {
                    match self.deepen_job(&job) {
                        Some(jobs) if jobs.len() > 1 => {
                            queue.extend(jobs);
                            continue;
                        }
                        Some(jobs) => {
                            // One (or zero) sub-jobs: nothing gained,
                            // process directly.
                            for j in jobs {
                                total += self.process_job(&j)?;
                            }
                            continue;
                        }
                        None => {} // deepening failed; fall through
                    }
                }
                total += self.process_job(&job)?;
            }
            // Queue drained: save results, discard trie, announce free.
            self.comm.broadcast_others(tag::FREE, Bytes::new());
            match self.idle_loop()? {
                Idle::Work(jobs) => queue.extend(jobs),
                Idle::Done => break,
            }
        }
        self.metrics.matches = total;
        self.metrics.messages_sent = self.comm.stats().messages_sent();
        self.metrics.bytes_sent = self.comm.stats().bytes_sent();
        Ok((total, self.metrics))
    }

    /// Runs one job (a batch of partial paths) to completion.
    fn process_job(&mut self, job: &HostTrie) -> Result<u64, WorkerError> {
        if job.is_empty() {
            return Ok(0);
        }
        let engine = CutsEngine::with_config(&self.device, self.config.engine.clone());
        let r = engine.run_from_trie(self.data, self.query, job)?;
        self.metrics.busy_sim_millis += r.sim_millis;
        self.metrics.busy_wall_millis += r.wall_millis;
        self.metrics.counters += r.counters;
        self.metrics.jobs_processed += 1;
        if self.config.pacing > 0.0 {
            // Align the host timeline with the simulated device timeline
            // so FREE/donation timing reflects modelled cost.
            std::thread::sleep(Duration::from_secs_f64(
                r.sim_millis * self.config.pacing / 1000.0,
            ));
        }
        Ok(r.num_matches)
    }

    /// Expands a job one level and re-chunks the new frontier into jobs.
    /// Returns `None` when the expansion itself cannot fit on the device
    /// (the caller then processes the job whole, which may still succeed
    /// through the engine's own chunking).
    fn deepen_job(&self, job: &HostTrie) -> Option<Vec<HostTrie>> {
        let engine = CutsEngine::with_config(&self.device, self.config.engine.clone());
        let expanded = engine
            .expand_seed_once(self.data, self.query, job)
            .ok()?;
        let frontier_len = expanded
            .levels
            .last()
            .map(|l| l.len())
            .unwrap_or(0);
        if frontier_len == 0 {
            return Some(Vec::new());
        }
        let parts = frontier_len.div_ceil(self.config.dist_chunk).max(2);
        Some(expanded.split_frontier(parts))
    }

    /// Drains the mailbox while busy: track statuses, refuse claims, and
    /// defensively accept stray work.
    fn poll_messages(&mut self, queue: &mut VecDeque<HostTrie>) {
        while let Some(m) = self.comm.try_recv() {
            match m.tag {
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::CLAIM => self.comm.send(m.from, tag::NACK, Bytes::new()),
                tag::WORK => {
                    if let Ok(w) = WorkPayload::decode(m.payload) {
                        self.metrics.donations_received += 1;
                        queue.extend(w.jobs);
                    }
                }
                _ => {}
            }
        }
    }

    /// If a peer is free and we hold spare jobs, pair with it (claim →
    /// ack → work) and donate the back half of the queue.
    fn maybe_donate(&mut self, queue: &mut VecDeque<HostTrie>) {
        if queue.len() < 2 {
            return;
        }
        let Some(target) = self.board.first_free_peer() else {
            return;
        };
        self.comm.send(target, tag::CLAIM, Bytes::new());
        // Block on the claim's resolution; the target always answers.
        loop {
            let Some(m) = self.comm.recv_timeout(Duration::from_millis(10)) else {
                continue;
            };
            match m.tag {
                tag::ACK if m.from == target => {
                    let donate = queue.len() / 2;
                    let jobs: Vec<HostTrie> = (0..donate)
                        .filter_map(|_| queue.pop_back())
                        .collect();
                    let payload = WorkPayload { jobs }.encode();
                    self.comm.send(target, tag::WORK, payload);
                    self.board.mark_busy(target);
                    self.metrics.donations_sent += 1;
                    return;
                }
                tag::NACK if m.from == target => {
                    self.board.mark_busy(target);
                    return;
                }
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::CLAIM => self.comm.send(m.from, tag::NACK, Bytes::new()),
                tag::WORK => {
                    if let Ok(w) = WorkPayload::decode(m.payload) {
                        self.metrics.donations_received += 1;
                        queue.extend(w.jobs);
                    }
                }
                _ => {}
            }
        }
    }

    /// Idle loop of a free rank: grant the first claim, wait for its work,
    /// or exit when every peer is free.
    fn idle_loop(&mut self) -> Result<Idle, WorkerError> {
        let mut reserved: Option<Rank> = None;
        loop {
            if reserved.is_none() && self.board.all_peers_free() {
                return Ok(Idle::Done);
            }
            let Some(m) = self.comm.recv_timeout(Duration::from_millis(5)) else {
                continue;
            };
            match m.tag {
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::CLAIM => {
                    if reserved.is_none() {
                        reserved = Some(m.from);
                        self.comm.send(m.from, tag::ACK, Bytes::new());
                        // Everyone else must stop targeting us.
                        self.comm.broadcast_others(tag::BUSY, Bytes::new());
                    } else {
                        self.comm.send(m.from, tag::NACK, Bytes::new());
                    }
                }
                tag::WORK => {
                    debug_assert_eq!(Some(m.from), reserved, "work without ack");
                    let w = WorkPayload::decode(m.payload)?;
                    self.metrics.donations_received += 1;
                    self.board.mark_busy(self.comm.rank());
                    return Ok(Idle::Work(w.jobs));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;

    #[test]
    fn initial_jobs_round_robin_partition() {
        let data = cuts_graph::generators::clique(6);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut sizes = Vec::new();
        for comm in comms {
            let w = Worker::new(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 2,
                    ..Default::default()
                },
                &data,
                &query,
            );
            let jobs = w.initial_jobs().unwrap();
            let paths: usize = jobs.iter().map(|j| j.levels[0].len()).sum();
            sizes.push(paths);
        }
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn initial_jobs_all_to_rank_zero() {
        let data = cuts_graph::generators::clique(5);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut all = Vec::new();
        for comm in comms {
            let w = Worker::new(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 1,
                    partition: Partition::AllToRankZero,
                    ..Default::default()
                },
                &data,
                &query,
            );
            all.push(w.initial_jobs().unwrap().len());
        }
        assert_eq!(all, vec![5, 0]);
    }

    #[test]
    fn block_partition_contiguous() {
        let data = cuts_graph::generators::clique(7);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut firsts = Vec::new();
        for comm in comms {
            let w = Worker::new(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 64,
                    partition: Partition::Block,
                    ..Default::default()
                },
                &data,
                &query,
            );
            let jobs = w.initial_jobs().unwrap();
            let first = jobs
                .front()
                .map(|j| j.ca[j.levels[0].start])
                .unwrap_or(u32::MAX);
            firsts.push(first);
        }
        // Rank 0 starts at vertex 0, rank 1 at the split point 4.
        assert_eq!(firsts, vec![0, 4]);
    }
}
