//! Per-rank worker: Algorithm 3's chunked outer loop with asynchronous
//! donation at chunk boundaries, hardened against rank crashes and
//! message loss.
//!
//! Fault tolerance rests on three mechanisms:
//!
//! 1. **The chunk ledger** ([`crate::ledger::ChunkLedger`]): every chunk
//!    of work is registered before any rank starts, every hand-off is a
//!    ledger transfer, and every result is an idempotent per-chunk
//!    commit. `total_matches` is the ledger sum, so duplicated or
//!    re-executed chunks can never change the count.
//! 2. **Liveness tracking**: thread exit flips the [`AliveBoard`]
//!    (authoritative, like an MPI launcher seeing a process die), and
//!    [`tag::HEARTBEAT`] broadcasts keep the [`StatusBoard`]'s
//!    last-heard clocks fresh so *unresponsive* ranks are detected too.
//! 3. **Reclaim**: an idle rank that waits out `rank_timeout` claims
//!    every pending chunk owned by a dead or silent rank (and any chunk
//!    homed to itself whose `WORK` message was lost) and processes it
//!    locally. Because commits deduplicate, reclaiming too eagerly
//!    costs only wasted cycles, never correctness.
//!
//! Termination is ledger-driven — a worker exits when every registered
//! chunk has committed — rather than the all-peers-free consensus of the
//! bare protocol, which a single lost `FREE` broadcast would hang.

use std::collections::VecDeque;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use bytes::Bytes;

use cuts_core::{ExecSession, MatchOrder};
use cuts_gpu_sim::Device;
use cuts_graph::Graph;
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, EventKind, Trace};
use cuts_trie::serial::WireError;
use cuts_trie::HostTrie;

use crate::config::DistConfig;
use crate::fault::{CrashKind, FaultInjector};
use crate::ledger::{AliveBoard, ChunkId, ChunkLedger};
use crate::metrics::RankMetrics;
use crate::mpi::{Comm, Rank};
use crate::protocol::{tag, DonatedChunk, Status, StatusBoard, WorkPayload};

/// How root candidates are split across ranks at start-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Interleaved assignment (the default; statistically balanced).
    RoundRobin,
    /// Contiguous blocks (id-order locality; imbalanced on skewed graphs —
    /// the ablation case that makes the donation protocol visibly work).
    Block,
    /// Everything to rank 0 (worst case; a pure donation stress test).
    AllToRankZero,
}

/// Worker failures: the distributed-runtime error defined in
/// `cuts-core` so the whole workspace converges on `CutsError`. The
/// alias keeps the historical name this crate's API grew up with.
pub use cuts_core::error::DistError as WorkerError;

/// State every worker of a universe shares.
#[derive(Clone)]
pub struct Shared {
    /// Chunk ownership/result ledger.
    pub ledger: Arc<ChunkLedger>,
    /// Rank liveness flags.
    pub alive: Arc<AliveBoard>,
    /// Fault injector (`None` = fault-free run).
    pub injector: Option<Arc<FaultInjector>>,
    /// Start-up barrier: every rank registers its initial chunks before
    /// any rank may observe `all_completed`, so an early-idle rank can
    /// never conclude the run is over while peers are still registering.
    pub barrier: Arc<Barrier>,
    /// Trace handle the whole universe emits into; each worker derives a
    /// rank-tagged view. Disabled unless built via [`Shared::with_trace`].
    pub trace: Trace,
}

impl Shared {
    /// Fresh shared state for a universe of `ranks` workers.
    pub fn new(ranks: usize, injector: Option<Arc<FaultInjector>>) -> Self {
        Self::with_trace(ranks, injector, Trace::disabled())
    }

    /// Shared state whose workers record into `trace`'s journal.
    pub fn with_trace(ranks: usize, injector: Option<Arc<FaultInjector>>, trace: Trace) -> Self {
        Shared {
            ledger: Arc::new(ChunkLedger::new()),
            alive: Arc::new(AliveBoard::new(ranks)),
            injector,
            barrier: Arc::new(Barrier::new(ranks)),
            trace,
        }
    }
}

/// One queued unit of work: a ledger-registered trie chunk.
struct Chunk {
    id: ChunkId,
    trie: HostTrie,
}

enum Idle {
    Work(Vec<Chunk>),
    Done,
}

/// One rank's execution state. The simulated device and its
/// [`ExecSession`] are created inside [`Worker::run`]: the session plans
/// the query once per rank and chains its tries over one arena carve, so
/// every chunk — initial partition, received donation, or fault-recovery
/// replay — reuses the same plan and device storage.
pub struct Worker<'a> {
    comm: Comm,
    config: DistConfig,
    data: &'a Graph,
    query: &'a Graph,
    board: StatusBoard,
    metrics: RankMetrics,
    shared: Shared,
    /// Rank-tagged view of the shared trace.
    trace: Trace,
    /// Chunks this rank has committed (the crash-boundary clock).
    chunks_done: usize,
    last_heartbeat: Instant,
}

impl<'a> Worker<'a> {
    /// Builds a worker owning its own simulated device.
    pub fn new(
        comm: Comm,
        config: DistConfig,
        data: &'a Graph,
        query: &'a Graph,
        shared: Shared,
    ) -> Self {
        let rank = comm.rank();
        let size = comm.size();
        let heartbeat_interval = config.heartbeat_interval;
        let trace = shared.trace.with_rank(rank);
        Worker {
            comm,
            config,
            data,
            query,
            board: StatusBoard::new(size, rank),
            metrics: RankMetrics {
                rank,
                ..Default::default()
            },
            shared,
            trace,
            chunks_done: 0,
            // Back-dated so the first tick fires immediately: every rank
            // announces itself even on runs shorter than one interval.
            last_heartbeat: Instant::now() - heartbeat_interval,
        }
    }

    /// Initial jobs: this rank's share of the root candidate set under
    /// `plan`'s order, split into `dist_chunk`-path batches (§4.2
    /// `init_match(Q, D, rank)`).
    fn initial_jobs(&self, plan: &MatchOrder) -> Result<VecDeque<HostTrie>, WorkerError> {
        let rank = self.comm.rank();
        let size = self.comm.size();
        let all: Vec<Vec<u32>> = (0..self.data.num_vertices() as u32)
            .filter(|&v| {
                self.data.degree_dominates(v, plan.q_out[0], plan.q_in[0])
                    && cuts_core::order::label_ok(self.data, v, plan.q_label[0])
            })
            .map(|v| vec![v])
            .collect();
        let mine: Vec<Vec<u32>> = match self.config.partition {
            Partition::RoundRobin => all
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| i % size == rank)
                .map(|(_, p)| p)
                .collect(),
            Partition::Block => {
                let per = all.len().div_ceil(size).max(1);
                all.chunks(per)
                    .nth(rank)
                    .map(|c| c.to_vec())
                    .unwrap_or_default()
            }
            Partition::AllToRankZero => {
                if rank == 0 {
                    all
                } else {
                    Vec::new()
                }
            }
        };
        Ok(mine
            .chunks(self.config.dist_chunk)
            .filter(|c| !c.is_empty())
            .map(HostTrie::from_flat_paths)
            .collect())
    }

    /// Runs the rank to completion, returning its match count and metrics.
    pub fn run(mut self) -> Result<(u64, RankMetrics), WorkerError> {
        // One device and one session per rank: the session plans the query
        // once and carves its trie arena once, so every chunk this rank
        // processes — including donations and recovery replays — runs
        // without new device allocations.
        let mut device = Device::new(self.config.device.clone());
        device.set_trace(self.trace.clone());
        let session = ExecSession::new(&device, self.config.engine.clone());
        // Register this rank's chunks, then rendezvous: all chunks of all
        // ranks must be in the ledger before anyone can observe
        // `all_completed` (even on error, reach the barrier first so the
        // others aren't stranded).
        let jobs = match session.plan_for(self.query) {
            Ok(plan) => self.initial_jobs(&plan.order),
            Err(e) => Err(e.into()),
        };
        let mut queue: VecDeque<Chunk> = VecDeque::new();
        if let Ok(jobs) = &jobs {
            for trie in jobs {
                let id = self.shared.ledger.new_id();
                self.shared.ledger.register(id, self.comm.rank(), trie);
                self.trace.instant_with(
                    EventKind::Chunk,
                    "assign",
                    &[
                        ("id", Arg::U64(id)),
                        ("paths", Arg::U64(trie.levels[0].len() as u64)),
                    ],
                );
                queue.push_back(Chunk {
                    id,
                    trie: trie.clone(),
                });
            }
        }
        // Ranks that start with nothing announce FREE *before* the
        // rendezvous: the barrier then guarantees their announcement is
        // already in every peer's inbox when work begins, so a loaded
        // rank observes them on its first poll and donation does not
        // race against how fast the warm session drains the queue.
        if jobs.is_ok() && queue.is_empty() && self.comm.size() > 1 {
            self.comm.broadcast_others(tag::FREE, Bytes::new());
        }
        self.shared.barrier.wait();
        jobs?;

        let mut total = 0u64;
        loop {
            while let Some(chunk) = queue.pop_front() {
                self.check_crash()?;
                self.heartbeat_tick(Status::Busy);
                self.poll_messages(&mut queue);
                self.maybe_donate(&mut queue);
                // Progressive deepening: when a peer is idle but the queue
                // has nothing spare to donate, split this job's subtree by
                // expanding one level and re-chunking the new frontier —
                // the finer-granularity donation §4.2 gets from shipping
                // partial tries mid-computation.
                // (Not gated on observing a free peer: FREE broadcasts
                // race with start-up, and the split is cheap relative to
                // the subtree it unlocks for donation.)
                if self.config.progressive_deepening
                    && self.comm.size() > 1
                    && queue.is_empty()
                    && chunk.trie.depth() < self.query.num_vertices().saturating_sub(1)
                {
                    match self.deepen_job(&session, &chunk.trie) {
                        Some(tries) if tries.len() > 1 => {
                            let children: Vec<Chunk> = tries
                                .into_iter()
                                .map(|trie| Chunk {
                                    id: self.shared.ledger.new_id(),
                                    trie,
                                })
                                .collect();
                            let refs: Vec<(ChunkId, &HostTrie)> =
                                children.iter().map(|c| (c.id, &c.trie)).collect();
                            if self.shared.ledger.split(chunk.id, self.comm.rank(), &refs) {
                                self.trace.instant_with(
                                    EventKind::Chunk,
                                    "split",
                                    &[
                                        ("id", Arg::U64(chunk.id)),
                                        ("children", Arg::U64(children.len() as u64)),
                                    ],
                                );
                                queue.extend(children);
                            } else {
                                // Parent already committed elsewhere: this
                                // was an at-least-once duplicate.
                                self.metrics.duplicate_chunks += 1;
                            }
                            continue;
                        }
                        Some(tries) => {
                            // One (or zero) sub-jobs: nothing gained,
                            // process directly under the parent's id.
                            let mut n = 0;
                            for t in &tries {
                                n += self.process_job(&session, t)?;
                            }
                            self.commit_chunk(chunk.id, n, &mut total);
                            continue;
                        }
                        None => {} // deepening failed; fall through
                    }
                }
                let n = self.process_job(&session, &chunk.trie)?;
                self.commit_chunk(chunk.id, n, &mut total);
            }
            // Queue drained: save results, discard trie, announce free.
            if self.shared.ledger.all_completed() {
                break;
            }
            self.comm.broadcast_others(tag::FREE, Bytes::new());
            match self.idle_loop()? {
                Idle::Work(chunks) => queue.extend(chunks),
                Idle::Done => break,
            }
        }
        self.metrics.matches = total;
        self.metrics.messages_sent = self.comm.stats().messages_sent();
        self.metrics.bytes_sent = self.comm.stats().bytes_sent();
        let s = session.stats();
        self.metrics.plan_builds = s.plans.misses;
        self.metrics.plan_reuses = s.plans.hits;
        self.metrics.buffer_reuses = s.arena.map(|a| a.slab_acquires()).unwrap_or(0);
        Ok((total, self.metrics))
    }

    /// Fires this rank's scheduled crash, if one is due at the current
    /// chunk boundary.
    fn check_crash(&self) -> Result<(), WorkerError> {
        let Some(inj) = &self.shared.injector else {
            return Ok(());
        };
        match inj.should_crash(self.comm.rank(), self.chunks_done) {
            Some(CrashKind::Panic) => {
                flight::record_rank(
                    self.comm.rank() as u32,
                    FlightCode::Fault,
                    self.chunks_done as u64,
                    0,
                );
                self.trace.instant_with(
                    EventKind::Fault,
                    "panic",
                    &[("after_chunks", Arg::U64(self.chunks_done as u64))],
                );
                panic!(
                    "injected fault: rank {} panics after {} chunks",
                    self.comm.rank(),
                    self.chunks_done
                )
            }
            Some(CrashKind::Error) => {
                flight::record_rank(
                    self.comm.rank() as u32,
                    FlightCode::Fault,
                    self.chunks_done as u64,
                    1,
                );
                self.trace.instant_with(
                    EventKind::Fault,
                    "crash",
                    &[("after_chunks", Arg::U64(self.chunks_done as u64))],
                );
                Err(WorkerError::InjectedCrash {
                    rank: self.comm.rank(),
                    after_chunks: self.chunks_done,
                })
            }
            None => Ok(()),
        }
    }

    /// Broadcasts a heartbeat when the configured interval has elapsed.
    fn heartbeat_tick(&mut self, status: Status) {
        if self.last_heartbeat.elapsed() >= self.config.heartbeat_interval {
            self.comm
                .broadcast_others(tag::HEARTBEAT, Bytes::from(vec![status.to_byte()]));
            flight::record_rank(
                self.comm.rank() as u32,
                FlightCode::Heartbeat,
                status.to_byte() as u64,
                0,
            );
            self.trace.instant(
                EventKind::Heartbeat,
                match status {
                    Status::Free => "free",
                    Status::Busy => "busy",
                },
            );
            self.last_heartbeat = Instant::now();
        }
    }

    /// Commits a processed chunk; duplicates (already committed by a
    /// peer) are counted but never re-summed.
    fn commit_chunk(&mut self, id: ChunkId, matches: u64, total: &mut u64) {
        if self.shared.ledger.commit(id, matches) {
            *total += matches;
            self.chunks_done += 1;
            flight::record_rank(
                self.comm.rank() as u32,
                FlightCode::ChunkCommit,
                id,
                matches,
            );
            self.trace.instant_with(
                EventKind::Chunk,
                "commit",
                &[("id", Arg::U64(id)), ("matches", Arg::U64(matches))],
            );
        } else {
            self.metrics.duplicate_chunks += 1;
            self.trace
                .instant_with(EventKind::Chunk, "duplicate", &[("id", Arg::U64(id))]);
        }
    }

    /// Runs one job (a batch of partial paths) to completion through the
    /// rank's shared session.
    fn process_job(
        &mut self,
        session: &ExecSession<'_>,
        job: &HostTrie,
    ) -> Result<u64, WorkerError> {
        if job.is_empty() {
            return Ok(0);
        }
        let r = session.run_seeded(self.data, self.query, job)?;
        self.metrics.busy_sim_millis += r.sim_millis;
        self.metrics.busy_wall_millis += r.wall_millis;
        self.metrics.counters += r.counters;
        self.metrics.jobs_processed += 1;
        if self.config.pacing > 0.0 {
            // Align the host timeline with the simulated device timeline
            // so FREE/donation timing reflects modelled cost.
            std::thread::sleep(Duration::from_secs_f64(
                r.sim_millis * self.config.pacing / 1000.0,
            ));
        }
        Ok(r.num_matches)
    }

    /// Expands a job one level and re-chunks the new frontier into jobs.
    /// Returns `None` when the expansion itself cannot fit on the device
    /// (the caller then processes the job whole, which may still succeed
    /// through the engine's own chunking).
    fn deepen_job(&self, session: &ExecSession<'_>, job: &HostTrie) -> Option<Vec<HostTrie>> {
        let expanded = session.expand_seed_once(self.data, self.query, job).ok()?;
        let frontier_len = expanded.levels.last().map(|l| l.len()).unwrap_or(0);
        if frontier_len == 0 {
            return Some(Vec::new());
        }
        let parts = frontier_len.div_ceil(self.config.dist_chunk).max(2);
        Some(expanded.split_frontier(parts))
    }

    /// Integrates a WORK payload, discarding chunks the ledger says are
    /// already committed (at-least-once duplicates).
    fn accept_work(&mut self, payload: Bytes) -> Result<Vec<Chunk>, WireError> {
        let w = WorkPayload::decode(payload)?;
        self.metrics.donations_received += 1;
        self.trace.instant_with(
            EventKind::Donation,
            "receive",
            &[("chunks", Arg::U64(w.jobs.len() as u64))],
        );
        let mut fresh = Vec::new();
        for DonatedChunk { id, trie } in w.jobs {
            if self.shared.ledger.transfer(id, self.comm.rank()) {
                fresh.push(Chunk { id, trie });
            } else {
                self.metrics.duplicate_chunks += 1;
            }
        }
        Ok(fresh)
    }

    /// Drains the mailbox while busy: track statuses, refuse claims, and
    /// defensively accept stray work.
    fn poll_messages(&mut self, queue: &mut VecDeque<Chunk>) {
        while let Some(m) = self.comm.try_recv() {
            self.board.mark_heard(m.from);
            match m.tag {
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::HEARTBEAT => self.note_heartbeat(m.from, &m.payload),
                tag::CLAIM => self.comm.send(m.from, tag::NACK, Bytes::new()),
                tag::WORK => {
                    if let Ok(fresh) = self.accept_work(m.payload) {
                        queue.extend(fresh);
                    }
                }
                _ => {}
            }
        }
    }

    /// Applies a heartbeat's carried status.
    fn note_heartbeat(&mut self, from: Rank, payload: &Bytes) {
        match payload.first().map(|&b| Status::from_byte(b)) {
            Some(Status::Free) => self.board.mark_free(from),
            _ => self.board.mark_busy(from),
        }
    }

    /// If a peer is free and we hold spare jobs, pair with it (claim →
    /// ack → work) and donate the back half of the queue. The wait for
    /// the claim's resolution is bounded by `rank_timeout`: a dead or
    /// partitioned target must not wedge the donor.
    fn maybe_donate(&mut self, queue: &mut VecDeque<Chunk>) {
        if queue.len() < 2 {
            return;
        }
        let Some(target) = self.board.first_free_peer(self.config.rank_timeout) else {
            return;
        };
        if !self.shared.alive.is_alive(target) {
            self.board.mark_busy(target);
            return;
        }
        self.comm.send(target, tag::CLAIM, Bytes::new());
        let deadline = Instant::now() + self.config.rank_timeout;
        loop {
            if Instant::now() >= deadline {
                // Claim unresolved (peer died, or the CLAIM/answer was
                // lost): stop waiting and keep the work ourselves.
                self.board.mark_busy(target);
                return;
            }
            let Some(m) = self.comm.recv_timeout(Duration::from_millis(5)) else {
                continue;
            };
            self.board.mark_heard(m.from);
            match m.tag {
                tag::ACK if m.from == target => {
                    let donate = queue.len() / 2;
                    let jobs: Vec<DonatedChunk> = (0..donate)
                        .filter_map(|_| queue.pop_back())
                        .map(|c| DonatedChunk {
                            id: c.id,
                            trie: c.trie,
                        })
                        .collect();
                    // Re-home in the ledger before the wire send: if the
                    // WORK message is then lost, the chunks are owned by
                    // the (idle) target, which reclaims its own orphans
                    // after the timeout.
                    for dc in &jobs {
                        self.shared.ledger.transfer(dc.id, target);
                    }
                    flight::record_rank(
                        self.comm.rank() as u32,
                        FlightCode::Donation,
                        target as u64,
                        jobs.len() as u64,
                    );
                    self.trace.instant_with(
                        EventKind::Donation,
                        "send",
                        &[
                            ("target", Arg::U64(target as u64)),
                            ("chunks", Arg::U64(jobs.len() as u64)),
                        ],
                    );
                    let payload = WorkPayload { jobs }.encode();
                    self.comm.send(target, tag::WORK, payload);
                    self.board.mark_busy(target);
                    self.metrics.donations_sent += 1;
                    return;
                }
                tag::NACK if m.from == target => {
                    self.board.mark_busy(target);
                    return;
                }
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::HEARTBEAT => self.note_heartbeat(m.from, &m.payload),
                tag::CLAIM => self.comm.send(m.from, tag::NACK, Bytes::new()),
                tag::WORK => {
                    if let Ok(fresh) = self.accept_work(m.payload) {
                        queue.extend(fresh);
                    }
                }
                _ => {}
            }
        }
    }

    /// Idle loop of a free rank: grant the first claim, wait for its
    /// work, reclaim orphaned chunks once peers time out, or exit when
    /// the ledger is complete.
    fn idle_loop(&mut self) -> Result<Idle, WorkerError> {
        let me = self.comm.rank();
        let mut reserved: Option<(Rank, Instant)> = None;
        let mut last_reclaim = Instant::now();
        loop {
            if self.shared.ledger.all_completed() {
                return Ok(Idle::Done);
            }
            self.check_crash()?;
            self.heartbeat_tick(Status::Free);
            if let Some((_, since)) = reserved {
                if since.elapsed() >= self.config.rank_timeout {
                    // The granted donor never delivered (it died, or its
                    // WORK was lost): reopen for other claimants. Any
                    // chunks it managed to transfer to us are picked up
                    // by the reclaim below.
                    reserved = None;
                }
            }
            // While unreserved and past the timeout, sweep the ledger for
            // orphans: chunks owned by dead or silent ranks, or homed to
            // us by a donation whose WORK message vanished. (While
            // reserved, a transfer to us is *expected* — don't race it.)
            //
            // The detector is armed only under an active fault plan: the
            // simulated transport is otherwise lossless and no rank dies
            // mid-run, so reclaim could only ever fire spuriously — e.g.
            // a rank descheduled mid-chunk on an oversubscribed host
            // looks stale without being lost. Keeping the detector cold
            // in clean runs makes "fault-free ⇒ zero recovery metrics"
            // hold under arbitrary scheduler jitter.
            let detector_armed = self.shared.injector.is_some();
            if detector_armed
                && reserved.is_none()
                && last_reclaim.elapsed() >= self.config.rank_timeout
            {
                let claimed = self.shared.ledger.reclaim(me, |owner| {
                    !self.shared.alive.is_alive(owner)
                        || self.board.is_stale(owner, self.config.rank_timeout)
                });
                last_reclaim = Instant::now();
                if !claimed.is_empty() {
                    self.metrics.chunks_reassigned += claimed.len();
                    flight::record_rank(
                        me as u32,
                        FlightCode::ChunkReclaim,
                        claimed.len() as u64,
                        0,
                    );
                    self.trace.instant_with(
                        EventKind::Chunk,
                        "reclaim",
                        &[("chunks", Arg::U64(claimed.len() as u64))],
                    );
                    self.comm.broadcast_others(tag::BUSY, Bytes::new());
                    return Ok(Idle::Work(
                        claimed
                            .into_iter()
                            .map(|(id, trie)| Chunk { id, trie })
                            .collect(),
                    ));
                }
            }
            let Some(m) = self.comm.recv_timeout(Duration::from_millis(5)) else {
                continue;
            };
            self.board.mark_heard(m.from);
            match m.tag {
                tag::FREE => self.board.mark_free(m.from),
                tag::BUSY => self.board.mark_busy(m.from),
                tag::HEARTBEAT => self.note_heartbeat(m.from, &m.payload),
                tag::CLAIM => {
                    if reserved.is_none() {
                        reserved = Some((m.from, Instant::now()));
                        self.comm.send(m.from, tag::ACK, Bytes::new());
                        // Everyone else must stop targeting us.
                        self.comm.broadcast_others(tag::BUSY, Bytes::new());
                    } else {
                        self.comm.send(m.from, tag::NACK, Bytes::new());
                    }
                }
                tag::WORK => {
                    let fresh = self.accept_work(m.payload)?;
                    self.board.mark_busy(me);
                    return Ok(Idle::Work(fresh));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;

    fn worker<'a>(
        comm: Comm,
        config: DistConfig,
        data: &'a Graph,
        query: &'a Graph,
        ranks: usize,
    ) -> Worker<'a> {
        Worker::new(comm, config, data, query, Shared::new(ranks, None))
    }

    #[test]
    fn initial_jobs_round_robin_partition() {
        let data = cuts_graph::generators::clique(6);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut sizes = Vec::new();
        for comm in comms {
            let w = worker(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 2,
                    ..Default::default()
                },
                &data,
                &query,
                2,
            );
            let jobs = w
                .initial_jobs(&MatchOrder::compute(&query).unwrap())
                .unwrap();
            let paths: usize = jobs.iter().map(|j| j.levels[0].len()).sum();
            sizes.push(paths);
        }
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn initial_jobs_all_to_rank_zero() {
        let data = cuts_graph::generators::clique(5);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut all = Vec::new();
        for comm in comms {
            let w = worker(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 1,
                    partition: Partition::AllToRankZero,
                    ..Default::default()
                },
                &data,
                &query,
                2,
            );
            all.push(
                w.initial_jobs(&MatchOrder::compute(&query).unwrap())
                    .unwrap()
                    .len(),
            );
        }
        assert_eq!(all, vec![5, 0]);
    }

    #[test]
    fn block_partition_contiguous() {
        let data = cuts_graph::generators::clique(7);
        let query = cuts_graph::generators::clique(3);
        let comms = Comm::universe(2);
        let mut firsts = Vec::new();
        for comm in comms {
            let w = worker(
                comm,
                DistConfig {
                    device: DeviceConfig::test_small(),
                    dist_chunk: 64,
                    partition: Partition::Block,
                    ..Default::default()
                },
                &data,
                &query,
                2,
            );
            let jobs = w
                .initial_jobs(&MatchOrder::compute(&query).unwrap())
                .unwrap();
            let first = jobs
                .front()
                .map(|j| j.ca[j.levels[0].start])
                .unwrap_or(u32::MAX);
            firsts.push(first);
        }
        // Rank 0 starts at vertex 0, rank 1 at the split point 4.
        assert_eq!(firsts, vec![0, 4]);
    }

    #[test]
    fn injected_crash_error_surfaces() {
        use crate::fault::FaultPlan;
        let data = cuts_graph::generators::clique(4);
        let query = cuts_graph::generators::clique(3);
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::parse("crash:0@0").unwrap(),
            1,
        ));
        let mut comms = Comm::universe(1);
        let w = Worker::new(
            comms.pop().unwrap(),
            DistConfig {
                device: DeviceConfig::test_small(),
                ..Default::default()
            },
            &data,
            &query,
            Shared::new(1, Some(inj)),
        );
        match w.run() {
            Err(WorkerError::InjectedCrash {
                rank: 0,
                after_chunks: 0,
            }) => {}
            other => panic!("expected injected crash, got {other:?}"),
        }
    }
}
