//! Simulated MPI: ranked endpoints, tagged non-blocking point-to-point
//! messages, broadcast, probe — the subset §4.2's "mini asynchronous
//! protocol built on top of the MPI framework" needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Rank identifier.
pub type Rank = usize;

/// A tagged message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub from: Rank,
    /// Application tag.
    pub tag: u32,
    /// Opaque payload.
    pub payload: Bytes,
}

/// Per-rank traffic statistics.
#[derive(Debug, Default)]
pub struct CommStats {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl CommStats {
    /// Messages sent by this rank.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Payload bytes sent by this rank.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
}

/// One rank's communicator endpoint.
pub struct Comm {
    rank: Rank,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    stats: Arc<CommStats>,
}

impl Comm {
    /// Creates a fully-connected universe of `n` ranks.
    pub fn universe(n: usize) -> Vec<Comm> {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                senders: senders.clone(),
                receiver,
                stats: Arc::new(CommStats::default()),
            })
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Universe size.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Traffic statistics handle.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Non-blocking tagged send (`MPI_Isend` with guaranteed buffering).
    pub fn send(&self, to: Rank, tag: u32, payload: Bytes) {
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        // A send to a finished (dropped) rank is discarded, like an MPI
        // process that has left the communicator after consensus.
        let _ = self.senders[to].send(Message {
            from: self.rank,
            tag,
            payload,
        });
    }

    /// Sends to every other rank (the §4.2 "broadcasts a message to all
    /// other nodes").
    pub fn broadcast_others(&self, tag: u32, payload: Bytes) {
        for to in 0..self.size() {
            if to != self.rank {
                self.send(to, tag, payload.clone());
            }
        }
    }

    /// Non-blocking probe+receive (`MPI_Iprobe` + `MPI_Recv`).
    pub fn try_recv(&self) -> Option<Message> {
        self.receiver.try_recv().ok()
    }

    /// Blocking receive with timeout (idle-node wait loop).
    pub fn recv_timeout(&self, d: Duration) -> Option<Message> {
        self.receiver.recv_timeout(d).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_fifo_per_sender() {
        let mut u = Comm::universe(2);
        let b = u.pop().unwrap();
        let a = u.pop().unwrap();
        for i in 0..10u32 {
            a.send(1, i, Bytes::new());
        }
        for i in 0..10u32 {
            let m = b.try_recv().unwrap();
            assert_eq!(m.tag, i);
            assert_eq!(m.from, 0);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        let u = Comm::universe(3);
        u[0].broadcast_others(7, Bytes::from_static(b"x"));
        assert!(u[0].try_recv().is_none());
        assert_eq!(u[1].try_recv().unwrap().tag, 7);
        assert_eq!(u[2].try_recv().unwrap().tag, 7);
    }

    #[test]
    fn stats_count_traffic() {
        let u = Comm::universe(2);
        u[0].send(1, 1, Bytes::from_static(b"abcd"));
        u[0].send(1, 2, Bytes::from_static(b"ef"));
        assert_eq!(u[0].stats().messages_sent(), 2);
        assert_eq!(u[0].stats().bytes_sent(), 6);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut u = Comm::universe(2);
        let b = u.pop().unwrap();
        let a = u.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(1, 42, Bytes::from_static(b"hello"));
            });
            let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.tag, 42);
            assert_eq!(&m.payload[..], b"hello");
        });
    }

    #[test]
    fn send_to_dropped_rank_is_discarded() {
        let mut u = Comm::universe(2);
        let _b = u.pop(); // rank 1 endpoint dropped
        let a = u.pop().unwrap();
        a.send(1, 1, Bytes::new()); // must not panic
    }
}
