//! Simulated MPI: ranked endpoints, tagged non-blocking point-to-point
//! messages, broadcast, probe — the subset §4.2's "mini asynchronous
//! protocol built on top of the MPI framework" needs.
//!
//! Fault injection hooks in here: a universe built with
//! [`Comm::universe_with_faults`] consults the shared
//! [`FaultInjector`] on every send, which
//! may silently discard the message (a lossy interconnect / dead NIC) or
//! stamp it with a future due-time (congestion). Delayed messages are
//! buffered on the receiving endpoint and surface only once due, so the
//! *reordering* a real network produces is visible to the protocol.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::fault::{FaultInjector, SendFate};

/// Rank identifier.
pub type Rank = usize;

/// A tagged message.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub from: Rank,
    /// Application tag.
    pub tag: u32,
    /// Opaque payload.
    pub payload: Bytes,
}

/// Wire envelope: a message plus the instant it becomes visible to the
/// receiver (later than "now" only for injector-delayed messages).
#[derive(Debug)]
struct Envelope {
    msg: Message,
    due: Instant,
}

/// Per-rank traffic statistics.
#[derive(Debug, Default)]
pub struct CommStats {
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl CommStats {
    /// Messages sent by this rank (counting injector-dropped ones: the
    /// sender did the work of sending).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent.load(Ordering::Relaxed)
    }

    /// Payload bytes sent by this rank.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }
}

/// One rank's communicator endpoint.
pub struct Comm {
    rank: Rank,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    /// Arrived-but-not-yet-due envelopes (only delayed messages linger).
    pending: Mutex<VecDeque<Envelope>>,
    stats: Arc<CommStats>,
    injector: Option<Arc<FaultInjector>>,
}

impl Comm {
    /// Creates a fully-connected fault-free universe of `n` ranks.
    pub fn universe(n: usize) -> Vec<Comm> {
        Comm::universe_with_faults(n, None)
    }

    /// Creates a fully-connected universe whose sends pass through the
    /// given fault injector (`None` = fault-free).
    pub fn universe_with_faults(n: usize, injector: Option<Arc<FaultInjector>>) -> Vec<Comm> {
        assert!(n >= 1);
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Comm {
                rank,
                senders: senders.clone(),
                receiver,
                pending: Mutex::new(VecDeque::new()),
                stats: Arc::new(CommStats::default()),
                injector: injector.clone(),
            })
            .collect()
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Universe size.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Traffic statistics handle.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Non-blocking tagged send (`MPI_Isend` with guaranteed buffering).
    /// Subject to fault injection: the message may be silently dropped
    /// or delivered late.
    pub fn send(&self, to: Rank, tag: u32, payload: Bytes) {
        self.stats.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_sent
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        let due = match self.injector.as_deref().map(|i| i.on_send(self.rank, to)) {
            Some(SendFate::Drop) => return,
            Some(SendFate::Delay(d)) => Instant::now() + d,
            Some(SendFate::Deliver) | None => Instant::now(),
        };
        // A send to a finished (dropped) rank is discarded, like an MPI
        // process that has left the communicator after consensus.
        let _ = self.senders[to].send(Envelope {
            msg: Message {
                from: self.rank,
                tag,
                payload,
            },
            due,
        });
    }

    /// Sends to every other rank (the §4.2 "broadcasts a message to all
    /// other nodes").
    pub fn broadcast_others(&self, tag: u32, payload: Bytes) {
        for to in 0..self.size() {
            if to != self.rank {
                self.send(to, tag, payload.clone());
            }
        }
    }

    /// Non-blocking probe+receive (`MPI_Iprobe` + `MPI_Recv`): first
    /// *due* message, if any.
    pub fn try_recv(&self) -> Option<Message> {
        let mut pending = self.pending.lock().unwrap();
        while let Ok(env) = self.receiver.try_recv() {
            pending.push_back(env);
        }
        let now = Instant::now();
        let idx = pending.iter().position(|e| e.due <= now)?;
        pending.remove(idx).map(|e| e.msg)
    }

    /// Blocking receive with timeout (idle-node wait loop).
    pub fn recv_timeout(&self, d: Duration) -> Option<Message> {
        let deadline = Instant::now() + d;
        loop {
            if let Some(m) = self.try_recv() {
                return Some(m);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            // Wait for a fresh arrival, but wake early if a buffered
            // delayed message comes due first.
            let mut wait = deadline - now;
            if let Some(due) = self.pending.lock().unwrap().iter().map(|e| e.due).min() {
                wait = wait.min(
                    due.saturating_duration_since(now)
                        .max(Duration::from_micros(100)),
                );
            }
            match self.receiver.recv_timeout(wait) {
                Ok(env) => self.pending.lock().unwrap().push_back(env),
                Err(_) => continue, // timed out (or no senders left): re-check due/deadline
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    #[test]
    fn point_to_point_fifo_per_sender() {
        let mut u = Comm::universe(2);
        let b = u.pop().unwrap();
        let a = u.pop().unwrap();
        for i in 0..10u32 {
            a.send(1, i, Bytes::new());
        }
        for i in 0..10u32 {
            let m = b.try_recv().unwrap();
            assert_eq!(m.tag, i);
            assert_eq!(m.from, 0);
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        let u = Comm::universe(3);
        u[0].broadcast_others(7, Bytes::from_static(b"x"));
        assert!(u[0].try_recv().is_none());
        assert_eq!(u[1].try_recv().unwrap().tag, 7);
        assert_eq!(u[2].try_recv().unwrap().tag, 7);
    }

    #[test]
    fn stats_count_traffic() {
        let u = Comm::universe(2);
        u[0].send(1, 1, Bytes::from_static(b"abcd"));
        u[0].send(1, 2, Bytes::from_static(b"ef"));
        assert_eq!(u[0].stats().messages_sent(), 2);
        assert_eq!(u[0].stats().bytes_sent(), 6);
    }

    #[test]
    fn cross_thread_delivery() {
        let mut u = Comm::universe(2);
        let b = u.pop().unwrap();
        let a = u.pop().unwrap();
        std::thread::scope(|s| {
            s.spawn(move || {
                a.send(1, 42, Bytes::from_static(b"hello"));
            });
            let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(m.tag, 42);
            assert_eq!(&m.payload[..], b"hello");
        });
    }

    #[test]
    fn send_to_dropped_rank_is_discarded() {
        let mut u = Comm::universe(2);
        let _b = u.pop(); // rank 1 endpoint dropped
        let a = u.pop().unwrap();
        a.send(1, 1, Bytes::new()); // must not panic
    }

    #[test]
    fn injected_drop_eats_exact_message() {
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::parse("drop:0->1@2").unwrap(),
            2,
        ));
        let u = Comm::universe_with_faults(2, Some(inj.clone()));
        u[0].send(1, 10, Bytes::new());
        u[0].send(1, 11, Bytes::new()); // dropped
        u[0].send(1, 12, Bytes::new());
        assert_eq!(u[1].try_recv().unwrap().tag, 10);
        assert_eq!(u[1].try_recv().unwrap().tag, 12);
        assert!(u[1].try_recv().is_none());
        assert_eq!(inj.messages_dropped(0), 1);
        // The sender still counts its send attempts.
        assert_eq!(u[0].stats().messages_sent(), 3);
    }

    #[test]
    fn injected_delay_holds_message_until_due() {
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::parse("delay:0->1@1+30").unwrap(),
            2,
        ));
        let u = Comm::universe_with_faults(2, Some(inj));
        u[0].send(1, 5, Bytes::new()); // delayed 30ms
        u[0].send(1, 6, Bytes::new()); // prompt — overtakes the delayed one
        assert_eq!(u[1].try_recv().unwrap().tag, 6);
        assert!(u[1].try_recv().is_none(), "delayed message not yet due");
        let m = u[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.tag, 5);
    }
}
