//! Replicated chunk ledger: the recovery layer's source of truth.
//!
//! Every unit of outer-loop work (a path-batch chunk) is registered here
//! before any rank may process it, and its match count is *committed*
//! here exactly once. The run is complete when every registered chunk is
//! committed, and the run's total is the sum of committed counts — so a
//! rank crash can lose in-flight computation but never results, and
//! at-least-once delivery of donated chunks deduplicates on commit.
//!
//! In the paper's deployment this role is played by the saved-results
//! store each node writes after every chunk of Algorithm 3 (plus a
//! replicated ownership table); in this in-process simulation it is a
//! mutex-protected map shared by the worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use cuts_trie::HostTrie;

/// Stable identity of one chunk of outer-loop work.
pub type ChunkId = u64;

#[derive(Debug)]
enum ChunkState {
    /// Registered, not yet committed; `owner` is responsible for it and
    /// `payload` is the recoverable copy of the work itself.
    Pending { owner: usize, payload: HostTrie },
    /// Committed with its match count.
    Done,
}

#[derive(Debug, Default)]
struct LedgerInner {
    chunks: HashMap<ChunkId, ChunkState>,
    pending: usize,
    total_matches: u64,
    chunks_reassigned: usize,
    first_loss_at: Option<Instant>,
    recovered_at: Option<Instant>,
}

/// Shared chunk-ownership and result store (see module docs).
#[derive(Debug, Default)]
pub struct ChunkLedger {
    inner: Mutex<LedgerInner>,
    next_id: AtomicU64,
}

impl ChunkLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        ChunkLedger::default()
    }

    /// Allocates a fresh chunk id.
    pub fn new_id(&self) -> ChunkId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a chunk owned by `owner`. The payload copy is what a
    /// surviving rank re-executes if `owner` dies.
    pub fn register(&self, id: ChunkId, owner: usize, payload: &HostTrie) {
        let mut inner = self.inner.lock().unwrap();
        let prev = inner.chunks.insert(
            id,
            ChunkState::Pending {
                owner,
                payload: payload.clone(),
            },
        );
        assert!(prev.is_none(), "chunk {id} registered twice");
        inner.pending += 1;
    }

    /// Re-homes a pending chunk to `new_owner` (donation hand-off).
    /// Returns `false` when the chunk is already committed — the signal
    /// for a receiver to discard an at-least-once duplicate.
    pub fn transfer(&self, id: ChunkId, new_owner: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.chunks.get_mut(&id) {
            Some(ChunkState::Pending { owner, .. }) => {
                *owner = new_owner;
                true
            }
            _ => false,
        }
    }

    /// Commits a chunk's match count. Idempotent: only the first commit
    /// is recorded; returns whether this call was the first.
    pub fn commit(&self, id: ChunkId, matches: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.chunks.insert(id, ChunkState::Done) {
            Some(ChunkState::Pending { .. }) => {
                inner.pending -= 1;
                inner.total_matches += matches;
                if inner.pending == 0 && inner.first_loss_at.is_some() {
                    inner.recovered_at = Some(Instant::now());
                }
                true
            }
            Some(ChunkState::Done) | None => false,
        }
    }

    /// Replaces a pending chunk with finer-grained children (progressive
    /// deepening). The parent never commits; the children must. Returns
    /// `false` (and registers nothing) if the parent was already gone.
    pub fn split(&self, parent: ChunkId, owner: usize, children: &[(ChunkId, &HostTrie)]) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.chunks.remove(&parent) {
            Some(ChunkState::Pending { .. }) => {
                inner.pending -= 1;
                for &(id, payload) in children {
                    let prev = inner.chunks.insert(
                        id,
                        ChunkState::Pending {
                            owner,
                            payload: payload.clone(),
                        },
                    );
                    assert!(prev.is_none(), "chunk {id} registered twice");
                    inner.pending += 1;
                }
                true
            }
            Some(done @ ChunkState::Done) => {
                inner.chunks.insert(parent, done);
                false
            }
            None => false,
        }
    }

    /// True when every registered chunk has committed.
    pub fn all_completed(&self) -> bool {
        self.inner.lock().unwrap().pending == 0
    }

    /// Pending (uncommitted) chunk count.
    pub fn pending(&self) -> usize {
        self.inner.lock().unwrap().pending
    }

    /// Sum of committed match counts.
    pub fn total_matches(&self) -> u64 {
        self.inner.lock().unwrap().total_matches
    }

    /// Claims every pending chunk whose owner satisfies `orphaned` (dead
    /// ranks, plus the claimant itself for work lost in transit),
    /// transferring ownership to `me`. Returns the claimed work.
    pub fn reclaim<F: Fn(usize) -> bool>(
        &self,
        me: usize,
        orphaned: F,
    ) -> Vec<(ChunkId, HostTrie)> {
        let mut inner = self.inner.lock().unwrap();
        let mut claimed = Vec::new();
        for (&id, state) in inner.chunks.iter_mut() {
            if let ChunkState::Pending { owner, payload } = state {
                if *owner != me && orphaned(*owner) {
                    *owner = me;
                    claimed.push((id, payload.clone()));
                } else if *owner == me {
                    // Chunks homed to an idle claimant can only be work
                    // whose WORK message was lost: re-materialise them.
                    claimed.push((id, payload.clone()));
                }
            }
        }
        if !claimed.is_empty() {
            inner.chunks_reassigned += claimed.len();
            claimed.sort_by_key(|&(id, _)| id);
        }
        claimed
    }

    /// Records that a rank was lost (first loss starts the recovery
    /// clock).
    pub fn note_loss(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.first_loss_at.is_none() {
            inner.first_loss_at = Some(Instant::now());
        }
    }

    /// Chunks re-homed by [`ChunkLedger::reclaim`] so far.
    pub fn chunks_reassigned(&self) -> usize {
        self.inner.lock().unwrap().chunks_reassigned
    }

    /// Wall milliseconds from the first rank loss until the last pending
    /// chunk committed; 0.0 when no loss occurred or recovery never
    /// finished.
    pub fn recovery_millis(&self) -> f64 {
        let inner = self.inner.lock().unwrap();
        match (inner.first_loss_at, inner.recovered_at) {
            (Some(lost), Some(done)) => done.saturating_duration_since(lost).as_secs_f64() * 1e3,
            _ => 0.0,
        }
    }
}

/// Liveness flags for every rank, flipped exactly once when a rank's
/// worker exits (cleanly or not). The in-process analogue of the MPI
/// launcher observing a process death; the heartbeat timeout in
/// [`crate::protocol::StatusBoard`] covers *unresponsive* (delayed)
/// ranks that are still technically alive.
#[derive(Debug)]
pub struct AliveBoard {
    alive: Vec<AtomicBool>,
}

impl AliveBoard {
    /// All ranks start alive.
    pub fn new(ranks: usize) -> Self {
        AliveBoard {
            alive: (0..ranks).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// Whether `rank`'s worker is still running.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::Acquire)
    }

    /// Marks `rank` exited.
    pub fn set_dead(&self, rank: usize) {
        self.alive[rank].store(false, Ordering::Release);
    }

    /// Number of ranks still alive.
    pub fn live_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(v: u32) -> HostTrie {
        HostTrie::from_flat_paths(&[vec![v]])
    }

    #[test]
    fn commit_is_idempotent_and_sums() {
        let l = ChunkLedger::new();
        let (a, b) = (l.new_id(), l.new_id());
        l.register(a, 0, &trie(1));
        l.register(b, 1, &trie(2));
        assert!(!l.all_completed());
        assert!(l.commit(a, 10));
        assert!(!l.commit(a, 10), "second commit must be a no-op");
        assert!(l.commit(b, 5));
        assert!(l.all_completed());
        assert_eq!(l.total_matches(), 15);
    }

    #[test]
    fn transfer_fails_after_commit() {
        let l = ChunkLedger::new();
        let id = l.new_id();
        l.register(id, 0, &trie(1));
        assert!(l.transfer(id, 1));
        l.commit(id, 3);
        assert!(!l.transfer(id, 2));
    }

    #[test]
    fn reclaim_takes_dead_and_own_chunks_only() {
        let l = ChunkLedger::new();
        let ids: Vec<ChunkId> = (0..4).map(|_| l.new_id()).collect();
        l.register(ids[0], 0, &trie(0)); // dead rank
        l.register(ids[1], 1, &trie(1)); // live rank
        l.register(ids[2], 2, &trie(2)); // claimant's own lost chunk
        l.register(ids[3], 0, &trie(3)); // dead rank
        let claimed = l.reclaim(2, |owner| owner == 0);
        let claimed_ids: Vec<ChunkId> = claimed.iter().map(|&(id, _)| id).collect();
        assert_eq!(claimed_ids, vec![ids[0], ids[2], ids[3]]);
        assert_eq!(l.chunks_reassigned(), 3);
        // Claimed chunks now belong to rank 2; rank 1's chunk untouched.
        assert!(
            l.reclaim(2, |owner| owner == 0).len() == 3,
            "still owned by me"
        );
        assert_eq!(l.reclaim(1, |_| false).len(), 1);
    }

    #[test]
    fn split_replaces_parent() {
        let l = ChunkLedger::new();
        let parent = l.new_id();
        l.register(parent, 0, &trie(9));
        let (c1, c2) = (l.new_id(), l.new_id());
        let (t1, t2) = (trie(1), trie(2));
        assert!(l.split(parent, 0, &[(c1, &t1), (c2, &t2)]));
        assert!(!l.commit(parent, 100), "split parent must never commit");
        assert!(l.commit(c1, 1));
        assert!(l.commit(c2, 2));
        assert!(l.all_completed());
        assert_eq!(l.total_matches(), 3);
    }

    #[test]
    fn recovery_clock() {
        let l = ChunkLedger::new();
        let id = l.new_id();
        l.register(id, 0, &trie(1));
        assert_eq!(l.recovery_millis(), 0.0);
        l.note_loss();
        std::thread::sleep(std::time::Duration::from_millis(2));
        l.commit(id, 1);
        assert!(l.recovery_millis() > 0.0);
    }

    #[test]
    fn alive_board_lifecycle() {
        let b = AliveBoard::new(3);
        assert_eq!(b.live_count(), 3);
        b.set_dead(1);
        assert!(!b.is_alive(1));
        assert!(b.is_alive(0));
        assert_eq!(b.live_count(), 2);
    }
}
