//! Replicated chunk ledger — the distributed instantiation of the
//! generic [`cuts_core::ledger::WorkLedger`].
//!
//! The ledger itself (registration, idempotent commits, transfer,
//! split, reclaim, the recovery clock) moved to `cuts-core` so the
//! serving tier can run the same recovery protocol over whole jobs.
//! Here the unit of work is a path-batch [`HostTrie`] chunk, and the
//! historical names (`ChunkId`, `ChunkLedger`) stay the API of this
//! crate.

use cuts_trie::HostTrie;

pub use cuts_core::ledger::AliveBoard;

/// Stable identity of one chunk of outer-loop work.
pub type ChunkId = cuts_core::ledger::WorkId;

/// Shared chunk-ownership and result store (see
/// [`cuts_core::ledger::WorkLedger`]).
pub type ChunkLedger = cuts_core::ledger::WorkLedger<HostTrie>;

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(v: u32) -> HostTrie {
        HostTrie::from_flat_paths(&[vec![v]])
    }

    #[test]
    fn transfer_fails_after_commit() {
        let l = ChunkLedger::new();
        let id = l.new_id();
        l.register(id, 0, &trie(1));
        assert!(l.transfer(id, 1));
        l.commit(id, 3);
        assert!(!l.transfer(id, 2));
    }

    #[test]
    fn reclaim_takes_dead_and_own_chunks_only() {
        let l = ChunkLedger::new();
        let ids: Vec<ChunkId> = (0..4).map(|_| l.new_id()).collect();
        l.register(ids[0], 0, &trie(0)); // dead rank
        l.register(ids[1], 1, &trie(1)); // live rank
        l.register(ids[2], 2, &trie(2)); // claimant's own lost chunk
        l.register(ids[3], 0, &trie(3)); // dead rank
        let claimed = l.reclaim(2, |owner| owner == 0);
        let claimed_ids: Vec<ChunkId> = claimed.iter().map(|&(id, _)| id).collect();
        assert_eq!(claimed_ids, vec![ids[0], ids[2], ids[3]]);
        assert_eq!(l.reassigned(), 3);
        // Claimed chunks now belong to rank 2; rank 1's chunk untouched.
        assert!(
            l.reclaim(2, |owner| owner == 0).len() == 3,
            "still owned by me"
        );
        assert_eq!(l.reclaim(1, |_| false).len(), 1);
    }

    #[test]
    fn split_replaces_parent() {
        let l = ChunkLedger::new();
        let parent = l.new_id();
        l.register(parent, 0, &trie(9));
        let (c1, c2) = (l.new_id(), l.new_id());
        let (t1, t2) = (trie(1), trie(2));
        assert!(l.split(parent, 0, &[(c1, &t1), (c2, &t2)]));
        assert!(!l.commit(parent, 100), "split parent must never commit");
        assert!(l.commit(c1, 1));
        assert!(l.commit(c2, 2));
        assert!(l.all_completed());
        assert_eq!(l.total_matches(), 3);
    }
}
