//! The asynchronous work-donation protocol of §4.2, hardened for the
//! fault model of the recovery layer.
//!
//! States and messages: a rank that drains its job queue broadcasts
//! [`tag::FREE`] and enters the idle loop. A busy rank holding spare jobs
//! that learns of a free peer sends [`tag::CLAIM`]; the free peer grants
//! the *first* claim with [`tag::ACK`] (broadcasting [`tag::BUSY`] so no
//! one else targets it) and refuses the rest with [`tag::NACK`]. The
//! granted claimant ships a [`tag::WORK`] payload — serialised tries,
//! each tagged with its ledger chunk id — and both continue.
//!
//! Fault hardening changes two things relative to the bare paper
//! protocol. First, every rank periodically broadcasts [`tag::HEARTBEAT`]
//! carrying its current status byte, and the [`StatusBoard`] remembers
//! *when* each peer was last heard from — a peer silent past the
//! configured rank-timeout is treated as unresponsive and its pending
//! chunks become reclaimable. Second, termination no longer relies on
//! the all-peers-free consensus (a single lost FREE broadcast would hang
//! it); workers exit when the shared
//! [`ChunkLedger`](crate::ledger::ChunkLedger) reports every registered
//! chunk committed, which is monotone and immune to message loss.

use std::time::{Duration, Instant};

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cuts_trie::serial::{decode_trie, encode_trie, WireError};
use cuts_trie::HostTrie;

use crate::ledger::ChunkId;

/// Message tags.
pub mod tag {
    /// "I have finished all my work."
    pub const FREE: u32 = 1;
    /// "I have work again" (sent when a free rank accepts a claim).
    pub const BUSY: u32 = 2;
    /// "May I send you part of my queue?"
    pub const CLAIM: u32 = 3;
    /// Claim granted.
    pub const ACK: u32 = 4;
    /// Claim refused (already granted to someone else / no longer free).
    pub const NACK: u32 = 5;
    /// Donated work: a [`super::WorkPayload`].
    pub const WORK: u32 = 6;
    /// Liveness beacon: one status byte (0 = busy, 1 = free).
    pub const HEARTBEAT: u32 = 7;
}

/// Peer status as tracked from FREE/BUSY broadcasts and heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Processing or holding work.
    Busy,
    /// Announced an empty queue.
    Free,
}

impl Status {
    /// Wire byte for heartbeat payloads.
    pub fn to_byte(self) -> u8 {
        match self {
            Status::Busy => 0,
            Status::Free => 1,
        }
    }

    /// Parses a heartbeat status byte (unknown bytes read as busy, the
    /// conservative choice).
    pub fn from_byte(b: u8) -> Status {
        if b == 1 {
            Status::Free
        } else {
            Status::Busy
        }
    }
}

/// Status and liveness vector over all ranks.
#[derive(Debug, Clone)]
pub struct StatusBoard {
    status: Vec<Status>,
    /// When each peer was last heard from (any message).
    last_heard: Vec<Instant>,
    me: usize,
}

impl StatusBoard {
    /// All ranks start busy (everyone owns an initial partition) and
    /// freshly heard-from.
    pub fn new(size: usize, me: usize) -> Self {
        StatusBoard {
            status: vec![Status::Busy; size],
            last_heard: vec![Instant::now(); size],
            me,
        }
    }

    /// Records a FREE broadcast.
    pub fn mark_free(&mut self, rank: usize) {
        self.status[rank] = Status::Free;
        self.mark_heard(rank);
    }

    /// Records a BUSY broadcast (or a granted/forwarded claim).
    pub fn mark_busy(&mut self, rank: usize) {
        self.status[rank] = Status::Busy;
        self.mark_heard(rank);
    }

    /// Refreshes `rank`'s liveness clock (call on *every* received
    /// message, whatever the tag).
    pub fn mark_heard(&mut self, rank: usize) {
        self.last_heard[rank] = Instant::now();
    }

    /// True when nothing has been heard from `rank` for at least
    /// `timeout`. Never true for ourselves.
    pub fn is_stale(&self, rank: usize, timeout: Duration) -> bool {
        rank != self.me && self.last_heard[rank].elapsed() >= timeout
    }

    /// Some free peer, if any (lowest rank first for determinism).
    /// Peers silent past `timeout` are skipped — claiming toward a dead
    /// rank wastes the donation.
    pub fn first_free_peer(&self, timeout: Duration) -> Option<usize> {
        self.status
            .iter()
            .enumerate()
            .find(|&(r, &s)| r != self.me && s == Status::Free && !self.is_stale(r, timeout))
            .map(|(r, _)| r)
    }

    /// True when every peer (not counting ourselves) is free.
    pub fn all_peers_free(&self) -> bool {
        self.status
            .iter()
            .enumerate()
            .all(|(r, &s)| r == self.me || s == Status::Free)
    }
}

/// One donated chunk: its ledger identity plus the partial-path trie.
/// Carrying the id on the wire is what makes donation at-least-once
/// safe — a receiver consults the ledger and discards already-committed
/// duplicates instead of double-counting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DonatedChunk {
    /// Ledger chunk id.
    pub id: ChunkId,
    /// The work itself.
    pub trie: HostTrie,
}

/// A donated batch of chunks, each a partial-path trie (possibly at
/// different depths, since the donor's queue mixes depths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPayload {
    /// Donated chunks.
    pub jobs: Vec<DonatedChunk>,
}

impl WorkPayload {
    /// Encodes: `[count, (id, len, trie-bytes)…]`.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32_le(self.jobs.len() as u32);
        for job in &self.jobs {
            b.put_u64_le(job.id);
            let enc = encode_trie(&job.trie);
            b.put_u32_le(enc.len() as u32);
            b.put_slice(&enc);
        }
        b.freeze()
    }

    /// Decodes [`WorkPayload::encode`] output.
    pub fn decode(mut buf: Bytes) -> Result<WorkPayload, WireError> {
        if buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let count = buf.get_u32_le() as usize;
        let mut jobs = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 12 {
                return Err(WireError::Truncated);
            }
            let id = buf.get_u64_le();
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(WireError::Truncated);
            }
            let trie = decode_trie(buf.split_to(len))?;
            trie.validate()
                .map_err(|_| WireError::Corrupt("donated trie fails validation"))?;
            jobs.push(DonatedChunk { id, trie });
        }
        Ok(WorkPayload { jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_secs(3600);

    #[test]
    fn status_board_lifecycle() {
        let mut b = StatusBoard::new(3, 1);
        assert!(b.first_free_peer(T).is_none());
        assert!(!b.all_peers_free());
        b.mark_free(2);
        assert_eq!(b.first_free_peer(T), Some(2));
        b.mark_free(0);
        assert!(b.all_peers_free());
        assert_eq!(b.first_free_peer(T), Some(0));
        b.mark_busy(0);
        assert!(!b.all_peers_free());
    }

    #[test]
    fn own_status_ignored_for_termination() {
        let mut b = StatusBoard::new(2, 0);
        b.mark_free(1);
        // Rank 0 itself is still "busy" in the vector but that must not
        // block its own exit decision.
        assert!(b.all_peers_free());
    }

    #[test]
    fn staleness_tracks_silence() {
        let mut b = StatusBoard::new(2, 0);
        assert!(!b.is_stale(1, Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.is_stale(1, Duration::from_millis(20)));
        assert!(
            !b.is_stale(0, Duration::from_millis(0)),
            "never stale to self"
        );
        b.mark_heard(1);
        assert!(!b.is_stale(1, Duration::from_millis(20)));
    }

    #[test]
    fn stale_free_peer_not_targeted() {
        let mut b = StatusBoard::new(3, 0);
        b.mark_free(1);
        b.mark_free(2);
        std::thread::sleep(Duration::from_millis(5));
        b.mark_heard(2);
        // Rank 1 went silent longer than the timeout; rank 2 is fresh.
        assert_eq!(b.first_free_peer(Duration::from_millis(4)), Some(2));
    }

    #[test]
    fn status_byte_roundtrip() {
        for s in [Status::Busy, Status::Free] {
            assert_eq!(Status::from_byte(s.to_byte()), s);
        }
        assert_eq!(Status::from_byte(77), Status::Busy);
    }

    #[test]
    fn work_payload_roundtrip() {
        let jobs = vec![
            DonatedChunk {
                id: 3,
                trie: HostTrie::from_flat_paths(&[vec![1, 2], vec![1, 3]]),
            },
            DonatedChunk {
                id: u64::MAX,
                trie: HostTrie::from_flat_paths(&[vec![9]]),
            },
            DonatedChunk {
                id: 0,
                trie: HostTrie::new(),
            },
        ];
        let p = WorkPayload { jobs: jobs.clone() };
        let decoded = WorkPayload::decode(p.encode()).unwrap();
        assert_eq!(decoded.jobs, jobs);
    }

    #[test]
    fn structurally_corrupt_trie_rejected() {
        // Valid wire encoding of an *invalid* trie (root with a parent).
        let mut t = HostTrie::from_flat_paths(&[vec![1, 2]]);
        t.pa[0] = 5;
        let p = WorkPayload {
            jobs: vec![DonatedChunk { id: 1, trie: t }],
        };
        assert_eq!(
            WorkPayload::decode(p.encode()),
            Err(WireError::Corrupt("donated trie fails validation"))
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let p = WorkPayload {
            jobs: vec![DonatedChunk {
                id: 42,
                trie: HostTrie::from_flat_paths(&[vec![1, 2]]),
            }],
        };
        let enc = p.encode();
        for cut in [2, 6, 11, enc.len() - 3] {
            assert!(WorkPayload::decode(enc.slice(0..cut)).is_err(), "cut {cut}");
        }
    }
}
