//! The asynchronous work-donation protocol of §4.2.
//!
//! States and messages: a rank that drains its job queue broadcasts
//! [`tag::FREE`] and enters the idle loop. A busy rank holding spare jobs
//! that learns of a free peer sends [`tag::CLAIM`]; the free peer grants
//! the *first* claim with [`tag::ACK`] (broadcasting [`tag::BUSY`] so no
//! one else targets it) and refuses the rest with [`tag::NACK`]. The
//! granted claimant ships a [`tag::WORK`] payload — serialised tries —
//! and both continue. The pairing rules of the paper fall out: a free node
//! grants one claimant, and a claimant blocks on its single outstanding
//! claim. Termination: a free rank exits once every peer is marked free —
//! a claim can only be in flight from a rank that has not broadcast FREE,
//! so no work is ever dropped.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cuts_trie::serial::{decode_trie, encode_trie, WireError};
use cuts_trie::HostTrie;

/// Message tags.
pub mod tag {
    /// "I have finished all my work."
    pub const FREE: u32 = 1;
    /// "I have work again" (sent when a free rank accepts a claim).
    pub const BUSY: u32 = 2;
    /// "May I send you part of my queue?"
    pub const CLAIM: u32 = 3;
    /// Claim granted.
    pub const ACK: u32 = 4;
    /// Claim refused (already granted to someone else / no longer free).
    pub const NACK: u32 = 5;
    /// Donated work: a [`super::WorkPayload`].
    pub const WORK: u32 = 6;
}

/// Peer status as tracked from FREE/BUSY broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Processing or holding work.
    Busy,
    /// Announced an empty queue.
    Free,
}

/// Status vector over all ranks.
#[derive(Debug, Clone)]
pub struct StatusBoard {
    status: Vec<Status>,
    me: usize,
}

impl StatusBoard {
    /// All ranks start busy (everyone owns an initial partition).
    pub fn new(size: usize, me: usize) -> Self {
        StatusBoard {
            status: vec![Status::Busy; size],
            me,
        }
    }

    /// Records a FREE broadcast.
    pub fn mark_free(&mut self, rank: usize) {
        self.status[rank] = Status::Free;
    }

    /// Records a BUSY broadcast (or a granted/forwarded claim).
    pub fn mark_busy(&mut self, rank: usize) {
        self.status[rank] = Status::Busy;
    }

    /// Some free peer, if any (lowest rank first for determinism).
    pub fn first_free_peer(&self) -> Option<usize> {
        self.status
            .iter()
            .enumerate()
            .find(|&(r, &s)| r != self.me && s == Status::Free)
            .map(|(r, _)| r)
    }

    /// True when every peer (not counting ourselves) is free.
    pub fn all_peers_free(&self) -> bool {
        self.status
            .iter()
            .enumerate()
            .all(|(r, &s)| r == self.me || s == Status::Free)
    }
}

/// A donated batch of jobs, each a partial-path trie (possibly at
/// different depths, since the donor's queue mixes depths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkPayload {
    /// Donated tries.
    pub jobs: Vec<HostTrie>,
}

impl WorkPayload {
    /// Encodes: `[count, (len, trie-bytes)…]`.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32_le(self.jobs.len() as u32);
        for job in &self.jobs {
            let enc = encode_trie(job);
            b.put_u32_le(enc.len() as u32);
            b.put_slice(&enc);
        }
        b.freeze()
    }

    /// Decodes [`WorkPayload::encode`] output.
    pub fn decode(mut buf: Bytes) -> Result<WorkPayload, WireError> {
        if buf.remaining() < 4 {
            return Err(WireError::Truncated);
        }
        let count = buf.get_u32_le() as usize;
        let mut jobs = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 4 {
                return Err(WireError::Truncated);
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(WireError::Truncated);
            }
            let trie = decode_trie(buf.split_to(len))?;
            trie.validate()
                .map_err(|_| WireError::Corrupt("donated trie fails validation"))?;
            jobs.push(trie);
        }
        Ok(WorkPayload { jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_board_lifecycle() {
        let mut b = StatusBoard::new(3, 1);
        assert!(b.first_free_peer().is_none());
        assert!(!b.all_peers_free());
        b.mark_free(2);
        assert_eq!(b.first_free_peer(), Some(2));
        b.mark_free(0);
        assert!(b.all_peers_free());
        assert_eq!(b.first_free_peer(), Some(0));
        b.mark_busy(0);
        assert!(!b.all_peers_free());
    }

    #[test]
    fn own_status_ignored_for_termination() {
        let mut b = StatusBoard::new(2, 0);
        b.mark_free(1);
        // Rank 0 itself is still "busy" in the vector but that must not
        // block its own exit decision.
        assert!(b.all_peers_free());
    }

    #[test]
    fn work_payload_roundtrip() {
        let jobs = vec![
            HostTrie::from_flat_paths(&[vec![1, 2], vec![1, 3]]),
            HostTrie::from_flat_paths(&[vec![9]]),
            HostTrie::new(),
        ];
        let p = WorkPayload { jobs: jobs.clone() };
        let decoded = WorkPayload::decode(p.encode()).unwrap();
        assert_eq!(decoded.jobs, jobs);
    }

    #[test]
    fn structurally_corrupt_trie_rejected() {
        // Valid wire encoding of an *invalid* trie (root with a parent).
        let mut t = HostTrie::from_flat_paths(&[vec![1, 2]]);
        t.pa[0] = 5;
        let p = WorkPayload { jobs: vec![t] };
        assert_eq!(
            WorkPayload::decode(p.encode()),
            Err(WireError::Corrupt("donated trie fails validation"))
        );
    }

    #[test]
    fn truncated_payload_rejected() {
        let p = WorkPayload {
            jobs: vec![HostTrie::from_flat_paths(&[vec![1, 2]])],
        };
        let enc = p.encode();
        for cut in [2, 6, enc.len() - 3] {
            assert!(WorkPayload::decode(enc.slice(0..cut)).is_err(), "cut {cut}");
        }
    }
}
