//! Deterministic fault injection — re-exported from `cuts-core`.
//!
//! The plan schema, seeded generator, and injector moved to
//! [`cuts_core::fault`] so the serving tier ([`cuts_core::serve`]) can
//! drive the same crash schedules without depending on this crate. The
//! distributed runtime keeps using them through this module, so every
//! historical `cuts_dist::fault::…` path still resolves.

pub use cuts_core::fault::{
    CrashFault, CrashKind, DelayFault, DropFault, FaultInjector, FaultPlan, SendFate,
};
