//! VF2-style sequential CPU matcher (Cordella et al. 2004) — the classical
//! DFS baseline of §3, with the feasibility rules that distinguish it from
//! plain Ullmann backtracking: besides edge-consistency, a 1-lookahead
//! prunes states where the candidate's unmatched-neighbour budget cannot
//! cover the query vertex's remaining adjacency.

use cuts_graph::{Graph, VertexId};

/// Counts embeddings (injective, edge-preserving mappings) of `query` in
/// `data` using VF2-style DFS.
pub fn count(data: &Graph, query: &Graph) -> u64 {
    let mut n = 0u64;
    enumerate(data, query, &mut |_| n += 1);
    n
}

/// Enumerates embeddings; `sink` receives a slice indexed by query vertex.
pub fn enumerate(data: &Graph, query: &Graph, sink: &mut dyn FnMut(&[u32])) {
    let nq = query.num_vertices();
    if nq == 0 {
        return;
    }
    // Connected-first order, max degree greedy.
    let mut order = Vec::with_capacity(nq);
    let mut placed = vec![false; nq];
    while order.len() < nq {
        let v = (0..nq as VertexId)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let touching = query
                    .out_neighbors(v)
                    .iter()
                    .chain(query.in_neighbors(v))
                    .filter(|&&w| placed[w as usize])
                    .count();
                (touching, query.out_degree(v), std::cmp::Reverse(v))
            })
            .expect("vertices remain");
        placed[v as usize] = true;
        order.push(v);
    }

    let mut assign = vec![u32::MAX; nq];
    let mut used = vec![false; data.num_vertices()];
    let mut state = State {
        data,
        query,
        order: &order,
        assign: &mut assign,
        used: &mut used,
        sink,
    };
    state.rec(0);
}

struct State<'a> {
    data: &'a Graph,
    query: &'a Graph,
    order: &'a [VertexId],
    assign: &'a mut Vec<u32>,
    used: &'a mut Vec<bool>,
    sink: &'a mut dyn FnMut(&[u32]),
}

impl State<'_> {
    fn feasible(&self, q: VertexId, c: VertexId) -> bool {
        if self.used[c as usize] {
            return false;
        }
        // Degree rule.
        if self.data.out_degree(c) < self.query.out_degree(q)
            || self.data.in_degree(c) < self.query.in_degree(q)
        {
            return false;
        }
        // Label rule (extension; wildcard when either side is unlabelled).
        if !self.data.label_compatible(c, self.query, q) {
            return false;
        }
        // Edge consistency with matched neighbours.
        for &w in self.query.out_neighbors(q) {
            let m = self.assign[w as usize];
            if m != u32::MAX && !self.data.has_edge(c, m) {
                return false;
            }
        }
        for &w in self.query.in_neighbors(q) {
            let m = self.assign[w as usize];
            if m != u32::MAX && !self.data.has_edge(m, c) {
                return false;
            }
        }
        // 1-lookahead: the candidate needs at least as many *unused*
        // out-neighbours as the query vertex has unmatched out-neighbours
        // (and likewise for in-neighbours).
        let q_un_out = self
            .query
            .out_neighbors(q)
            .iter()
            .filter(|&&w| self.assign[w as usize] == u32::MAX)
            .count();
        if q_un_out > 0 {
            let c_un_out = self
                .data
                .out_neighbors(c)
                .iter()
                .filter(|&&d| !self.used[d as usize])
                .count();
            if c_un_out < q_un_out {
                return false;
            }
        }
        let q_un_in = self
            .query
            .in_neighbors(q)
            .iter()
            .filter(|&&w| self.assign[w as usize] == u32::MAX)
            .count();
        if q_un_in > 0 {
            let c_un_in = self
                .data
                .in_neighbors(c)
                .iter()
                .filter(|&&d| !self.used[d as usize])
                .count();
            if c_un_in < q_un_in {
                return false;
            }
        }
        true
    }

    fn rec(&mut self, pos: usize) {
        if pos == self.order.len() {
            (self.sink)(self.assign);
            return;
        }
        let q = self.order[pos];
        // Candidate pool: tightest matched-neighbour adjacency, else all.
        let mut pool: Option<Vec<VertexId>> = None;
        for &w in self.query.out_neighbors(q) {
            let m = self.assign[w as usize];
            if m != u32::MAX {
                let l = self.data.in_neighbors(m);
                if pool.as_ref().is_none_or(|p| l.len() < p.len()) {
                    pool = Some(l.to_vec());
                }
            }
        }
        for &w in self.query.in_neighbors(q) {
            let m = self.assign[w as usize];
            if m != u32::MAX {
                let l = self.data.out_neighbors(m);
                if pool.as_ref().is_none_or(|p| l.len() < p.len()) {
                    pool = Some(l.to_vec());
                }
            }
        }
        let pool = pool.unwrap_or_else(|| (0..self.data.num_vertices() as VertexId).collect());
        for c in pool {
            if !self.feasible(q, c) {
                continue;
            }
            self.assign[q as usize] = c;
            self.used[c as usize] = true;
            self.rec(pos + 1);
            self.used[c as usize] = false;
            self.assign[q as usize] = u32::MAX;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_core::reference;
    use cuts_graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d, star};

    #[test]
    fn agrees_with_reference() {
        let mesh = mesh2d(4, 4);
        let er = erdos_renyi(35, 100, 8);
        for q in [chain(3), chain(4), clique(3), clique(4), cycle(4), star(4)] {
            assert_eq!(
                count(&mesh, &q),
                reference::count_embeddings(&mesh, &q),
                "mesh {q:?}"
            );
            assert_eq!(
                count(&er, &q),
                reference::count_embeddings(&er, &q),
                "er {q:?}"
            );
        }
    }

    #[test]
    fn directed_cases() {
        let d = Graph::directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = Graph::directed(3, &[(0, 1), (1, 2)]);
        assert_eq!(count(&d, &p), reference::count_embeddings(&d, &p));
        assert_eq!(count(&d, &p), 4);
    }

    #[test]
    fn lookahead_prunes_but_preserves_count() {
        // Star query: hub lookahead needs unused leaves.
        let data = star(6);
        let q = star(5);
        assert_eq!(count(&data, &q), reference::count_embeddings(&data, &q));
    }

    #[test]
    fn empty_query() {
        assert_eq!(count(&clique(3), &Graph::undirected(0, &[])), 0);
    }
}
