//! GSI-style engine (Zeng et al., ICDE'20) on the simulated device.
//!
//! Differs from cuTS in exactly the mechanisms the paper credits for its
//! speedup (§3, §6):
//!
//! 1. **Query ordering** — id-order BFS instead of degree-greedy (GSI
//!    orders by label frequency; the paper's unlabelled benchmark leaves it
//!    with an arbitrary order, and §6 attributes up-to-785× candidate
//!    inflation to this).
//! 2. **Two-pass expansion** — pass 1 computes every intersection to count
//!    results, pass 2 recomputes them to write at prefix-summed offsets:
//!    double compute and double read traffic.
//! 3. **Flat full-path storage** — a depth-`d` level costs `d` words per
//!    path (vs the trie's 2), and parent+child levels must coexist during
//!    expansion, so big cases exhaust memory: the paper's GSI "-" entries.
//! 4. **Full 32-wide warps per candidate** — thread idling on low-degree
//!    graphs.
//! 5. **No chunking fallback** — overflow is a hard failure.

use std::time::Instant;

use cuts_core::intersect::{c_intersection, constraint_list};
use cuts_core::{CutsError, MatchOrder, MatchResult};
use cuts_gpu_sim::{CostModel, Device, GlobalBuffer};
use cuts_graph::{Graph, VertexId};

/// GSI engine tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct GsiConfig {
    /// Grid-size cap per kernel.
    pub max_blocks: usize,
}

impl Default for GsiConfig {
    fn default() -> Self {
        GsiConfig { max_blocks: 256 }
    }
}

/// The GSI-style baseline engine.
pub struct GsiEngine<'d> {
    device: &'d Device,
    config: GsiConfig,
}

impl<'d> GsiEngine<'d> {
    /// Engine with default configuration.
    pub fn new(device: &'d Device) -> Self {
        GsiEngine {
            device,
            config: GsiConfig::default(),
        }
    }

    /// Engine with explicit configuration.
    pub fn with_config(device: &'d Device, config: GsiConfig) -> Self {
        GsiEngine { device, config }
    }

    /// GSI's query ordering. On labelled inputs it uses the mechanism the
    /// literature describes (QuickSI/GSI, §3: "access the vertex with the
    /// most infrequent label"): start from the query vertex whose label is
    /// rarest in the data graph, then grow connected, always taking the
    /// rarest-label frontier vertex. On unlabelled inputs it degrades to
    /// id-order BFS — the behaviour the cuTS paper's benchmark exposes.
    fn query_order(query: &Graph, data: &Graph) -> Vec<VertexId> {
        let n = query.num_vertices();
        // Data-side label frequencies (only meaningful when both labelled).
        let freq = |v: VertexId| -> u64 {
            match (query.label(v), data.is_labeled()) {
                (Some(lq), true) => (0..data.num_vertices() as VertexId)
                    .filter(|&d| data.label(d) == Some(lq))
                    .count() as u64,
                _ => u64::MAX, // unlabelled: all ties -> id order
            }
        };
        let freqs: Vec<u64> = (0..n as VertexId).map(freq).collect();
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        while order.len() < n {
            let next = (0..n as VertexId)
                .filter(|&v| !visited[v as usize])
                .filter(|&v| {
                    order.is_empty()
                        || query
                            .out_neighbors(v)
                            .iter()
                            .chain(query.in_neighbors(v))
                            .any(|&w| visited[w as usize])
                })
                .min_by_key(|&v| (freqs[v as usize], v))
                .unwrap_or_else(|| {
                    (0..n as VertexId)
                        .find(|&v| !visited[v as usize])
                        .expect("vertices remain")
                });
            visited[next as usize] = true;
            order.push(next);
        }
        order
    }

    /// Counts all embeddings of a connected `query` in `data`.
    pub fn run(&self, data: &Graph, query: &Graph) -> Result<MatchResult, CutsError> {
        let wall_start = Instant::now();
        let scope = self.device.counter_scope();
        let plan = MatchOrder::from_order(query, Self::query_order(query, data))?;
        let n = plan.len();
        let mut level_counts = vec![0u64; n];

        // Level 0: degree filter into a flat 1-word-per-path buffer.
        let nd = data.num_vertices();
        let roots: Vec<VertexId> = (0..nd as VertexId)
            .filter(|&v| {
                data.degree_dominates(v, plan.q_out[0], plan.q_in[0])
                    && cuts_core::order::label_ok(data, v, plan.q_label[0])
            })
            .collect();
        self.device.run_single_block(|ctx| {
            ctx.counters.dram_read_coalesced(2 * nd);
            ctx.counters.alu(2 * nd);
            ctx.counters.dram_write(roots.len());
        });
        let mut cur = self.device.alloc_buffer(roots.len().max(1))?;
        {
            let r = cur.reserve(roots.len()).expect("sized exactly");
            r.write_slice(&roots);
        }
        let mut cur_count = roots.len();
        level_counts[0] = cur_count as u64;

        #[allow(clippy::needless_range_loop)] // pos indexes several parallel plan arrays
        for pos in 1..n {
            if cur_count == 0 {
                break;
            }
            let depth = pos; // current paths have `depth` vertices
            let blocks = self.config.max_blocks.min(cur_count).max(1);

            // ---- Pass 1: count survivors per path. ----
            let counts_buf = self.device.alloc_buffer(cur_count)?;
            let counts_res = counts_buf.reserve(cur_count).expect("sized exactly");
            self.device.launch(blocks, |ctx| {
                let mut path = Vec::with_capacity(depth);
                let mut i = ctx.block_id;
                while i < cur_count {
                    read_path(&cur, i, depth, &mut path, &mut ctx.counters);
                    let kept = expand_one(data, &plan, pos, &path, &mut ctx.counters);
                    // GSI coordinates its bins with an atomic per path.
                    ctx.counters.atomic();
                    counts_res.write(i, kept.len() as u32);
                    ctx.counters.dram_write(1);
                    i += ctx.num_blocks;
                }
                Ok(())
            })?;

            // ---- Prefix sum over counts (device scan primitive). ----
            let counts_host: Vec<u32> = (0..cur_count).map(|i| counts_buf.get(i)).collect();
            let offsets = self.device.run_single_block(|ctx| {
                cuts_gpu_sim::primitives::exclusive_scan(&mut ctx.counters, &counts_host)
            });
            let next_count = offsets[cur_count] as usize;
            level_counts[pos] = next_count as u64;

            // ---- Allocate the next flat level: (depth+1) words/path. ----
            let next = self
                .device
                .alloc_buffer((next_count * (depth + 1)).max(1))?;
            let next_res = next
                .reserve(next_count * (depth + 1))
                .expect("sized exactly");

            // ---- Pass 2: recompute everything, write at offsets. ----
            self.device.launch(blocks, |ctx| {
                let mut path = Vec::with_capacity(depth);
                let mut i = ctx.block_id;
                while i < cur_count {
                    read_path(&cur, i, depth, &mut path, &mut ctx.counters);
                    let kept = expand_one(data, &plan, pos, &path, &mut ctx.counters);
                    ctx.counters.atomic();
                    let base = offsets[i] as usize * (depth + 1);
                    for (k, &c) in kept.iter().enumerate() {
                        let row = base + k * (depth + 1);
                        for (l, &v) in path.iter().enumerate() {
                            next_res.write(row + l, v);
                        }
                        next_res.write(row + depth, c);
                        ctx.counters.dram_write(depth + 1);
                    }
                    i += ctx.num_blocks;
                }
                Ok(())
            })?;

            drop(counts_buf);
            cur = next;
            cur_count = next_count;
        }

        let num_matches = level_counts[n - 1];
        let counters = scope.elapsed(self.device);
        let sim_millis = CostModel::default().millis(&counters, self.device.config());
        Ok(MatchResult {
            num_matches,
            level_counts,
            counters,
            sim_millis,
            wall_millis: wall_start.elapsed().as_secs_f64() * 1e3,
            used_chunking: false,
            order: plan.order.clone(),
        })
    }
}

/// Reads path `i` of a flat depth-`d` level (coalesced row read).
fn read_path(
    buf: &GlobalBuffer,
    i: usize,
    depth: usize,
    path: &mut Vec<VertexId>,
    ctr: &mut cuts_gpu_sim::BlockCounters,
) {
    path.clear();
    ctr.dram_read_coalesced(depth);
    for l in 0..depth {
        path.push(buf.get(i * depth + l));
    }
}

/// Candidate generation for one path: full-warp c-intersection, degree
/// filter, injectivity — GSI's join step.
fn expand_one(
    data: &Graph,
    plan: &MatchOrder,
    pos: usize,
    path: &[VertexId],
    ctr: &mut cuts_gpu_sim::BlockCounters,
) -> Vec<VertexId> {
    let back = &plan.back_edges[pos];
    let mut lists: Vec<&[VertexId]> = Vec::with_capacity(back.len());
    for be in back {
        lists.push(constraint_list(data, path[be.pos], be.dir));
    }
    lists.sort_unstable_by_key(|l| l.len());
    let mut scratch = Vec::new();
    // Full 32-wide warp: the thread-idling configuration.
    c_intersection(&lists, 32, ctr, &mut scratch);
    let mut out = Vec::new();
    for &c in &scratch {
        ctr.dram_read_coalesced(2);
        ctr.alu(2);
        if !data.degree_dominates(c, plan.q_out[pos], plan.q_in[pos]) {
            continue;
        }
        if !cuts_core::order::label_ok(data, c, plan.q_label[pos]) {
            continue;
        }
        ctr.shmem_read(path.len());
        if path.contains(&c) {
            continue;
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_core::{reference, CutsEngine};
    use cuts_gpu_sim::{DeviceConfig, DeviceError};
    use cuts_graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d};

    #[test]
    fn counts_match_reference() {
        let device = Device::new(DeviceConfig::test_small());
        let gsi = GsiEngine::new(&device);
        let mesh = mesh2d(4, 4);
        let er = erdos_renyi(40, 120, 3);
        for q in [chain(3), clique(3), cycle(4), clique(4)] {
            assert_eq!(
                gsi.run(&mesh, &q).unwrap().num_matches,
                reference::count_embeddings(&mesh, &q)
            );
            assert_eq!(
                gsi.run(&er, &q).unwrap().num_matches,
                reference::count_embeddings(&er, &q)
            );
        }
    }

    #[test]
    fn unlabeled_order_is_id_first() {
        let data = mesh2d(2, 2);
        let o = GsiEngine::query_order(&chain(4), &data);
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn labeled_order_starts_at_rarest_label() {
        // Data: label 9 appears once, label 0 everywhere else.
        let data = mesh2d(3, 3).with_labels(vec![0, 0, 0, 0, 9, 0, 0, 0, 0]);
        // Query chain 0-1-2 with the rare label on vertex 2.
        let q = chain(3).with_labels(vec![0, 0, 9]);
        let o = GsiEngine::query_order(&q, &data);
        assert_eq!(o[0], 2, "root should carry the rarest label");
        // Connectivity maintained: 1 must precede 0.
        assert_eq!(o, vec![2, 1, 0]);
    }

    #[test]
    fn gsi_moves_more_data_than_cuts() {
        let device = Device::new(DeviceConfig::test_small());
        let data = erdos_renyi(120, 900, 7);
        let query = clique(4);
        let gsi = GsiEngine::new(&device).run(&data, &query).unwrap();
        let cuts = CutsEngine::new(&device).run(&data, &query).unwrap();
        assert_eq!(gsi.num_matches, cuts.num_matches);
        assert!(
            gsi.counters.dram_reads > cuts.counters.dram_reads,
            "gsi {} vs cuts {}",
            gsi.counters.dram_reads,
            cuts.counters.dram_reads
        );
        assert!(gsi.counters.instructions > cuts.counters.instructions);
        assert!(gsi.sim_millis > cuts.sim_millis);
    }

    #[test]
    fn gsi_fails_where_cuts_chunks() {
        // Memory small enough that flat storage overflows but the trie,
        // with chunking, finishes.
        let data = erdos_renyi(150, 1200, 13);
        let query = chain(5);
        // 60k words: GSI's flat |P_2| level alone needs ~115k, but the
        // trie plus chunking fits comfortably.
        let small = Device::new(DeviceConfig::test_small().with_global_mem_words(60_000));
        let gsi = GsiEngine::new(&small).run(&data, &query);
        assert!(
            matches!(gsi, Err(CutsError::Device(DeviceError::OutOfMemory { .. }))),
            "expected GSI OOM, got {gsi:?}"
        );
        let cuts = CutsEngine::new(&small).run(&data, &query).unwrap();
        assert!(cuts.num_matches > 0);
    }

    #[test]
    fn empty_result_handled() {
        let device = Device::new(DeviceConfig::test_small());
        let gsi = GsiEngine::new(&device);
        let r = gsi.run(&mesh2d(3, 3), &clique(5)).unwrap();
        assert_eq!(r.num_matches, 0);
    }
}
