//! Gunrock-style subgraph matching (§3): partial paths are encoded into a
//! single 64-bit integer (base-`|V_D|` positional encoding), processed
//! pass by pass through global memory.
//!
//! Storage is 2 words per path regardless of depth — more compact than a
//! flat table — but the scheme requires `|V_D|^{|V_Q|} < 2^64`: "consider a
//! data graph with a million nodes; Gunrock can only support query graphs
//! with a maximum of four vertices". [`GunrockEngine::run`] surfaces that
//! limit as [`CutsError::Unsupported`], which is how the harness
//! reproduces Gunrock's unsupported cases.

use std::time::Instant;

use cuts_core::intersect::{c_intersection, constraint_list};
use cuts_core::{MatchOrder, MatchResult};
use cuts_gpu_sim::{CostModel, Device, GlobalBuffer};
use cuts_graph::{Graph, VertexId};

use cuts_core::CutsError;

/// The Gunrock-style baseline engine.
pub struct GunrockEngine<'d> {
    device: &'d Device,
    max_blocks: usize,
}

impl<'d> GunrockEngine<'d> {
    /// Engine with the default grid cap.
    pub fn new(device: &'d Device) -> Self {
        GunrockEngine {
            device,
            max_blocks: 256,
        }
    }

    /// Checks the encoding constraint `|V_D|^{|V_Q|} < 2^64`.
    pub fn encoding_fits(data_vertices: usize, query_vertices: usize) -> bool {
        let mut acc: u128 = 1;
        for _ in 0..query_vertices {
            acc = acc.saturating_mul(data_vertices.max(1) as u128);
            if acc >= (1u128 << 64) {
                return false;
            }
        }
        true
    }

    /// Counts all embeddings of a connected `query` in `data`.
    pub fn run(&self, data: &Graph, query: &Graph) -> Result<MatchResult, CutsError> {
        let wall_start = Instant::now();
        let nd = data.num_vertices();
        let nq = query.num_vertices();
        if !Self::encoding_fits(nd, nq) {
            return Err(CutsError::Unsupported {
                what: "gunrock path encoding",
                detail: format!("{nd}^{nq} exceeds 2^64"),
            });
        }
        let scope = self.device.counter_scope();
        let plan = MatchOrder::compute(query)?;
        let n = plan.len();
        let base = nd.max(1) as u64;
        let mut level_counts = vec![0u64; n];

        // Level 0 (one pass, encoded).
        let roots: Vec<VertexId> = (0..nd as VertexId)
            .filter(|&v| {
                data.degree_dominates(v, plan.q_out[0], plan.q_in[0])
                    && cuts_core::order::label_ok(data, v, plan.q_label[0])
            })
            .collect();
        self.device.run_single_block(|ctx| {
            ctx.counters.dram_read_coalesced(2 * nd);
            ctx.counters.alu(2 * nd);
            ctx.counters.dram_write(2 * roots.len());
        });
        let mut cur = encode_level(
            self.device,
            &roots.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        )?;
        let mut cur_count = roots.len();
        level_counts[0] = cur_count as u64;

        #[allow(clippy::needless_range_loop)] // pos indexes several parallel plan arrays
        for pos in 1..n {
            if cur_count == 0 {
                break;
            }
            // Each pass writes into a fresh buffer claimed by atomic cursor
            // (single-pass, like cuTS, but every path must be decoded from
            // and re-encoded to global memory).
            let next = self.device.alloc_buffer(
                (self.device.free_words() / 2).max(2), // generous: 2 words/path
            )?;
            let blocks = self.max_blocks.min(cur_count).max(1);
            let depth = pos;
            self.device.launch(blocks, |ctx| {
                let mut path: Vec<VertexId> = Vec::with_capacity(depth);
                let mut cands: Vec<VertexId> = Vec::new();
                let mut i = ctx.block_id;
                while i < cur_count {
                    // Load and decode the 64-bit code (2 words + `depth`
                    // div/mod pairs of ALU work).
                    ctx.counters.dram_read_coalesced(2);
                    let code = read_u64(&cur, i);
                    decode_path(code, base, depth, &mut path);
                    ctx.counters.alu(2 * depth);

                    let back = &plan.back_edges[pos];
                    let mut lists: Vec<&[VertexId]> = Vec::with_capacity(back.len());
                    for be in back {
                        lists.push(constraint_list(data, path[be.pos], be.dir));
                    }
                    lists.sort_unstable_by_key(|l| l.len());
                    c_intersection(&lists, 32, &mut ctx.counters, &mut cands);

                    let mut kept: Vec<u64> = Vec::new();
                    for &c in &cands {
                        ctx.counters.dram_read_coalesced(2);
                        ctx.counters.alu(2);
                        if !data.degree_dominates(c, plan.q_out[pos], plan.q_in[pos])
                            || !cuts_core::order::label_ok(data, c, plan.q_label[pos])
                        {
                            continue;
                        }
                        ctx.counters.alu(depth);
                        if path.contains(&c) {
                            continue;
                        }
                        // Re-encode: code + c * base^depth.
                        kept.push(code + c as u64 * base.pow(depth as u32));
                        ctx.counters.alu(2);
                    }
                    if !kept.is_empty() {
                        ctx.counters.atomic();
                        let r = next.reserve(2 * kept.len())?;
                        for (k, &code) in kept.iter().enumerate() {
                            r.write(2 * k, code as u32);
                            r.write(2 * k + 1, (code >> 32) as u32);
                        }
                        ctx.counters.dram_write(2 * kept.len());
                    }
                    i += ctx.num_blocks;
                }
                Ok(())
            })?;
            cur_count = next.len() / 2;
            level_counts[pos] = cur_count as u64;
            cur = next;
        }

        let counters = scope.elapsed(self.device);
        let sim_millis = CostModel::default().millis(&counters, self.device.config());
        Ok(MatchResult {
            num_matches: level_counts[n - 1],
            level_counts,
            counters,
            sim_millis,
            wall_millis: wall_start.elapsed().as_secs_f64() * 1e3,
            used_chunking: false,
            order: plan.order.clone(),
        })
    }
}

fn encode_level(device: &Device, codes: &[u64]) -> Result<GlobalBuffer, CutsError> {
    let buf = device.alloc_buffer((2 * codes.len()).max(2))?;
    let r = buf.reserve(2 * codes.len()).expect("sized exactly");
    for (i, &c) in codes.iter().enumerate() {
        r.write(2 * i, c as u32);
        r.write(2 * i + 1, (c >> 32) as u32);
    }
    Ok(buf)
}

fn read_u64(buf: &GlobalBuffer, i: usize) -> u64 {
    buf.get(2 * i) as u64 | ((buf.get(2 * i + 1) as u64) << 32)
}

fn decode_path(code: u64, base: u64, depth: usize, out: &mut Vec<VertexId>) {
    out.clear();
    let mut c = code;
    for _ in 0..depth {
        out.push((c % base) as VertexId);
        c /= base;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_core::reference;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d};

    #[test]
    fn encoding_limit_matches_paper_example() {
        // A million-node data graph supports at most 4-vertex queries
        // (10^6^4 = 10^24 < 2^64 ≈ 1.8·10^19? No: 10^24 > 1.8·10^19, so 4
        // fits only as 10^18 < 2^64 for 3 vertices... check the arithmetic
        // the paper states: 10^6^3 = 10^18 < 2^64 fits; 10^6^4 = 10^24
        // does not. The paper says "maximum of four vertices" counting the
        // path of 3 extensions; we assert the raw inequality.)
        assert!(GunrockEngine::encoding_fits(1_000_000, 3));
        assert!(!GunrockEngine::encoding_fits(1_000_000, 4));
        assert!(GunrockEngine::encoding_fits(100, 9));
        assert!(!GunrockEngine::encoding_fits(1 << 17, 4));
    }

    #[test]
    fn counts_match_reference() {
        let device = Device::new(DeviceConfig::test_small());
        let eng = GunrockEngine::new(&device);
        let mesh = mesh2d(4, 4);
        let er = erdos_renyi(40, 120, 3);
        for q in [chain(3), clique(3), cycle(4)] {
            assert_eq!(
                eng.run(&mesh, &q).unwrap().num_matches,
                reference::count_embeddings(&mesh, &q)
            );
            assert_eq!(
                eng.run(&er, &q).unwrap().num_matches,
                reference::count_embeddings(&er, &q)
            );
        }
    }

    #[test]
    fn decode_inverts_encode() {
        let base = 97u64;
        let path = [5u32, 80, 3, 42];
        let mut code = 0u64;
        for (l, &v) in path.iter().enumerate() {
            code += v as u64 * base.pow(l as u32);
        }
        let mut out = Vec::new();
        decode_path(code, base, 4, &mut out);
        assert_eq!(out, path);
    }

    #[test]
    fn overflow_reported_before_running() {
        // A "paper-scale" vertex count with a 5-vertex query must refuse.
        let device = Device::new(DeviceConfig::test_small());
        let eng = GunrockEngine::new(&device);
        // Build a tiny graph but lie about nothing: use an actual graph
        // with many vertices and no edges; the check fires on |V| alone.
        let big = Graph::undirected(1 << 16, &[]);
        let q = clique(4);
        match eng.run(&big, &q) {
            Err(CutsError::Unsupported { what, detail }) => {
                assert_eq!(what, "gunrock path encoding");
                assert!(detail.contains("^4"));
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }
}
