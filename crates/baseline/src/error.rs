//! Baseline-specific errors.

use cuts_core::EngineError;

/// Failures of a baseline run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Shared engine failure (device OOM etc.).
    Engine(EngineError),
    /// Gunrock's encoding cannot represent the instance:
    /// `|V_D|^{|V_Q|} ≥ 2^64` (§3: a million-vertex data graph caps the
    /// query at four vertices).
    EncodingOverflow {
        /// Data graph vertices.
        data_vertices: usize,
        /// Query graph vertices.
        query_vertices: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Engine(e) => write!(f, "{e}"),
            BaselineError::EncodingOverflow {
                data_vertices,
                query_vertices,
            } => write!(
                f,
                "encoding overflow: {data_vertices}^{query_vertices} exceeds 2^64"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<EngineError> for BaselineError {
    fn from(e: EngineError) -> Self {
        BaselineError::Engine(e)
    }
}

impl From<cuts_gpu_sim::DeviceError> for BaselineError {
    fn from(e: cuts_gpu_sim::DeviceError) -> Self {
        BaselineError::Engine(EngineError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = BaselineError::EncodingOverflow {
            data_vertices: 1_000_000,
            query_vertices: 5,
        };
        assert!(e.to_string().contains("1000000^5"));
    }
}
