#![warn(missing_docs)]

//! Baselines the paper evaluates against, rebuilt on the same simulated
//! substrate so that comparisons isolate *algorithmic* differences:
//!
//! * [`GsiEngine`] — a GSI-style engine (Zeng et al., ICDE'20): full-warp
//!   per candidate, two-pass count-then-write level expansion, flat
//!   full-path intermediate storage, id-order BFS query ordering, no
//!   chunking fallback. Each of these is a mechanism §3/§6 of the cuTS
//!   paper names when explaining its speedup and GSI's memory overflows.
//! * [`GunrockEngine`] — the Gunrock subgraph-matching storage scheme: a
//!   partial path is one 64-bit integer (base-`|V_D|` encoding), viable
//!   only while `|V_D|^{|V_Q|} < 2^64`; pass-by-pass with global-memory
//!   round trips.
//! * [`vf2`] — a CPU DFS matcher with VF2-style pruning, the classical
//!   sequential baseline (and an independent correctness oracle).

pub mod gsi;
pub mod gunrock;
pub mod vf2;

pub use cuts_core::CutsError;
pub use gsi::{GsiConfig, GsiEngine};
pub use gunrock::GunrockEngine;
