//! Concurrency-correctness stress tests for the lock-sharded journal.
//!
//! `loom` is not available in this dependency-free workspace, so the
//! journal's guarantees are pinned with a heavily threaded stress run
//! instead: many threads hammer one journal concurrently and the test
//! asserts the two properties the sharding design promises — **no event
//! is ever lost** and **one thread's events never interleave out of
//! program order** (per-lane sequence numbers stay strictly increasing
//! after the global sort).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use cuts_obs::{Arg, EventKind, Trace};

const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 2_000;

#[test]
fn concurrent_emission_loses_nothing_and_keeps_per_thread_order() {
    let trace = Trace::enabled();
    let go = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let trace = trace.clone();
            let go = Arc::clone(&go);
            s.spawn(move || {
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                for i in 0..EVENTS_PER_THREAD {
                    // Mix instants and spans, as real instrumentation does.
                    if i % 3 == 0 {
                        let mut span = trace.span(EventKind::Kernel, "stress");
                        span.arg("thread", Arg::U64(t as u64));
                        span.arg("i", Arg::U64(i as u64));
                    } else {
                        trace.instant_with(
                            EventKind::Chunk,
                            "stress",
                            &[("thread", Arg::U64(t as u64)), ("i", Arg::U64(i as u64))],
                        );
                    }
                }
            });
        }
        go.store(true, Ordering::Release);
    });

    let events = trace.journal().unwrap().drain_sorted();
    assert_eq!(
        events.len(),
        THREADS * EVENTS_PER_THREAD,
        "lossless: every emitted event must be recorded"
    );

    // Global sequence numbers are unique.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), THREADS * EVENTS_PER_THREAD);

    // Per-thread program order survives the global (ts, seq) sort: for
    // each emitting thread, the payload index `i` must be increasing.
    // (Spans are recorded at drop, i.e. still in program order.)
    let mut last_i = vec![None::<u64>; THREADS + 64];
    let mut per_thread = vec![0usize; THREADS + 64];
    for e in &events {
        let (Some(Arg::U64(t)), Some(Arg::U64(i))) = (e.arg("thread"), e.arg("i")) else {
            panic!("missing payload args");
        };
        let t = *t as usize;
        per_thread[t] += 1;
        if let Some(prev) = last_i[t] {
            assert!(
                *i > prev,
                "thread {t}: event i={i} observed after i={prev} — interleaved"
            );
        }
        last_i[t] = Some(*i);
    }
    for (t, &n) in per_thread.iter().take(THREADS).enumerate() {
        assert_eq!(n, EVENTS_PER_THREAD, "thread {t} lost events");
    }
}

#[test]
fn concurrent_drain_and_record_is_safe() {
    // Drains racing with recorders must never panic or corrupt events;
    // every event ends up in exactly one drain (or the final sweep).
    let trace = Trace::enabled();
    let journal = Arc::clone(trace.journal().unwrap());
    let total: usize = std::thread::scope(|s| {
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let trace = trace.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        trace.instant_with(
                            EventKind::Pool,
                            "hit",
                            &[("thread", Arg::U64(t)), ("i", Arg::U64(i))],
                        );
                    }
                })
            })
            .collect();
        let reader = {
            let journal = Arc::clone(&journal);
            s.spawn(move || {
                let mut collected = 0usize;
                for _ in 0..50 {
                    collected += journal.drain_sorted().len();
                    std::thread::yield_now();
                }
                collected
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap()
    });
    let rest = journal.drain_sorted().len();
    assert_eq!(total + rest, 4 * 500);
}
