//! Histogram correctness: quantiles vs a sorted oracle on random and
//! adversarial distributions, and a sharded-recording stress test.

use cuts_obs::registry::{bucket_index, bucket_upper};
use cuts_obs::Registry;

/// Deterministic xorshift so test inputs are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Exact quantile from a sorted copy: the `ceil(q·n)`-th smallest.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram's reported quantile brackets the oracle within
/// one bucket: the report is the upper bound of the bucket holding the
/// oracle sample, so `lower(bucket(report)) ≤ oracle ≤ report`.
fn assert_quantile_bounded(samples: &[u64], quantiles: &[f64]) {
    let reg = Registry::enabled();
    let h = reg.histogram("h", &[], "oracle test");
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let snap = h.snapshot();
    assert_eq!(snap.count(), samples.len() as u64);
    assert_eq!(snap.sum(), samples.iter().copied().sum::<u64>());
    for &q in quantiles {
        let oracle = oracle_quantile(&sorted, q);
        let reported = snap.quantile(q).expect("non-empty");
        assert_eq!(
            bucket_index(reported),
            bucket_index(oracle),
            "q={q}: reported {reported} not in oracle {oracle}'s bucket"
        );
        assert!(
            reported >= oracle,
            "q={q}: reported {reported} < oracle {oracle}"
        );
        // Log2 sub-bucket width bound: ≤ 25% relative error (exact for
        // small values).
        assert!(
            (reported - oracle) as f64 <= (oracle as f64 * 0.25).max(0.0),
            "q={q}: reported {reported} vs oracle {oracle} exceeds bucket width"
        );
    }
}

const QS: [f64; 5] = [0.5, 0.9, 0.95, 0.99, 0.999];

#[test]
fn random_uniform_matches_oracle() {
    let mut rng = Rng(0x5eed);
    let samples: Vec<u64> = (0..10_000).map(|_| rng.next() % 1_000_000).collect();
    assert_quantile_bounded(&samples, &QS);
}

#[test]
fn random_wide_range_matches_oracle() {
    let mut rng = Rng(0xfeed_beef);
    // Spread over many octaves: shift by a random amount up to 2^50.
    let samples: Vec<u64> = (0..10_000)
        .map(|_| {
            let shift = rng.next() % 50;
            rng.next() % (1u64 << (shift + 1))
        })
        .collect();
    assert_quantile_bounded(&samples, &QS);
}

#[test]
fn adversarial_single_bucket() {
    // Every sample identical → every quantile is that bucket's bound.
    assert_quantile_bounded(&vec![777u64; 5_000], &QS);
    // All samples inside one log2 sub-bucket.
    let samples: Vec<u64> = (0..1_000).map(|i| 1_048_576 + (i % 100)).collect();
    assert_quantile_bounded(&samples, &QS);
}

#[test]
fn adversarial_heavy_tail() {
    // 99% tiny values, 1% huge: the tail quantiles must find the spike.
    let mut rng = Rng(0xabc);
    let samples: Vec<u64> = (0..20_000)
        .map(|i| {
            if i % 100 == 0 {
                1_000_000_000 + rng.next() % 1_000_000
            } else {
                rng.next() % 64
            }
        })
        .collect();
    assert_quantile_bounded(&samples, &QS);
}

#[test]
fn adversarial_bucket_boundaries() {
    // Exact powers of two and off-by-ones straddle bucket edges.
    let mut samples = Vec::new();
    for shift in 0..40u32 {
        let v = 1u64 << shift;
        samples.extend([v.saturating_sub(1), v, v + 1]);
    }
    assert_quantile_bounded(&samples, &QS);
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let reg = Registry::enabled();
    let h = reg.histogram("empty", &[], "empty");
    assert_eq!(h.snapshot().quantile(0.5), None);
    assert_eq!(h.count(), 0);
    assert_eq!(h.snapshot().mean(), 0.0);
}

#[test]
fn sharded_recording_loses_nothing() {
    // 8 threads hammer one histogram; afterwards the merged view must
    // hold every increment with an exact sum — no lost updates, and no
    // torn reads (a torn 64-bit read would corrupt count or sum).
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 200_000;
    let reg = Registry::enabled();
    let h = reg.histogram("stress", &[], "stress");
    let expected_sum: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = h.clone();
                s.spawn(move || {
                    let mut rng = Rng(0x1000 + t as u64);
                    let mut sum = 0u64;
                    for _ in 0..PER_THREAD {
                        let v = rng.next() % 100_000;
                        h.record(v);
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let snap = h.snapshot();
    assert_eq!(snap.count(), THREADS as u64 * PER_THREAD, "lost increments");
    assert_eq!(snap.sum(), expected_sum, "torn or lost sum updates");
    // Counters shard the same way; verify them under the same load.
    let c = reg.counter("stress_total", &[], "stress");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let c = c.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_snapshot_never_tears() {
    // Readers snapshot while a writer records a fixed value. Snapshots
    // are not instantaneous (shards are read in sequence), but every
    // individual 64-bit load is atomic, so each reader must observe
    // counts and sums that only ever grow and never exceed the final
    // totals — a torn read would surface as a wild or regressing value.
    const TOTAL: u64 = 500_000;
    let reg = Registry::enabled();
    let h = reg.histogram("tear", &[], "tear check");
    std::thread::scope(|s| {
        let writer = {
            let h = h.clone();
            s.spawn(move || {
                for _ in 0..TOTAL {
                    h.record(3);
                }
            })
        };
        for _ in 0..3 {
            let h = h.clone();
            s.spawn(move || {
                let (mut last_count, mut last_sum) = (0u64, 0u64);
                for _ in 0..200 {
                    let snap = h.snapshot();
                    let (count, sum) = (snap.count(), snap.sum());
                    assert!(
                        count >= last_count,
                        "count regressed: {last_count} -> {count}"
                    );
                    assert!(sum >= last_sum, "sum regressed: {last_sum} -> {sum}");
                    assert!(count <= TOTAL, "count overshot: {count}");
                    assert!(sum <= 3 * TOTAL, "sum overshot: {sum}");
                    (last_count, last_sum) = (count, sum);
                }
            });
        }
        writer.join().unwrap();
    });
    let end = h.snapshot();
    assert_eq!(end.count(), TOTAL);
    assert_eq!(end.sum(), 3 * TOTAL);
}

#[test]
fn bucket_bounds_partition_u64() {
    // Walking bucket uppers from 0 must visit strictly increasing
    // bounds and index back into the same bucket.
    let mut prev: Option<u64> = None;
    for idx in 0..cuts_obs::registry::HIST_BUCKETS {
        let upper = bucket_upper(idx);
        if let Some(p) = prev {
            assert!(upper > p, "bucket {idx} upper {upper} not increasing");
            assert_eq!(bucket_index(p + 1), idx, "gap below bucket {idx}");
        }
        assert_eq!(bucket_index(upper), idx, "upper bound maps elsewhere");
        prev = Some(upper);
    }
    assert_eq!(prev, Some(u64::MAX));
}
