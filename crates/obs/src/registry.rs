//! Always-on serving metrics: lock-free sharded counters, gauges, and
//! log2-bucketed latency histograms.
//!
//! The [`Journal`](crate::Journal) answers "what happened in this run" —
//! it is lossless, allocates per event, and is meant to be switched on
//! for a profiling session. A [`Registry`] answers "what are my p99s
//! right now": every instrument is a fixed block of atomics, recording
//! is a handful of relaxed `fetch_add`s on a per-lane shard (tens of
//! nanoseconds, no locks, no allocation), and the data is safe to leave
//! on under production traffic forever.
//!
//! Handles ([`Counter`], [`Gauge`], [`Hist`]) are cheap clones of an
//! `Option<Arc<_>>`; a disabled registry hands out empty handles whose
//! record methods are a single `Option` check — the same zero-cost
//! disabled contract as [`Trace`](crate::Trace).
//!
//! Histograms are log2-bucketed with [`HIST_SUB_BUCKETS`] linear
//! sub-buckets per octave, so a reported quantile is off by at most one
//! sub-bucket width (≤ 25% relative error, and exact below
//! [`HIST_SUB_BUCKETS`]); the oracle tests in `tests/histogram.rs` pin
//! the bound down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::journal::lane;
use crate::json::{Json, ToJson};
use crate::metrics::{MetricKind, MetricsSnapshot};

/// Number of atomic shards per instrument. Threads pick
/// `lane() % SHARDS`, so concurrent recorders almost never hit the same
/// cache line.
pub const REGISTRY_SHARDS: usize = 8;

/// Linear sub-buckets per power-of-two octave (2 significant bits).
pub const HIST_SUB_BUCKETS: usize = 1 << HIST_SUB_BITS;

const HIST_SUB_BITS: u32 = 2;

/// Total histogram buckets: values `0..HIST_SUB_BUCKETS` get exact
/// buckets, then `HIST_SUB_BUCKETS` buckets per octave for octaves
/// `HIST_SUB_BITS..=63`, covering all of `u64`.
pub const HIST_BUCKETS: usize = (64 - HIST_SUB_BITS as usize + 1) * HIST_SUB_BUCKETS;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - HIST_SUB_BITS)) & (HIST_SUB_BUCKETS as u64 - 1)) as usize;
    ((msb - HIST_SUB_BITS) as usize + 1) * HIST_SUB_BUCKETS + sub
}

/// Inclusive upper bound of a bucket (what quantiles report).
pub fn bucket_upper(idx: usize) -> u64 {
    if idx < HIST_SUB_BUCKETS {
        return idx as u64;
    }
    let octave = (idx / HIST_SUB_BUCKETS - 1) as u32 + HIST_SUB_BITS;
    let sub = (idx % HIST_SUB_BUCKETS) as u64;
    let width = 1u64 << (octave - HIST_SUB_BITS);
    // The topmost bucket's exclusive bound is 2^64; wrapping arithmetic
    // yields the correct inclusive u64::MAX there.
    (1u64 << octave)
        .wrapping_add((sub + 1).wrapping_mul(width))
        .wrapping_sub(1)
}

#[repr(align(64))]
struct PaddedAtomic(AtomicU64);

impl Default for PaddedAtomic {
    fn default() -> Self {
        PaddedAtomic(AtomicU64::new(0))
    }
}

fn label_vec(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[derive(Debug)]
struct Meta {
    name: String,
    labels: Vec<(String, String)>,
    help: &'static str,
}

struct CounterCore {
    meta: Meta,
    shards: [PaddedAtomic; REGISTRY_SHARDS],
}

/// A monotonically increasing, lane-sharded counter. Disabled handles
/// (from [`Registry::disabled`] or `Counter::default()`) are free.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// Adds `n`. One relaxed `fetch_add` on the calling lane's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.shards[lane() as usize % REGISTRY_SHARDS]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (sums the shards).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| {
            c.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
        })
    }

    /// Whether records go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

struct GaugeCore {
    meta: Meta,
    bits: AtomicU64,
}

/// A last-value-wins gauge storing an `f64`. Writes are a single
/// relaxed store.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCore>>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if `v` is larger (high-water tracking).
    pub fn set_max(&self, v: f64) {
        if let Some(g) = &self.0 {
            let mut cur = g.bits.load(Ordering::Relaxed);
            while v > f64::from_bits(cur) {
                match g.bits.compare_exchange_weak(
                    cur,
                    v.to_bits(),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.bits.load(Ordering::Relaxed)))
    }

    /// Whether records go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

struct HistShard {
    buckets: Box<[AtomicU64; HIST_BUCKETS]>,
    sum: AtomicU64,
    _pad: [u8; 0],
}

impl Default for HistShard {
    fn default() -> Self {
        let buckets: Vec<AtomicU64> = (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        HistShard {
            buckets: buckets.into_boxed_slice().try_into().ok().unwrap(),
            sum: AtomicU64::new(0),
            _pad: [],
        }
    }
}

struct HistCore {
    meta: Meta,
    shards: [HistShard; REGISTRY_SHARDS],
}

impl HistCore {
    fn counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; HIST_BUCKETS];
        for shard in &self.shards {
            for (o, b) in out.iter_mut().zip(shard.buckets.iter()) {
                *o += b.load(Ordering::Relaxed);
            }
        }
        out
    }
}

/// An immutable, merged view of a histogram at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    sum: u64,
}

impl HistSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q·count)`-th smallest sample. `None` on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_upper(idx));
            }
        }
        Some(bucket_upper(HIST_BUCKETS - 1))
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// `(bucket_upper, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper(i), c))
            .collect()
    }
}

/// A lane-sharded log2 histogram. Recording is two relaxed
/// `fetch_add`s (bucket + sum) on the calling lane's shard.
#[derive(Clone, Default)]
pub struct Hist(Option<Arc<HistCore>>);

impl Hist {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            let shard = &h.shards[lane() as usize % REGISTRY_SHARDS];
            shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Merged view across shards.
    pub fn snapshot(&self) -> HistSnapshot {
        match &self.0 {
            Some(h) => HistSnapshot {
                counts: h.counts(),
                sum: h.shards.iter().map(|s| s.sum.load(Ordering::Relaxed)).sum(),
            },
            None => HistSnapshot {
                counts: vec![0; HIST_BUCKETS],
                sum: 0,
            },
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// Convenience: [`HistSnapshot::quantile`] on a fresh snapshot.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// Whether records go anywhere.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }
}

impl std::fmt::Debug for Hist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hist")
            .field("count", &self.count())
            .finish()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<Vec<Arc<CounterCore>>>,
    gauges: Mutex<Vec<Arc<GaugeCore>>>,
    hists: Mutex<Vec<Arc<HistCore>>>,
}

/// A set of named instruments. Cloning shares the underlying storage;
/// a disabled registry ([`Registry::disabled`], also `Default`) hands
/// out no-op handles and records nothing.
///
/// Instrument lookup (`counter` / `gauge` / `histogram`) takes a lock
/// and is meant for setup paths — hold the returned handle across the
/// hot loop instead of re-resolving per record.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A recording registry.
    pub fn enabled() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// The no-op registry (same as `Registry::default()`).
    pub fn disabled() -> Self {
        Registry::default()
    }

    /// Enabled or disabled, per `on`.
    pub fn with_enabled(on: bool) -> Self {
        if on {
            Registry::enabled()
        } else {
            Registry::disabled()
        }
    }

    /// Whether instruments record.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Gets or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let labels = label_vec(labels);
        let mut list = inner.counters.lock().unwrap();
        if let Some(c) = list
            .iter()
            .find(|c| c.meta.name == name && c.meta.labels == labels)
        {
            return Counter(Some(Arc::clone(c)));
        }
        let core = Arc::new(CounterCore {
            meta: Meta {
                name: name.to_string(),
                labels,
                help,
            },
            shards: Default::default(),
        });
        list.push(Arc::clone(&core));
        Counter(Some(core))
    }

    /// Gets or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let labels = label_vec(labels);
        let mut list = inner.gauges.lock().unwrap();
        if let Some(g) = list
            .iter()
            .find(|g| g.meta.name == name && g.meta.labels == labels)
        {
            return Gauge(Some(Arc::clone(g)));
        }
        let core = Arc::new(GaugeCore {
            meta: Meta {
                name: name.to_string(),
                labels,
                help,
            },
            bits: AtomicU64::new(0f64.to_bits()),
        });
        list.push(Arc::clone(&core));
        Gauge(Some(core))
    }

    /// Gets or creates the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &'static str) -> Hist {
        let Some(inner) = &self.inner else {
            return Hist::default();
        };
        let labels = label_vec(labels);
        let mut list = inner.hists.lock().unwrap();
        if let Some(h) = list
            .iter()
            .find(|h| h.meta.name == name && h.meta.labels == labels)
        {
            return Hist(Some(Arc::clone(h)));
        }
        let core = Arc::new(HistCore {
            meta: Meta {
                name: name.to_string(),
                labels,
                help,
            },
            shards: Default::default(),
        });
        list.push(Arc::clone(&core));
        Hist(Some(core))
    }

    /// Renders every instrument into a typed Prometheus snapshot.
    /// Histograms export as summaries: `quantile`-labelled samples plus
    /// `_sum` / `_count`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let Some(inner) = &self.inner else {
            return snap;
        };
        for c in inner.counters.lock().unwrap().iter() {
            let labels: Vec<(&str, &str)> = c
                .meta
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            snap.push_typed(
                &c.meta.name,
                &labels,
                Counter(Some(Arc::clone(c))).get() as f64,
                MetricKind::Counter,
                c.meta.help,
            );
        }
        for g in inner.gauges.lock().unwrap().iter() {
            let labels: Vec<(&str, &str)> = g
                .meta
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            snap.push_typed(
                &g.meta.name,
                &labels,
                f64::from_bits(g.bits.load(Ordering::Relaxed)),
                MetricKind::Gauge,
                g.meta.help,
            );
        }
        for h in inner.hists.lock().unwrap().iter() {
            let hist = Hist(Some(Arc::clone(h)));
            let s = hist.snapshot();
            let base: Vec<(&str, &str)> = h
                .meta
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            for (q, qs) in [
                (0.5, "0.5"),
                (0.95, "0.95"),
                (0.99, "0.99"),
                (0.999, "0.999"),
            ] {
                let mut labels = base.clone();
                labels.push(("quantile", qs));
                snap.push_typed(
                    &h.meta.name,
                    &labels,
                    s.quantile(q).unwrap_or(0) as f64,
                    MetricKind::Summary,
                    h.meta.help,
                );
            }
            snap.push_typed(
                &format!("{}_sum", h.meta.name),
                &base,
                s.sum() as f64,
                MetricKind::Summary,
                h.meta.help,
            );
            snap.push_typed(
                &format!("{}_count", h.meta.name),
                &base,
                s.count() as f64,
                MetricKind::Summary,
                h.meta.help,
            );
        }
        snap
    }

    /// A compact JSON view of every instrument (the `--stats-every`
    /// snapshot payload): counters and gauges by name, histograms as
    /// `{count, sum, p50, p95, p99, p999}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        if let Some(inner) = &self.inner {
            for c in inner.counters.lock().unwrap().iter() {
                let mut o = meta_json(&c.meta);
                o.set("value", Counter(Some(Arc::clone(c))).get());
                counters.push(o);
            }
            for g in inner.gauges.lock().unwrap().iter() {
                let mut o = meta_json(&g.meta);
                o.set("value", f64::from_bits(g.bits.load(Ordering::Relaxed)));
                gauges.push(o);
            }
            for h in inner.hists.lock().unwrap().iter() {
                let s = Hist(Some(Arc::clone(h))).snapshot();
                let mut o = meta_json(&h.meta);
                o.set("count", s.count());
                o.set("sum", s.sum());
                o.set("p50", s.quantile(0.5).unwrap_or(0));
                o.set("p95", s.quantile(0.95).unwrap_or(0));
                o.set("p99", s.quantile(0.99).unwrap_or(0));
                o.set("p999", s.quantile(0.999).unwrap_or(0));
                hists.push(o);
            }
        }
        Json::obj([
            ("enabled", Json::Bool(self.is_enabled())),
            ("counters", Json::Arr(counters)),
            ("gauges", Json::Arr(gauges)),
            ("histograms", Json::Arr(hists)),
        ])
    }
}

fn meta_json(meta: &Meta) -> Json {
    let mut o = Json::obj([("name", Json::Str(meta.name.clone()))]);
    if !meta.labels.is_empty() {
        o.set(
            "labels",
            Json::Obj(
                meta.labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        );
    }
    o
}

impl ToJson for Registry {
    fn to_json(&self) -> Json {
        Registry::to_json(self)
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut last = 0usize;
        for v in [
            0u64,
            1,
            2,
            3,
            4,
            5,
            7,
            8,
            15,
            16,
            100,
            1000,
            1 << 20,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(idx >= last, "index not monotone at {v}");
            assert!(idx < HIST_BUCKETS);
            assert!(bucket_upper(idx) >= v, "upper bound below value at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn small_values_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn bucket_relative_error_bounded() {
        for shift in 3..63u32 {
            for off in [0u64, 1, 7] {
                let v = (1u64 << shift) + off;
                let up = bucket_upper(bucket_index(v));
                assert!(up >= v);
                // Reported value overshoots by at most one sub-bucket
                // width: 2^(msb-2), i.e. 25% of the value.
                assert!(
                    (up - v) as f64 <= v as f64 * 0.25,
                    "error too large at {v}: reported {up}"
                );
            }
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::enabled();
        let c = r.counter("cuts_test_total", &[("k", "v")], "test");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same (name, labels) resolves to the same storage.
        assert_eq!(r.counter("cuts_test_total", &[("k", "v")], "test").get(), 5);
        let g = r.gauge("cuts_test_gauge", &[], "test");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
    }

    #[test]
    fn disabled_registry_is_noop() {
        let r = Registry::disabled();
        let c = r.counter("c", &[], "h");
        let g = r.gauge("g", &[], "h");
        let h = r.histogram("h", &[], "h");
        c.inc();
        g.set(1.0);
        h.record(42);
        assert!(!c.is_enabled() && !g.is_enabled() && !h.is_enabled());
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn histogram_quantiles() {
        let r = Registry::enabled();
        let h = r.histogram("lat", &[], "test");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        let p50 = s.quantile(0.5).unwrap();
        // True p50 is 50; bucket upper bound may overshoot by ≤ 25%.
        assert!((50..=63).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(1.0).unwrap() >= 100);
    }

    #[test]
    fn prometheus_snapshot_is_typed() {
        let r = Registry::enabled();
        r.counter("cuts_jobs_total", &[], "jobs").add(3);
        r.histogram("cuts_wait_us", &[("class", "bulk")], "waits")
            .record(10);
        let text = r.snapshot().render();
        assert!(text.contains("# TYPE cuts_jobs_total counter"));
        assert!(text.contains("# TYPE cuts_wait_us summary"));
        assert!(text.contains("cuts_wait_us{class=\"bulk\",quantile=\"0.99\"}"));
        assert!(text.contains("cuts_wait_us_count{class=\"bulk\"} 1"));
    }
}
