//! Minimal JSON tree, writer, and parser.
//!
//! The build environment carries no registry access, so `serde` is not
//! available; this module is the workspace's structured-serialisation
//! substrate instead. [`ToJson`] plays the role of `serde::Serialize`:
//! types build a [`Json`] tree and the writer renders it, so no caller
//! hand-formats fields. The parser exists so exporter output can be
//! validated structurally in tests (and is a full, if small, JSON reader).
//!
//! Non-finite floats have no JSON representation; the writer emits them as
//! the strings `"inf"`, `"-inf"`, and `"nan"` so output always stays valid
//! JSON (the `Counters::ratio` infinity fix rides on this).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (kept exact; counters exceed `f64` precision).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values render as strings.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// A structural failure: JSON text that does not parse, or parsed
/// output that violates an expected schema (see
/// [`crate::export::validate_chrome`]). Carries a human-readable
/// message and, for parse errors, the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    message: String,
    offset: Option<usize>,
}

impl SchemaError {
    /// A schema violation with no specific text position.
    pub fn new(message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
            offset: None,
        }
    }

    /// A parse failure at `offset` bytes into the input.
    pub fn at(offset: usize, message: impl Into<String>) -> Self {
        SchemaError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    /// The human-readable description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset of a parse failure, when known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at offset {off}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Conversion into a [`Json`] tree — the workspace's `serde::Serialize`.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Appends a key to an object (panics on non-objects — builder misuse).
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Unsigned view (accepts U64 and non-negative I64/integral F64).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// Float view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else if v.is_nan() {
                    out.push_str("\"nan\"");
                } else if *v > 0.0 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str("\"-inf\"");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text (strict enough for validation: rejects trailing
    /// garbage, unterminated strings, malformed numbers).
    pub fn parse(text: &str) -> Result<Json, SchemaError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(SchemaError::at(p.pos, "trailing bytes"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SchemaError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SchemaError::at(
                self.pos,
                format!("expected '{}'", b as char),
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, SchemaError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(SchemaError::at(self.pos, "bad literal"))
        }
    }

    fn value(&mut self) -> Result<Json, SchemaError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(SchemaError::at(self.pos, format!("unexpected {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(SchemaError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| SchemaError::at(self.pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| SchemaError::at(self.pos, e.to_string()))?,
                                16,
                            )
                            .map_err(|e| SchemaError::at(self.pos, e.to_string()))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(SchemaError::at(self.pos, format!("bad escape {other:?}")))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|e| SchemaError::at(self.pos, e.to_string()))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SchemaError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| SchemaError::at(start, format!("bad number '{text}'")))
    }

    fn array(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(SchemaError::at(
                        self.pos,
                        format!("expected , or ] got {other:?}"),
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, SchemaError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(SchemaError::at(self.pos, format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(SchemaError::at(
                        self.pos,
                        format!("expected , or }} got {other:?}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let v = Json::obj([
            ("a", Json::U64(7)),
            ("b", Json::Str("x\"y\n".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_render_as_strings() {
        assert_eq!(Json::F64(f64::INFINITY).render(), "\"inf\"");
        assert_eq!(Json::F64(f64::NEG_INFINITY).render(), "\"-inf\"");
        assert_eq!(Json::F64(f64::NAN).render(), "\"nan\"");
        // Output must stay parseable.
        Json::parse(&Json::obj([("r", f64::INFINITY)]).render()).unwrap();
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1,\"a\":2}").is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":42,\"f\":1.5,\"s\":\"hi\",\"a\":[1,2]}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn big_u64_kept_exact() {
        let n = u64::MAX;
        let text = Json::U64(n).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }
}
