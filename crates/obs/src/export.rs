//! Exporters: Chrome `trace_event` JSON and flat JSONL.
//!
//! The chrome exporter emits the JSON Object Format
//! (`{"traceEvents":[...]}`) understood by `chrome://tracing` and
//! Perfetto: duration spans as balanced `B`/`E` pairs, instants as `i`,
//! plus `M` metadata naming one process per rank and one thread per lane
//! (worker lanes, and `SM n` lanes for per-block kernel events).
//! [`validate_chrome`] is the schema check the golden-file tests (and
//! anything else) can run against exporter output.

use std::collections::{BTreeMap, BTreeSet};

use crate::event::Event;
use crate::json::{Json, SchemaError, ToJson};

/// Lane ids at or above this value are per-SM kernel tracks
/// (`SM_LANE_BASE + sm_index`); below are host/worker thread lanes.
pub const SM_LANE_BASE: u32 = 1000;

fn pid_of(event: &Event) -> u64 {
    event.rank.map(|r| r as u64 + 1).unwrap_or(0)
}

fn args_json(event: &Event) -> Option<Json> {
    if event.args.is_empty() && event.counters.is_none() {
        return None;
    }
    let mut o = Json::Obj(
        event
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), Json::from(v)))
            .collect(),
    );
    if let Some(c) = &event.counters {
        if let Json::Obj(fields) = c.to_json() {
            for (k, v) in fields {
                o.set(&k, v);
            }
        }
    }
    Some(o)
}

/// Renders events as Chrome `trace_event` JSON (object format).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out: Vec<Json> = Vec::new();

    // Metadata: name each (pid) process and (pid, tid) thread track.
    let mut pids: BTreeSet<u64> = BTreeSet::new();
    let mut tracks: BTreeSet<(u64, u64)> = BTreeSet::new();
    for e in events {
        let pid = pid_of(e);
        pids.insert(pid);
        tracks.insert((pid, e.lane as u64));
    }
    for pid in &pids {
        let name = if *pid == 0 {
            "local".to_string()
        } else {
            format!("rank {}", pid - 1)
        };
        out.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(*pid)),
            ("tid", Json::U64(0)),
            ("args", Json::obj([("name", name)])),
        ]));
    }
    for (pid, tid) in &tracks {
        let name = if *tid >= SM_LANE_BASE as u64 {
            format!("SM {}", tid - SM_LANE_BASE as u64)
        } else {
            format!("lane {tid}")
        };
        out.push(Json::obj([
            ("name", Json::Str("thread_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(*pid)),
            ("tid", Json::U64(*tid)),
            ("args", Json::obj([("name", name)])),
        ]));
    }

    for e in events {
        let pid = pid_of(e);
        let tid = e.lane as u64;
        let base = |ph: &str, ts: u64| {
            Json::obj([
                ("name", Json::Str(e.name.clone())),
                ("cat", Json::Str(e.kind.as_str().into())),
                ("ph", Json::Str(ph.into())),
                ("ts", Json::U64(ts)),
                ("pid", Json::U64(pid)),
                ("tid", Json::U64(tid)),
            ])
        };
        match e.dur_us {
            Some(dur) => {
                let mut b = base("B", e.ts_us);
                if let Some(a) = args_json(e) {
                    b.set("args", a);
                }
                out.push(b);
                out.push(base("E", e.ts_us + dur));
            }
            None => {
                let mut i = base("i", e.ts_us);
                i.set("s", "t");
                if let Some(a) = args_json(e) {
                    i.set("args", a);
                }
                out.push(i);
            }
        }
    }

    Json::obj([("traceEvents", Json::Arr(out))]).render()
}

/// Renders events as one JSON object per line.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().render());
        out.push('\n');
    }
    out
}

/// Structural summary returned by [`validate_chrome`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total `traceEvents` entries (including metadata).
    pub events: usize,
    /// Span (B/E pair) count.
    pub spans: usize,
    /// Instant event count.
    pub instants: usize,
    /// Distinct `cat` values seen on non-metadata events.
    pub categories: BTreeSet<String>,
    /// Spans carrying a hardware-counter delta (a `dram_reads` arg).
    pub counter_spans: usize,
    /// Distinct `pid`s (rank tracks).
    pub pids: BTreeSet<u64>,
}

/// Validates chrome-trace JSON text: parses it, checks every event for
/// the required `name`/`ph`/`ts`/`pid`/`tid` fields, allows only the
/// phases the exporter produces (`B`, `E`, `i`, `M`), and checks that
/// every `B` is closed by a matching `E` on the same `(pid, tid)` track
/// with non-decreasing timestamps. Returns a summary for further
/// assertions.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, SchemaError> {
    let root = Json::parse(text)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| SchemaError::new("missing traceEvents array"))?;
    let mut summary = ChromeSummary {
        events: events.len(),
        ..Default::default()
    };
    // Per-track stack of open B events: (name, ts).
    let mut open: BTreeMap<(u64, u64), Vec<(String, u64)>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .ok_or_else(|| SchemaError::new(format!("event {i}: missing {k}")))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| SchemaError::new(format!("event {i}: name not a string")))?
            .to_string();
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| SchemaError::new(format!("event {i}: ph not a string")))?;
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| SchemaError::new(format!("event {i}: pid not an integer")))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| SchemaError::new(format!("event {i}: tid not an integer")))?;
        if ph == "M" {
            continue;
        }
        summary.pids.insert(pid);
        let ts = field("ts")?
            .as_u64()
            .ok_or_else(|| SchemaError::new(format!("event {i}: ts not an unsigned integer")))?;
        if let Some(cat) = e.get("cat").and_then(Json::as_str) {
            summary.categories.insert(cat.to_string());
        } else {
            return Err(SchemaError::new(format!("event {i}: missing cat")));
        }
        let track = open.entry((pid, tid)).or_default();
        match ph {
            "B" => {
                if e.get("args").is_some_and(|a| a.get("dram_reads").is_some()) {
                    summary.counter_spans += 1;
                }
                track.push((name, ts));
            }
            "E" => {
                let (bname, bts) = track.pop().ok_or_else(|| {
                    SchemaError::new(format!("event {i}: E without open B on ({pid},{tid})"))
                })?;
                if bname != name {
                    return Err(SchemaError::new(format!(
                        "event {i}: E '{name}' closes B '{bname}' on ({pid},{tid})"
                    )));
                }
                if ts < bts {
                    return Err(SchemaError::new(format!(
                        "event {i}: span '{name}' ends before it begins"
                    )));
                }
                summary.spans += 1;
            }
            "i" => summary.instants += 1,
            other => {
                return Err(SchemaError::new(format!(
                    "event {i}: unexpected ph '{other}'"
                )))
            }
        }
    }
    for ((pid, tid), stack) in open {
        if !stack.is_empty() {
            return Err(SchemaError::new(format!(
                "unbalanced: {} open B event(s) on ({pid},{tid})",
                stack.len()
            )));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Arg, CounterDelta, EventKind};
    use crate::trace::Trace;

    fn sample_events() -> Vec<Event> {
        let t = Trace::enabled().with_rank(1);
        {
            let mut s = t.span(EventKind::Kernel, "expand");
            s.arg("blocks", Arg::U64(2));
            s.counters(CounterDelta {
                dram_reads: 9,
                ..Default::default()
            });
        }
        t.instant(EventKind::Heartbeat, "beat");
        {
            let mut s = t.span(EventKind::Level, "level 1");
            s.lane(SM_LANE_BASE + 3);
        }
        t.journal().unwrap().drain_sorted()
    }

    #[test]
    fn chrome_output_validates() {
        let text = chrome_trace(&sample_events());
        let s = validate_chrome(&text).unwrap();
        assert_eq!(s.spans, 2);
        assert_eq!(s.instants, 1);
        assert_eq!(s.counter_spans, 1);
        assert!(s.categories.contains("kernel"));
        assert!(s.categories.contains("heartbeat"));
        assert!(s.pids.contains(&2), "rank 1 maps to pid 2");
        // SM lane naming makes it into metadata.
        assert!(text.contains("\"SM 3\""));
    }

    #[test]
    fn validator_rejects_unbalanced() {
        let text = r#"{"traceEvents":[
            {"name":"x","cat":"kernel","ph":"B","ts":1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome(text)
            .unwrap_err()
            .to_string()
            .contains("unbalanced"));
        let text = r#"{"traceEvents":[
            {"name":"x","cat":"kernel","ph":"E","ts":1,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome(text)
            .unwrap_err()
            .to_string()
            .contains("E without open B"));
    }

    #[test]
    fn validator_rejects_missing_fields() {
        let text = r#"{"traceEvents":[{"name":"x","ph":"i","ts":1,"pid":0}]}"#;
        assert!(validate_chrome(text)
            .unwrap_err()
            .to_string()
            .contains("missing tid"));
    }

    #[test]
    fn jsonl_lines_parse() {
        let text = jsonl(&sample_events());
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            Json::parse(line).unwrap();
        }
    }
}
