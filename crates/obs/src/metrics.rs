//! Prometheus-style text metrics snapshot.
//!
//! A [`MetricsSnapshot`] is a flat list of `name{labels} value` samples
//! rendered in the Prometheus exposition text format. Non-finite values
//! render as `+Inf` / `-Inf` / `NaN`, which the format permits — the
//! infinity that used to corrupt JSON output is representable here.
//!
//! The renderer follows the exposition-format rules a real scraper
//! enforces: label values escape backslash, double-quote, and newline;
//! all samples of one metric family are emitted contiguously; and
//! `# HELP` / `# TYPE` appear exactly once per family, before its
//! samples. Summary families group their `quantile`-labelled samples
//! with the `_sum` / `_count` series under one `# TYPE name summary`
//! header. [`validate_exposition`] is a small scraper-side parser used
//! in tests to keep the output honest.

use std::fmt::Write as _;

/// Prometheus metric family type, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricKind {
    /// No `# TYPE` line (legacy untyped sample).
    #[default]
    Untyped,
    /// Monotonic counter.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Pre-computed quantiles with `_sum` / `_count` series.
    Summary,
}

impl MetricKind {
    fn as_str(self) -> Option<&'static str> {
        match self {
            MetricKind::Untyped => None,
            MetricKind::Counter => Some("counter"),
            MetricKind::Gauge => Some("gauge"),
            MetricKind::Summary => Some("summary"),
        }
    }
}

/// One sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`cuts_` prefixed by convention).
    pub name: String,
    /// Label pairs, rendered `{k="v",...}`.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// Optional `# HELP` line (emitted once per metric family).
    pub help: Option<&'static str>,
    /// Family type for the `# TYPE` line.
    pub kind: MetricKind,
}

/// An ordered collection of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an unlabelled sample.
    pub fn push(&mut self, name: &str, value: f64) -> &mut Self {
        self.push_full(name, &[], value, None, MetricKind::Untyped)
    }

    /// Appends an unlabelled sample with a help string.
    pub fn push_help(&mut self, name: &str, value: f64, help: &'static str) -> &mut Self {
        self.push_full(name, &[], value, Some(help), MetricKind::Untyped)
    }

    /// Appends a labelled sample.
    pub fn push_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.push_full(name, labels, value, None, MetricKind::Untyped)
    }

    /// Appends a fully-specified sample: labels, family type, and help.
    pub fn push_typed(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        kind: MetricKind,
        help: &'static str,
    ) -> &mut Self {
        self.push_full(name, labels, value, Some(help), kind)
    }

    fn push_full(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        help: Option<&'static str>,
        kind: MetricKind,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            help,
            kind,
        });
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The samples, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Appends every sample of `other`.
    pub fn extend(&mut self, other: &MetricsSnapshot) {
        self.metrics.extend(other.metrics.iter().cloned());
    }

    /// The family a sample belongs to: its name, minus a `_sum` /
    /// `_count` suffix when the base name is a declared summary (those
    /// series share the base family's `# TYPE` header).
    fn family_of(&self, m: &Metric) -> String {
        for suffix in ["_sum", "_count"] {
            if let Some(base) = m.name.strip_suffix(suffix) {
                if self
                    .metrics
                    .iter()
                    .any(|o| o.kind == MetricKind::Summary && o.name == base)
                {
                    return base.to_string();
                }
            }
        }
        m.name.clone()
    }

    /// Renders the Prometheus exposition text format. Samples are
    /// grouped by family (first-appearance order) with `# HELP` /
    /// `# TYPE` emitted once per family.
    pub fn render(&self) -> String {
        let mut families: Vec<String> = Vec::new();
        for m in &self.metrics {
            let fam = self.family_of(m);
            if !families.contains(&fam) {
                families.push(fam);
            }
        }
        let mut out = String::new();
        for fam in &families {
            let members: Vec<&Metric> = self
                .metrics
                .iter()
                .filter(|m| &self.family_of(m) == fam)
                .collect();
            if let Some(h) = members.iter().find_map(|m| m.help) {
                let _ = writeln!(out, "# HELP {fam} {}", escape_help(h));
            }
            if let Some(t) = members.iter().find_map(|m| m.kind.as_str()) {
                let _ = writeln!(out, "# TYPE {fam} {t}");
            }
            for m in members {
                out.push_str(&m.name);
                if !m.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in m.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
                    }
                    out.push('}');
                }
                out.push(' ');
                out.push_str(&render_value(m.value));
                out.push('\n');
            }
        }
        out
    }
}

/// Label-value escaping per the exposition format: backslash, quote,
/// and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// HELP-text escaping: backslash and newline (quotes are legal there).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A scraper-side structural check of exposition text. Verifies line
/// grammar (comment lines are well-formed `# HELP` / `# TYPE`, sample
/// lines parse as `name{labels} value`), that label values contain no
/// raw newline/quote breakage, that each family's `# HELP` / `# TYPE`
/// appears at most once and before its samples, and that families are
/// not interleaved. Returns the number of sample lines.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut seen_type: Vec<String> = Vec::new();
    let mut seen_help: Vec<String> = Vec::new();
    let mut closed: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    let mut samples = 0usize;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kw, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {ln}: bare comment keyword"))?;
            let name = rest.split(' ').next().unwrap_or("").to_string();
            if name.is_empty() || !is_metric_name(&name) {
                return Err(format!("line {ln}: bad metric name in comment"));
            }
            let seen = match kw {
                "HELP" => &mut seen_help,
                "TYPE" => {
                    if kw == "TYPE" {
                        let ty = rest.split(' ').nth(1).unwrap_or("");
                        if !matches!(
                            ty,
                            "counter" | "gauge" | "summary" | "histogram" | "untyped"
                        ) {
                            return Err(format!("line {ln}: bad TYPE '{ty}'"));
                        }
                    }
                    &mut seen_type
                }
                other => return Err(format!("line {ln}: unknown comment keyword '{other}'")),
            };
            if seen.contains(&name) {
                return Err(format!("line {ln}: duplicate # {kw} for '{name}'"));
            }
            if closed.contains(&name) {
                return Err(format!("line {ln}: # {kw} after '{name}' samples closed"));
            }
            seen.push(name.clone());
            advance_family(&mut current, &mut closed, &name, ln)?;
            continue;
        }
        let name = parse_sample_line(line).map_err(|e| format!("line {ln}: {e}"))?;
        let family = family_for_validation(&name, &seen_type);
        advance_family(&mut current, &mut closed, &family, ln)?;
        samples += 1;
    }
    Ok(samples)
}

fn advance_family(
    current: &mut Option<String>,
    closed: &mut Vec<String>,
    family: &str,
    ln: usize,
) -> Result<(), String> {
    if current.as_deref() != Some(family) {
        if closed.contains(&family.to_string()) {
            return Err(format!("line {ln}: family '{family}' interleaved"));
        }
        if let Some(prev) = current.take() {
            closed.push(prev);
        }
        *current = Some(family.to_string());
    }
    Ok(())
}

fn family_for_validation(name: &str, summaries: &[String]) -> String {
    for suffix in ["_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if summaries.iter().any(|s| s == base) {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses one sample line, returning the metric name.
fn parse_sample_line(line: &str) -> Result<String, String> {
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            let labels = &line[brace + 1..close];
            validate_labels(labels)?;
            (&line[..brace], &line[close + 1..])
        }
        None => {
            let sp = line.find(' ').ok_or("no value")?;
            (&line[..sp], &line[sp..])
        }
    };
    if !is_metric_name(name_part) {
        return Err(format!("bad metric name '{name_part}'"));
    }
    let value = rest.trim();
    if value.is_empty() {
        return Err("no value".into());
    }
    let v = value.split(' ').next().unwrap();
    if v.parse::<f64>().is_err() && !matches!(v, "+Inf" | "-Inf" | "NaN") {
        return Err(format!("bad value '{v}'"));
    }
    Ok(name_part.to_string())
}

fn validate_labels(labels: &str) -> Result<(), String> {
    let mut rest = labels;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without '='")?;
        let key = &rest[..eq];
        if !is_metric_name(key) {
            return Err(format!("bad label name '{key}'"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err("label value not quoted".into());
        }
        rest = &rest[1..];
        // Scan to the closing quote, honouring backslash escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape '\\{c}' in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or("unterminated label value")?;
        rest = &rest[end + 1..];
        match rest.chars().next() {
            None => break,
            Some(',') => rest = &rest[1..],
            Some(c) => return Err(format!("unexpected '{c}' after label value")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_format() {
        let mut s = MetricsSnapshot::new();
        s.push_help("cuts_matches_total", 24.0, "embeddings found");
        s.push_labeled("cuts_rank_busy_millis", &[("rank", "0")], 1.5);
        s.push_labeled("cuts_rank_busy_millis", &[("rank", "1")], 2.0);
        let text = s.render();
        assert!(text.contains("# HELP cuts_matches_total embeddings found"));
        assert!(text.contains("cuts_matches_total 24"));
        assert!(text.contains("cuts_rank_busy_millis{rank=\"0\"} 1.5"));
        assert!(text.contains("cuts_rank_busy_millis{rank=\"1\"} 2"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn nonfinite_values_are_representable() {
        let mut s = MetricsSnapshot::new();
        s.push("cuts_ratio", f64::INFINITY);
        s.push("cuts_nan", f64::NAN);
        let text = s.render();
        assert!(text.contains("cuts_ratio +Inf"));
        assert!(text.contains("cuts_nan NaN"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_escaped() {
        let mut s = MetricsSnapshot::new();
        s.push_labeled("m", &[("q", "say \"hi\"")], 1.0);
        s.push_labeled("m", &[("q", "back\\slash and\nnewline")], 2.0);
        let text = s.render();
        assert!(text.contains("q=\"say \\\"hi\\\"\""));
        assert!(text.contains("q=\"back\\\\slash and\\nnewline\""));
        // The raw newline must not split the sample line.
        assert_eq!(text.lines().count(), 2);
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn families_grouped_with_single_help_and_type() {
        let mut s = MetricsSnapshot::new();
        s.push_typed("a_total", &[], 1.0, MetricKind::Counter, "a help");
        s.push_labeled("b", &[("x", "1")], 2.0);
        // Same family pushed non-contiguously: render must regroup it.
        s.push_typed("a_total", &[("k", "v")], 3.0, MetricKind::Counter, "a help");
        let text = s.render();
        assert_eq!(text.matches("# HELP a_total").count(), 1);
        assert_eq!(text.matches("# TYPE a_total counter").count(), 1);
        let lines: Vec<&str> = text.lines().collect();
        let a_lines: Vec<usize> = lines
            .iter()
            .enumerate()
            .filter(|(_, l)| l.starts_with("a_total"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(a_lines, vec![2, 3], "family samples stay contiguous");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn summary_family_covers_sum_and_count() {
        let mut s = MetricsSnapshot::new();
        s.push_typed(
            "lat_us",
            &[("quantile", "0.5")],
            10.0,
            MetricKind::Summary,
            "latency",
        );
        s.push_typed("lat_us_sum", &[], 100.0, MetricKind::Summary, "latency");
        s.push_typed("lat_us_count", &[], 9.0, MetricKind::Summary, "latency");
        let text = s.render();
        assert_eq!(text.matches("# TYPE").count(), 1);
        assert!(text.contains("# TYPE lat_us summary"));
        assert!(text.contains("lat_us_sum 100"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validator_rejects_breakage() {
        assert!(validate_exposition("1bad_name 3\n").is_err());
        assert!(validate_exposition("m{k=\"unterminated} 3\n").is_err());
        assert!(validate_exposition("m notanumber\n").is_err());
        assert!(validate_exposition("# TYPE m counter\n# TYPE m counter\nm 1\n").is_err());
        // Interleaved families.
        assert!(validate_exposition("a 1\nb 2\na 3\n").is_err());
        // TYPE after samples.
        assert!(validate_exposition("m 1\nx 1\n# TYPE m counter\nm 2\n").is_err());
    }
}
