//! Prometheus-style text metrics snapshot.
//!
//! A [`MetricsSnapshot`] is a flat list of `name{labels} value` samples
//! rendered in the Prometheus exposition text format. Non-finite values
//! render as `+Inf` / `-Inf` / `NaN`, which the format permits — the
//! infinity that used to corrupt JSON output is representable here.

use std::fmt::Write as _;

/// One sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`cuts_` prefixed by convention).
    pub name: String,
    /// Label pairs, rendered `{k="v",...}`.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// Optional `# HELP` line (emitted once per metric name).
    pub help: Option<&'static str>,
}

/// An ordered collection of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    metrics: Vec<Metric>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an unlabelled sample.
    pub fn push(&mut self, name: &str, value: f64) -> &mut Self {
        self.push_full(name, &[], value, None)
    }

    /// Appends an unlabelled sample with a help string.
    pub fn push_help(&mut self, name: &str, value: f64, help: &'static str) -> &mut Self {
        self.push_full(name, &[], value, Some(help))
    }

    /// Appends a labelled sample.
    pub fn push_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        self.push_full(name, labels, value, None)
    }

    fn push_full(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
        help: Option<&'static str>,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
            help,
        });
        self
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no samples were pushed.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The samples, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Renders the Prometheus exposition text format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_help: Option<&str> = None;
        for m in &self.metrics {
            if let Some(h) = m.help {
                if last_help != Some(m.name.as_str()) {
                    let _ = writeln!(out, "# HELP {} {}", m.name, h);
                }
            }
            last_help = Some(m.name.as_str());
            out.push_str(&m.name);
            if !m.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in m.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                    let _ = write!(out, "{k}=\"{escaped}\"");
                }
                out.push('}');
            }
            out.push(' ');
            out.push_str(&render_value(m.value));
            out.push('\n');
        }
        out
    }
}

fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_format() {
        let mut s = MetricsSnapshot::new();
        s.push_help("cuts_matches_total", 24.0, "embeddings found");
        s.push_labeled("cuts_rank_busy_millis", &[("rank", "0")], 1.5);
        s.push_labeled("cuts_rank_busy_millis", &[("rank", "1")], 2.0);
        let text = s.render();
        assert!(text.contains("# HELP cuts_matches_total embeddings found"));
        assert!(text.contains("cuts_matches_total 24"));
        assert!(text.contains("cuts_rank_busy_millis{rank=\"0\"} 1.5"));
        assert!(text.contains("cuts_rank_busy_millis{rank=\"1\"} 2"));
    }

    #[test]
    fn nonfinite_values_are_representable() {
        let mut s = MetricsSnapshot::new();
        s.push("cuts_ratio", f64::INFINITY);
        s.push("cuts_nan", f64::NAN);
        let text = s.render();
        assert!(text.contains("cuts_ratio +Inf"));
        assert!(text.contains("cuts_nan NaN"));
    }

    #[test]
    fn label_values_escaped() {
        let mut s = MetricsSnapshot::new();
        s.push_labeled("m", &[("q", "say \"hi\"")], 1.0);
        assert!(s.render().contains("q=\"say \\\"hi\\\"\""));
    }
}
