//! The lock-sharded event journal.
//!
//! Concurrency design: events are appended to one of [`SHARDS`] mutexed
//! vectors, chosen by the calling thread's lane, so unrelated threads
//! (rayon kernel blocks, rank worker threads) almost never contend on a
//! lock. A thread's events always land in *its* shard in program order;
//! a global `seq` (fetch-add) plus the monotonic timestamp gives a total
//! order at drain time. By default nothing is sampled or dropped — the
//! journal is lossless by construction, which the stress test asserts.
//! A journal built with [`Journal::with_capacity`] trades losslessness
//! for bounded memory: once the cap is hit, further events are counted
//! in [`Journal::dropped`] instead of stored, so a long `--trace-out`
//! run degrades loudly rather than growing without bound.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// Number of lock shards. A power of two comfortably above the worker
/// thread counts in play (ranks × rayon pool).
pub const SHARDS: usize = 16;

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable lane id (assigned on first use,
/// process-wide unique).
pub fn lane() -> u32 {
    LANE.with(|l| *l)
}

/// A lossless, lock-sharded event recorder shared by every instrumented
/// subsystem of one run.
pub struct Journal {
    shards: Vec<Mutex<Vec<Event>>>,
    seq: AtomicU64,
    epoch: Instant,
    /// Stored-event cap; `usize::MAX` means unbounded (lossless).
    cap: usize,
    /// Events accepted against the cap since the last drain.
    accepted: AtomicU64,
    /// Events discarded because the cap was hit (cumulative — survives
    /// drains so exporters can warn loudly).
    dropped: AtomicU64,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty, unbounded (lossless) journal; its epoch (timestamp
    /// zero) is now.
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// An empty journal that stores at most `cap` events between
    /// drains; beyond that, events are dropped and counted in
    /// [`Journal::dropped`].
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
            cap,
            accepted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// The stored-event cap, when bounded.
    pub fn capacity(&self) -> Option<usize> {
        (self.cap != usize::MAX).then_some(self.cap)
    }

    /// Events dropped because the cap was hit (0 on unbounded journals).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Microseconds since the journal epoch (monotonic).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records an event. The journal assigns the global sequence number;
    /// everything else is the caller's. On a bounded journal that has
    /// hit its cap, the event is dropped and counted instead.
    pub fn record(&self, mut event: Event) {
        if self.cap != usize::MAX
            && self.accepted.fetch_add(1, Ordering::Relaxed) >= self.cap as u64
        {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = (lane() as usize) % SHARDS;
        self.shards[shard].lock().unwrap().push(event);
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every event, ordered by `(ts_us, seq)`.
    /// Resets the capacity budget (recording resumes on bounded
    /// journals); the dropped count is cumulative and survives.
    pub fn drain_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.lock().unwrap()))
            .collect();
        self.accepted.store(0, Ordering::Relaxed);
        all.sort_by_key(|e| (e.ts_us, e.seq));
        all
    }

    /// Clones every event (journal keeps recording), ordered by
    /// `(ts_us, seq)`.
    pub fn snapshot_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().clone())
            .collect();
        all.sort_by_key(|e| (e.ts_us, e.seq));
        all
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(journal: &Journal, name: &str) -> Event {
        Event {
            seq: 0,
            ts_us: journal.now_us(),
            dur_us: None,
            kind: EventKind::Run,
            name: name.into(),
            rank: None,
            lane: lane(),
            args: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn record_and_drain() {
        let j = Journal::new();
        assert!(j.is_empty());
        j.record(ev(&j, "a"));
        j.record(ev(&j, "b"));
        assert_eq!(j.len(), 2);
        let drained = j.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert!(j.is_empty());
        // Same-thread order is preserved through seq tie-break.
        assert_eq!(drained[0].name, "a");
        assert_eq!(drained[1].name, "b");
        assert!(drained[0].seq < drained[1].seq);
    }

    #[test]
    fn snapshot_keeps_events() {
        let j = Journal::new();
        j.record(ev(&j, "x"));
        assert_eq!(j.snapshot_sorted().len(), 1);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn capacity_cap_drops_loudly() {
        let j = Journal::with_capacity(2);
        assert_eq!(j.capacity(), Some(2));
        for i in 0..5 {
            j.record(ev(&j, &format!("e{i}")));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        // Draining frees the budget; the dropped count is cumulative.
        let drained = j.drain_sorted();
        assert_eq!(drained.len(), 2);
        j.record(ev(&j, "after"));
        assert_eq!(j.len(), 1);
        assert_eq!(j.dropped(), 3);
        // Unbounded journals never drop.
        let unbounded = Journal::new();
        assert_eq!(unbounded.capacity(), None);
        for i in 0..100 {
            unbounded.record(ev(&unbounded, &format!("u{i}")));
        }
        assert_eq!(unbounded.len(), 100);
        assert_eq!(unbounded.dropped(), 0);
    }

    #[test]
    fn lanes_are_stable_per_thread() {
        let a = lane();
        let b = lane();
        assert_eq!(a, b);
        let other = std::thread::spawn(lane).join().unwrap();
        assert_ne!(a, other);
    }
}
