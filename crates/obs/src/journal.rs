//! The lock-sharded event journal.
//!
//! Concurrency design: events are appended to one of [`SHARDS`] mutexed
//! vectors, chosen by the calling thread's lane, so unrelated threads
//! (rayon kernel blocks, rank worker threads) almost never contend on a
//! lock. A thread's events always land in *its* shard in program order;
//! a global `seq` (fetch-add) plus the monotonic timestamp gives a total
//! order at drain time. Nothing is sampled or dropped — the journal is
//! lossless by construction, which the stress test asserts.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::event::Event;

/// Number of lock shards. A power of two comfortably above the worker
/// thread counts in play (ranks × rayon pool).
pub const SHARDS: usize = 16;

static NEXT_LANE: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's stable lane id (assigned on first use,
/// process-wide unique).
pub fn lane() -> u32 {
    LANE.with(|l| *l)
}

/// A lossless, lock-sharded event recorder shared by every instrumented
/// subsystem of one run.
pub struct Journal {
    shards: Vec<Mutex<Vec<Event>>>,
    seq: AtomicU64,
    epoch: Instant,
}

impl Default for Journal {
    fn default() -> Self {
        Self::new()
    }
}

impl Journal {
    /// An empty journal; its epoch (timestamp zero) is now.
    pub fn new() -> Self {
        Journal {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since the journal epoch (monotonic).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records an event. The journal assigns the global sequence number;
    /// everything else is the caller's.
    pub fn record(&self, mut event: Event) {
        event.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let shard = (lane() as usize) % SHARDS;
        self.shards[shard].lock().unwrap().push(event);
    }

    /// Total events recorded so far.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns every event, ordered by `(ts_us, seq)`.
    pub fn drain_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.lock().unwrap()))
            .collect();
        all.sort_by_key(|e| (e.ts_us, e.seq));
        all
    }

    /// Clones every event (journal keeps recording), ordered by
    /// `(ts_us, seq)`.
    pub fn snapshot_sorted(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().clone())
            .collect();
        all.sort_by_key(|e| (e.ts_us, e.seq));
        all
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(journal: &Journal, name: &str) -> Event {
        Event {
            seq: 0,
            ts_us: journal.now_us(),
            dur_us: None,
            kind: EventKind::Run,
            name: name.into(),
            rank: None,
            lane: lane(),
            args: Vec::new(),
            counters: None,
        }
    }

    #[test]
    fn record_and_drain() {
        let j = Journal::new();
        assert!(j.is_empty());
        j.record(ev(&j, "a"));
        j.record(ev(&j, "b"));
        assert_eq!(j.len(), 2);
        let drained = j.drain_sorted();
        assert_eq!(drained.len(), 2);
        assert!(j.is_empty());
        // Same-thread order is preserved through seq tie-break.
        assert_eq!(drained[0].name, "a");
        assert_eq!(drained[1].name, "b");
        assert!(drained[0].seq < drained[1].seq);
    }

    #[test]
    fn snapshot_keeps_events() {
        let j = Journal::new();
        j.record(ev(&j, "x"));
        assert_eq!(j.snapshot_sorted().len(), 1);
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn lanes_are_stable_per_thread() {
        let a = lane();
        let b = lane();
        assert_eq!(a, b);
        let other = std::thread::spawn(lane).join().unwrap();
        assert_ne!(a, other);
    }
}
