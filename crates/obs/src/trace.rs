//! The emission handle: [`Trace`] and the RAII [`Span`] guard.
//!
//! A `Trace` is a cheap, cloneable handle that is either **disabled**
//! (the default — it holds no journal, and every emission method returns
//! immediately without allocating) or **enabled** (it holds an
//! `Arc<Journal>` and stamps events with an optional rank tag). The
//! disabled fast path is a single `Option` check; names and argument
//! vectors are only materialised on the enabled branch, so instrumented
//! hot paths cost nothing when tracing is off — a property the overhead
//! test in `cuts-dist/tests/trace_export.rs` pins down.

use std::sync::Arc;

use crate::event::{Arg, CounterDelta, Event, EventKind};
use crate::journal::{lane, Journal};

/// Tracing configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit one kernel span per simulated thread block, on a per-SM lane
    /// (`chrome://tracing` shows one track per SM). Off by default: grids
    /// can be large and this multiplies event volume by the block count.
    pub per_block: bool,
    /// Bound the journal to this many stored events (see
    /// [`Journal::with_capacity`]); `None` (the default) keeps the
    /// journal lossless and unbounded.
    pub journal_capacity: Option<usize>,
}

/// A cloneable tracing handle; disabled unless built via
/// [`Trace::enabled`] / [`Trace::with_config`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    journal: Option<Arc<Journal>>,
    rank: Option<u32>,
    config: TraceConfig,
}

impl Trace {
    /// The no-op handle (same as `Trace::default()`).
    pub fn disabled() -> Self {
        Trace::default()
    }

    /// A recording handle over a fresh journal.
    pub fn enabled() -> Self {
        Self::with_config(TraceConfig::default())
    }

    /// A recording handle with explicit configuration.
    pub fn with_config(config: TraceConfig) -> Self {
        let journal = match config.journal_capacity {
            Some(cap) => Journal::with_capacity(cap),
            None => Journal::new(),
        };
        Trace {
            journal: Some(Arc::new(journal)),
            rank: None,
            config,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// The tracing configuration.
    pub fn config(&self) -> TraceConfig {
        self.config
    }

    /// The underlying journal, when enabled.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.journal.as_ref()
    }

    /// A handle stamping every event with `rank` (shares the journal).
    pub fn with_rank(&self, rank: usize) -> Trace {
        Trace {
            journal: self.journal.clone(),
            rank: Some(rank as u32),
            config: self.config,
        }
    }

    /// The rank tag, if set.
    pub fn rank(&self) -> Option<u32> {
        self.rank
    }

    /// Records an instant event.
    pub fn instant(&self, kind: EventKind, name: &str) {
        self.instant_with(kind, name, &[]);
    }

    /// Records an instant event with arguments. `args` is borrowed so the
    /// disabled path copies nothing.
    pub fn instant_with(&self, kind: EventKind, name: &str, args: &[(&'static str, Arg)]) {
        let Some(journal) = &self.journal else {
            return;
        };
        journal.record(Event {
            seq: 0,
            ts_us: journal.now_us(),
            dur_us: None,
            kind,
            name: name.to_string(),
            rank: self.rank,
            lane: lane(),
            args: args.to_vec(),
            counters: None,
        });
    }

    /// Opens a span; the returned guard records one event (with duration)
    /// when finished or dropped. Disabled traces return a no-op guard.
    pub fn span(&self, kind: EventKind, name: &str) -> Span {
        let Some(journal) = &self.journal else {
            return Span { inner: None };
        };
        Span {
            inner: Some(SpanInner {
                journal: Arc::clone(journal),
                start_us: journal.now_us(),
                kind,
                name: name.to_string(),
                rank: self.rank,
                lane_override: None,
                args: Vec::new(),
                counters: None,
            }),
        }
    }
}

struct SpanInner {
    journal: Arc<Journal>,
    start_us: u64,
    kind: EventKind,
    name: String,
    rank: Option<u32>,
    lane_override: Option<u32>,
    args: Vec<(&'static str, Arg)>,
    counters: Option<CounterDelta>,
}

/// RAII span guard: emits a single duration event on drop (or explicit
/// [`Span::finish`]). All mutators are no-ops on a disabled guard.
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Whether this guard will record an event (false on disabled traces).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an argument.
    pub fn arg(&mut self, key: &'static str, value: Arg) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key, value));
        }
    }

    /// Attaches (or replaces) the span's hardware-counter delta.
    pub fn counters(&mut self, delta: CounterDelta) {
        if let Some(inner) = &mut self.inner {
            inner.counters = Some(delta);
        }
    }

    /// Overrides the display lane (per-SM kernel tracks).
    pub fn lane(&mut self, lane: u32) {
        if let Some(inner) = &mut self.inner {
            inner.lane_override = Some(lane);
        }
    }

    /// Ends the span now (drop does the same).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = inner.journal.now_us();
        inner.journal.record(Event {
            seq: 0,
            ts_us: inner.start_us,
            dur_us: Some(end.saturating_sub(inner.start_us)),
            kind: inner.kind,
            name: inner.name,
            rank: inner.rank,
            lane: inner.lane_override.unwrap_or_else(lane),
            args: inner.args,
            counters: inner.counters,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.is_enabled());
        assert!(t.journal().is_none());
        t.instant(EventKind::Heartbeat, "beat");
        let mut s = t.span(EventKind::Run, "run");
        assert!(!s.is_recording());
        s.arg("k", Arg::U64(1));
        s.counters(CounterDelta::default());
        s.finish();
        // Nothing observable happened; there is no journal to inspect,
        // which is precisely the zero-allocation guarantee.
    }

    #[test]
    fn span_records_duration_and_payload() {
        let t = Trace::enabled();
        {
            let mut s = t.span(EventKind::Kernel, "expand");
            s.arg("blocks", Arg::U64(4));
            s.counters(CounterDelta {
                atomics: 2,
                ..Default::default()
            });
        }
        let events = t.journal().unwrap().drain_sorted();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, EventKind::Kernel);
        assert_eq!(e.name, "expand");
        assert!(e.dur_us.is_some());
        assert_eq!(e.counters.unwrap().atomics, 2);
        assert!(matches!(e.arg("blocks"), Some(Arg::U64(4))));
    }

    #[test]
    fn rank_tag_propagates() {
        let t = Trace::enabled();
        let r2 = t.with_rank(2);
        r2.instant(EventKind::Heartbeat, "beat");
        t.instant(EventKind::Heartbeat, "beat");
        let events = t.journal().unwrap().drain_sorted();
        assert_eq!(events.len(), 2, "rank handle shares the journal");
        assert!(events.iter().any(|e| e.rank == Some(2)));
        assert!(events.iter().any(|e| e.rank.is_none()));
    }

    #[test]
    fn lane_override_applies() {
        let t = Trace::enabled();
        {
            let mut s = t.span(EventKind::Kernel, "block");
            s.lane(1007);
        }
        let events = t.journal().unwrap().drain_sorted();
        assert_eq!(events[0].lane, 1007);
    }
}
