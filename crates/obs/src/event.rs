//! Typed events: what the journal records.

use crate::json::{Json, ToJson};

/// Event taxonomy. One variant per subsystem concern; exporters use the
/// lowercase name as the chrome-trace category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// A device kernel launch (grid-level, or per-SM when per-block
    /// tracing is on).
    Kernel,
    /// One BFS level expansion step of the search.
    Level,
    /// Distributed chunk lifecycle: assign / process / commit / duplicate /
    /// reclaim.
    Chunk,
    /// Work donation between ranks (send and receive sides).
    Donation,
    /// Buffer-pool activity: hit / miss.
    Pool,
    /// Plan-cache activity: hit / build.
    Plan,
    /// Trie lifecycle: budget sizing, spill into chunked BFS-DFS.
    Trie,
    /// Liveness heartbeat broadcast.
    Heartbeat,
    /// An injected fault firing.
    Fault,
    /// A whole engine run (top-level span).
    Run,
    /// Scheduler job lifecycle: submit / admit / defer / steal / complete.
    Job,
    /// Plan-time kernel-policy decisions: per-level micro-kernel choice
    /// and the signature-prefilter verdict.
    Policy,
    /// Snapshot container activity: save / load of warm-start artifacts.
    Snapshot,
    /// Arena-slab allocator activity: carve / acquire / release /
    /// chain-grow / high-water.
    Arena,
    /// Batch-dynamic lifecycle: graph edge-batch application, dirty-
    /// subtree release, and per-subscription match-delta fan-out.
    Batch,
}

impl EventKind {
    /// Every kind, for exhaustive reporting.
    pub const ALL: [EventKind; 15] = [
        EventKind::Kernel,
        EventKind::Level,
        EventKind::Chunk,
        EventKind::Donation,
        EventKind::Pool,
        EventKind::Plan,
        EventKind::Trie,
        EventKind::Heartbeat,
        EventKind::Fault,
        EventKind::Run,
        EventKind::Job,
        EventKind::Policy,
        EventKind::Snapshot,
        EventKind::Arena,
        EventKind::Batch,
    ];

    /// Stable lowercase name (chrome-trace `cat`, JSONL `kind`).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Kernel => "kernel",
            EventKind::Level => "level",
            EventKind::Chunk => "chunk",
            EventKind::Donation => "donation",
            EventKind::Pool => "pool",
            EventKind::Plan => "plan",
            EventKind::Trie => "trie",
            EventKind::Heartbeat => "heartbeat",
            EventKind::Fault => "fault",
            EventKind::Run => "run",
            EventKind::Job => "job",
            EventKind::Policy => "policy",
            EventKind::Snapshot => "snapshot",
            EventKind::Arena => "arena",
            EventKind::Batch => "batch",
        }
    }
}

/// An event argument value. Kept small; string arguments allocate, so hot
/// paths should prefer numeric args.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String (allocates — avoid on hot paths).
    Str(String),
}

impl From<&Arg> for Json {
    fn from(a: &Arg) -> Json {
        match a {
            Arg::U64(v) => Json::U64(*v),
            Arg::I64(v) => Json::I64(*v),
            Arg::F64(v) => Json::F64(*v),
            Arg::Str(s) => Json::Str(s.clone()),
        }
    }
}

/// A hardware-counter delta attached to a span: the mirror of
/// `cuts_gpu_sim::Counters`, duplicated here so the observability crate
/// stays at the bottom of the dependency graph (gpu-sim converts via
/// `From<Counters>`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CounterDelta {
    /// Words read from global memory.
    pub dram_reads: u64,
    /// Words written to global memory.
    pub dram_writes: u64,
    /// Words read from shared memory.
    pub shmem_reads: u64,
    /// Words written to shared memory.
    pub shmem_writes: u64,
    /// Global atomics.
    pub atomics: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Warp-divergent branches.
    pub divergent_branches: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
}

impl CounterDelta {
    /// True when every field is zero.
    pub fn is_zero(&self) -> bool {
        *self == CounterDelta::default()
    }
}

impl ToJson for CounterDelta {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dram_reads", self.dram_reads),
            ("dram_writes", self.dram_writes),
            ("shmem_reads", self.shmem_reads),
            ("shmem_writes", self.shmem_writes),
            ("atomics", self.atomics),
            ("instructions", self.instructions),
            ("divergent_branches", self.divergent_branches),
            ("kernel_launches", self.kernel_launches),
        ])
    }
}

/// One recorded event. Spans carry `dur_us`; instants do not.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global insertion sequence (total order tie-breaker).
    pub seq: u64,
    /// Microseconds since the journal's epoch.
    pub ts_us: u64,
    /// Span duration; `None` marks an instant event.
    pub dur_us: Option<u64>,
    /// Taxonomy bucket.
    pub kind: EventKind,
    /// Human-readable name (e.g. `"expand"`, `"level 3"`, `"commit"`).
    pub name: String,
    /// Distributed rank, when known.
    pub rank: Option<u32>,
    /// Display track within the rank (thread lane, or SM lane for
    /// per-block kernel events).
    pub lane: u32,
    /// Structured key/value arguments.
    pub args: Vec<(&'static str, Arg)>,
    /// Hardware-counter delta covered by this span.
    pub counters: Option<CounterDelta>,
}

impl Event {
    /// The event's argument by key.
    pub fn arg(&self, key: &str) -> Option<&Arg> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("seq", Json::U64(self.seq)),
            ("ts_us", Json::U64(self.ts_us)),
            ("kind", Json::Str(self.kind.as_str().into())),
            ("name", Json::Str(self.name.clone())),
            ("lane", Json::U64(self.lane as u64)),
        ]);
        if let Some(d) = self.dur_us {
            o.set("dur_us", d);
        }
        if let Some(r) = self.rank {
            o.set("rank", r);
        }
        if !self.args.is_empty() {
            o.set(
                "args",
                Json::Obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::from(v)))
                        .collect(),
                ),
            );
        }
        if let Some(c) = &self.counters {
            o.set("counters", c.to_json());
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_unique() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::ALL.len());
    }

    #[test]
    fn event_json_shape() {
        let e = Event {
            seq: 1,
            ts_us: 10,
            dur_us: Some(5),
            kind: EventKind::Kernel,
            name: "expand".into(),
            rank: Some(2),
            lane: 3,
            args: vec![("blocks", Arg::U64(8))],
            counters: Some(CounterDelta {
                dram_reads: 4,
                ..Default::default()
            }),
        };
        let j = e.to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("kernel"));
        assert_eq!(j.get("dur_us").unwrap().as_u64(), Some(5));
        assert_eq!(
            j.get("args").unwrap().get("blocks").unwrap().as_u64(),
            Some(8)
        );
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("dram_reads")
                .unwrap()
                .as_u64(),
            Some(4)
        );
        // Renders to valid JSON.
        crate::json::Json::parse(&j.render()).unwrap();
    }
}
