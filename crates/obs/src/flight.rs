//! The crash flight recorder: a bounded, lossy, always-on ring of typed
//! events, dumped to a post-mortem file when something dies.
//!
//! The journal is lossless and opt-in; the flight recorder is the
//! opposite trade: it records *always* (even with tracing off), holds
//! only the last [`FLIGHT_CAPACITY`] events per shard (overwrite-oldest),
//! and its events are fixed-size — no allocation on the record path, so
//! it is safe on serving hot paths. When a worker panics, a rank dies,
//! or an error escapes `cuts serve`, [`postmortem`] writes the rings to
//! a JSON file so the first production failure is debuggable without a
//! re-run under `--trace-out`.
//!
//! Shards are keyed by the recording thread's [`lane`], so the dump
//! preserves per-lane program order and a reader can ask "what were the
//! last events on the lane/rank that failed".

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::journal::lane;
use crate::json::{Json, SchemaError, ToJson};

/// Ring shards (threads map in by `lane() % FLIGHT_SHARDS`).
pub const FLIGHT_SHARDS: usize = 16;

/// Events retained per shard before overwrite-oldest kicks in.
pub const FLIGHT_CAPACITY: usize = 512;

/// What happened. One variant per serving-critical lifecycle point;
/// coarse by design — the journal carries the full-fidelity story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightCode {
    /// Scheduler accepted a job into the pending queue (`a` = job id).
    JobSubmit,
    /// Job admitted to a device lane (`a` = job id, `b` = device).
    JobAdmit,
    /// Job deferred by the admission ledger (`a` = job id, `b` = backoff µs).
    JobDefer,
    /// Job stolen across lanes (`a` = job id, `b` = thief lane).
    JobSteal,
    /// Job finished cleanly (`a` = job id, `b` = exec µs).
    JobComplete,
    /// Job finished with an error (`a` = job id).
    JobFail,
    /// In-place trie growth denied by the ledger (`a` = job id,
    /// `b` = target entries).
    GrowthDenied,
    /// A deadline-carrying job missed it (`a` = job id, `b` = overrun µs).
    DeadlineMiss,
    /// Device kernel launch retired (`a` = blocks, `b` = wall µs).
    KernelLaunch,
    /// An engine run started (`a` = rank or 0).
    RunStart,
    /// An engine run ended (`a` = matches).
    RunEnd,
    /// Distributed chunk committed (`a` = chunk id, `b` = matches).
    ChunkCommit,
    /// Chunk reclaimed from a dead or unresponsive rank (`a` = chunk id,
    /// `b` = dead rank).
    ChunkReclaim,
    /// Work donation (`a` = chunk id, `b` = peer rank).
    Donation,
    /// Liveness heartbeat.
    Heartbeat,
    /// An injected fault fired (`a` = fault-specific).
    Fault,
    /// A rank was declared dead (`a` = rank).
    RankDead,
    /// A scheduler-level error (`a` = job id when known).
    SchedErr,
    /// An error escaped the serving loop.
    ServeErr,
    /// Trie arena carved or grown (`a` = words).
    ArenaGrow,
    /// Whole job migrated between serving ranks (`a` = job id,
    /// `b` = destination rank).
    JobMigrate,
    /// Job re-admitted from a dead rank's ledger entry (`a` = job id,
    /// `b` = claiming rank).
    JobReadmit,
}

impl FlightCode {
    /// Every code, for exhaustive reporting.
    pub const ALL: [FlightCode; 22] = [
        FlightCode::JobSubmit,
        FlightCode::JobAdmit,
        FlightCode::JobDefer,
        FlightCode::JobSteal,
        FlightCode::JobComplete,
        FlightCode::JobFail,
        FlightCode::GrowthDenied,
        FlightCode::DeadlineMiss,
        FlightCode::KernelLaunch,
        FlightCode::RunStart,
        FlightCode::RunEnd,
        FlightCode::ChunkCommit,
        FlightCode::ChunkReclaim,
        FlightCode::Donation,
        FlightCode::Heartbeat,
        FlightCode::Fault,
        FlightCode::RankDead,
        FlightCode::SchedErr,
        FlightCode::ServeErr,
        FlightCode::ArenaGrow,
        FlightCode::JobMigrate,
        FlightCode::JobReadmit,
    ];

    /// Stable snake_case name used in dump files.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightCode::JobSubmit => "job_submit",
            FlightCode::JobAdmit => "job_admit",
            FlightCode::JobDefer => "job_defer",
            FlightCode::JobSteal => "job_steal",
            FlightCode::JobComplete => "job_complete",
            FlightCode::JobFail => "job_fail",
            FlightCode::GrowthDenied => "growth_denied",
            FlightCode::DeadlineMiss => "deadline_miss",
            FlightCode::KernelLaunch => "kernel_launch",
            FlightCode::RunStart => "run_start",
            FlightCode::RunEnd => "run_end",
            FlightCode::ChunkCommit => "chunk_commit",
            FlightCode::ChunkReclaim => "chunk_reclaim",
            FlightCode::Donation => "donation",
            FlightCode::Heartbeat => "heartbeat",
            FlightCode::Fault => "fault",
            FlightCode::RankDead => "rank_dead",
            FlightCode::SchedErr => "sched_err",
            FlightCode::ServeErr => "serve_err",
            FlightCode::ArenaGrow => "arena_grow",
            FlightCode::JobMigrate => "job_migrate",
            FlightCode::JobReadmit => "job_readmit",
        }
    }

    /// Parses a dump-file code name.
    pub fn parse(s: &str) -> Option<FlightCode> {
        FlightCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }
}

/// One fixed-size recorded event. `a`/`b` are code-specific payloads
/// (see [`FlightCode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global record order (fetch-add at record time).
    pub seq: u64,
    /// Microseconds since the recorder's epoch (process start of use).
    pub ts_us: u64,
    /// What happened.
    pub code: FlightCode,
    /// Distributed rank, when known.
    pub rank: Option<u32>,
    /// Recording thread's lane.
    pub lane: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl ToJson for FlightEvent {
    fn to_json(&self) -> Json {
        let mut o = Json::obj([
            ("seq", Json::U64(self.seq)),
            ("ts_us", Json::U64(self.ts_us)),
            ("code", Json::Str(self.code.as_str().into())),
            ("lane", Json::U64(self.lane as u64)),
            ("a", Json::U64(self.a)),
            ("b", Json::U64(self.b)),
        ]);
        if let Some(r) = self.rank {
            o.set("rank", r);
        }
        o
    }
}

struct Ring {
    buf: Vec<FlightEvent>,
    next: usize,
    total: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            buf: Vec::new(),
            next: 0,
            total: 0,
        }
    }

    fn push(&mut self, e: FlightEvent) {
        self.total += 1;
        if self.buf.len() < FLIGHT_CAPACITY {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
        }
        self.next = (self.next + 1) % FLIGHT_CAPACITY;
    }
}

/// The recorder: [`FLIGHT_SHARDS`] overwrite-oldest rings. Usually used
/// through the process-wide instance ([`recorder`]) so the dump on a
/// failure path sees events from every subsystem.
pub struct FlightRecorder {
    shards: Vec<Mutex<Ring>>,
    epoch: Instant,
    seq: AtomicU64,
    enabled: AtomicBool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Self {
        FlightRecorder {
            shards: (0..FLIGHT_SHARDS)
                .map(|_| Mutex::new(Ring::new()))
                .collect(),
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turns recording on or off (a single atomic flag; the disabled
    /// record path is one relaxed load).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an event on the calling thread's shard. Fixed-size write,
    /// no allocation once the ring is warm.
    #[inline]
    pub fn record(&self, code: FlightCode, rank: Option<u32>, a: u64, b: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let lane = lane();
        let e = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.epoch.elapsed().as_micros() as u64,
            code,
            rank,
            lane,
            a,
            b,
        };
        self.shards[lane as usize % FLIGHT_SHARDS]
            .lock()
            .unwrap()
            .push(e);
    }

    /// Events recorded over the recorder's lifetime (including ones the
    /// rings have since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().total).sum()
    }

    /// Copies out every retained event, ordered by `seq`.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().unwrap().buf.clone())
            .collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// The dump document: reason, retention stats, and the retained
    /// events in record order.
    pub fn dump_json(&self, reason: &str) -> Json {
        let events = self.snapshot();
        Json::obj([
            ("flight_recorder", Json::U64(1)),
            ("reason", Json::Str(reason.to_string())),
            (
                "dumped_ts_us",
                Json::U64(self.epoch.elapsed().as_micros() as u64),
            ),
            ("capacity_per_shard", Json::U64(FLIGHT_CAPACITY as u64)),
            ("shards", Json::U64(FLIGHT_SHARDS as u64)),
            ("total_recorded", Json::U64(self.total_recorded())),
            ("retained", Json::U64(events.len() as u64)),
            (
                "events",
                Json::Arr(events.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }

    /// Writes [`FlightRecorder::dump_json`] to `path`.
    pub fn dump_to_file(&self, path: &std::path::Path, reason: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump_json(reason).render())
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("total_recorded", &self.total_recorded())
            .finish()
    }
}

static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The process-wide recorder (created enabled on first use).
pub fn recorder() -> &'static FlightRecorder {
    GLOBAL.get_or_init(FlightRecorder::new)
}

/// Records on the process-wide recorder with no rank tag.
#[inline]
pub fn record(code: FlightCode, a: u64, b: u64) {
    recorder().record(code, None, a, b);
}

/// Records on the process-wide recorder with a rank tag.
#[inline]
pub fn record_rank(rank: u32, code: FlightCode, a: u64, b: u64) {
    recorder().record(code, Some(rank), a, b);
}

/// Turns the process-wide recorder on or off.
pub fn set_enabled(on: bool) {
    recorder().set_enabled(on);
}

/// Dumps the process-wide recorder to a post-mortem file and returns
/// its path. The directory is `$CUTS_FLIGHT_DIR` when set, else the OS
/// temp dir; the file name carries the pid, a per-process sequence
/// number, and `reason`. Returns `None` if the write fails (a crash
/// path must not raise a second error).
pub fn postmortem(reason: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CUTS_FLIGHT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let safe: String = reason
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '-'
            }
        })
        .collect();
    let path = dir.join(format!(
        "cuts-postmortem-{}-{}-{}.json",
        std::process::id(),
        DUMP_SEQ.fetch_add(1, Ordering::Relaxed),
        safe
    ));
    recorder().dump_to_file(&path, reason).ok()?;
    Some(path)
}

/// Parses a dump file produced by [`FlightRecorder::dump_to_file`] /
/// [`postmortem`]: returns the reason and the retained events.
pub fn parse_dump(text: &str) -> Result<(String, Vec<FlightEvent>), SchemaError> {
    let doc = Json::parse(text)?;
    if doc.get("flight_recorder").and_then(Json::as_u64) != Some(1) {
        return Err(SchemaError::new("not a flight-recorder dump"));
    }
    let reason = doc
        .get("reason")
        .and_then(Json::as_str)
        .ok_or_else(|| SchemaError::new("missing reason"))?
        .to_string();
    let raw = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or_else(|| SchemaError::new("missing events array"))?;
    let mut events = Vec::with_capacity(raw.len());
    for (i, e) in raw.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| SchemaError::new(format!("event {i}: missing {k}")))
        };
        let code_name = e
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| SchemaError::new(format!("event {i}: missing code")))?;
        let code = FlightCode::parse(code_name)
            .ok_or_else(|| SchemaError::new(format!("event {i}: unknown code '{code_name}'")))?;
        events.push(FlightEvent {
            seq: field("seq")?,
            ts_us: field("ts_us")?,
            code,
            rank: e.get("rank").and_then(Json::as_u64).map(|r| r as u32),
            lane: field("lane")? as u32,
            a: field("a")?,
            b: field("b")?,
        });
    }
    let declared = doc.get("retained").and_then(Json::as_u64);
    if declared.is_some_and(|n| n != events.len() as u64) {
        return Err(SchemaError::new("retained count mismatch"));
    }
    Ok((reason, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_names_unique_and_parse_back() {
        let mut names: Vec<_> = FlightCode::ALL.iter().map(|c| c.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FlightCode::ALL.len());
        for c in FlightCode::ALL {
            assert_eq!(FlightCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(FlightCode::parse("nope"), None);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let r = FlightRecorder::new();
        let n = (FLIGHT_CAPACITY + 100) as u64;
        for i in 0..n {
            r.record(FlightCode::Heartbeat, None, i, 0);
        }
        // Single thread → single shard: exactly FLIGHT_CAPACITY retained,
        // and they are the newest FLIGHT_CAPACITY records.
        let events = r.snapshot();
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(r.total_recorded(), n);
        assert_eq!(events.first().unwrap().a, n - FLIGHT_CAPACITY as u64);
        assert_eq!(events.last().unwrap().a, n - 1);
        // seq order is record order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let r = FlightRecorder::new();
        r.set_enabled(false);
        r.record(FlightCode::Heartbeat, None, 1, 2);
        assert_eq!(r.total_recorded(), 0);
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.record(FlightCode::Heartbeat, None, 1, 2);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn dump_roundtrip() {
        let r = FlightRecorder::new();
        r.record(FlightCode::JobSubmit, None, 7, 0);
        r.record(FlightCode::JobFail, Some(2), 7, 0);
        let text = r.dump_json("test-crash").render();
        let (reason, events) = parse_dump(&text).expect("dump parses");
        assert_eq!(reason, "test-crash");
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].code, FlightCode::JobFail);
        assert_eq!(events[1].rank, Some(2));
        assert_eq!(events[1].a, 7);
    }

    #[test]
    fn parse_rejects_non_dumps() {
        assert!(parse_dump("{}").is_err());
        assert!(parse_dump("not json").is_err());
        let bad = Json::obj([
            ("flight_recorder", Json::U64(1)),
            ("reason", Json::Str("x".into())),
            (
                "events",
                Json::Arr(vec![Json::obj([("code", Json::Str("bogus".into()))])]),
            ),
        ]);
        assert!(parse_dump(&bad.render()).is_err());
    }

    #[test]
    fn postmortem_writes_parseable_file() {
        record(FlightCode::Heartbeat, 1, 2);
        let path = postmortem("unit-test").expect("dump written");
        let text = std::fs::read_to_string(&path).unwrap();
        let (reason, _) = parse_dump(&text).expect("file parses");
        assert_eq!(reason, "unit-test");
        let _ = std::fs::remove_file(path);
    }
}
