#![warn(missing_docs)]

//! Unified tracing + profiling layer for the cuTS reproduction.
//!
//! The paper's evaluation is built on Nsight Compute counters and
//! per-node timelines; this crate is the reproduction's equivalent
//! substrate, shared by every other crate:
//!
//! * [`Trace`] / [`Span`] — a lightweight emission API over a monotonic
//!   clock with rank/lane tags and hardware-counter-delta attachment.
//!   A disabled `Trace` (the default) costs one `Option` check per call
//!   site and performs **zero** allocations.
//! * [`Journal`] — a lossless, lock-sharded recorder of typed [`Event`]s:
//!   kernel launches, per-level expansion steps, trie budget/spill,
//!   buffer-pool hits/misses, plan-cache hits, chunk lifecycle
//!   (assign/process/donate/commit/reclaim), heartbeats, and injected
//!   faults.
//! * [`export`] — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto; one process track per rank, one
//!   thread track per lane and per SM), flat JSONL, and a structural
//!   validator for tests.
//! * [`metrics`] — a Prometheus-style text snapshot.
//! * [`registry`] — always-on serving metrics: lock-free lane-sharded
//!   counters, gauges, and log2-bucketed latency histograms with a
//!   zero-cost disabled path (the journal answers "what happened in
//!   this run"; the registry answers "what are my p99s right now").
//! * [`flight`] — the crash flight recorder: a bounded, lossy,
//!   overwrite-oldest ring of typed events that records even when the
//!   journal is off, dumped to a post-mortem file on failure paths.
//! * [`json`] — the workspace's serde stand-in ([`ToJson`]) plus a small
//!   parser, so structured output is built from trees rather than
//!   hand-formatted strings.

pub mod event;
pub mod export;
pub mod flight;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use event::{Arg, CounterDelta, Event, EventKind};
pub use export::{chrome_trace, jsonl, validate_chrome, ChromeSummary, SM_LANE_BASE};
pub use flight::{FlightCode, FlightEvent, FlightRecorder};
pub use journal::{lane, Journal};
pub use json::{Json, SchemaError, ToJson};
pub use metrics::{validate_exposition, Metric, MetricKind, MetricsSnapshot};
pub use registry::{Counter, Gauge, Hist, HistSnapshot, Registry};
pub use trace::{Span, Trace, TraceConfig};
