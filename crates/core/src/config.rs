//! Engine configuration — every knob is one of the paper's design
//! decisions, so ablations flip exactly one field.

/// Which intersection micro-kernel the search kernel uses (§4.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectStrategy {
    /// Plan-time `KernelPolicy` choice between `c`, `p`, and `bitmap`
    /// per level, from data-graph degree statistics ("we adaptively
    /// choose the intersection method"); falls back to per-path choice
    /// on levels where the degree spread is too wide to fix one arm.
    Auto,
    /// Always c-intersection (stream each list against a shared buffer).
    CIntersection,
    /// Always p-intersection (probe each buffered candidate against the
    /// remaining constraints' adjacency).
    PIntersection,
    /// Always bitmap-intersection (encode the shortest list as a span
    /// bitmap in shared memory and stream the others against it).
    Bitmap,
}

/// Virtual warp sizing (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VirtualWarpPolicy {
    /// Single-bin strategy the paper ships: size from the data graph's
    /// average degree, rounded to a power of two in `1..=32`.
    AvgDegree,
    /// Fixed width (32 reproduces the GPSM/GSI thread-idling behaviour).
    Fixed(usize),
}

impl VirtualWarpPolicy {
    /// Resolves the virtual warp width for a graph with the given average
    /// degree.
    pub fn width(self, avg_degree: f64) -> usize {
        match self {
            VirtualWarpPolicy::Fixed(w) => {
                assert!(w.is_power_of_two() && w <= 32, "vwarp must be pow2 ≤ 32");
                w
            }
            VirtualWarpPolicy::AvgDegree => {
                let mut w = 1usize;
                while (w as f64) < avg_degree && w < 32 {
                    w *= 2;
                }
                w
            }
        }
    }
}

use crate::error::ConfigError;
use crate::order::OrderPolicy;

/// Tunables of a [`crate::CutsEngine`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Query-ordering heuristic (ablation: [`OrderPolicy::IdBfs`]).
    pub order_policy: OrderPolicy,
    /// Hybrid BFS-DFS chunk size; the paper found 512 best empirically.
    pub chunk_size: usize,
    /// Fraction of free device words handed to the trie's two arrays.
    pub trie_fraction: f64,
    /// Intersection micro-kernel selection.
    pub intersect: IntersectStrategy,
    /// Prefilter level-0 candidates with the GSI-style neighbourhood
    /// signature index before the Definition 5 degree test.
    pub signature_prefilter: bool,
    /// Shuffle partial-path placement to break id-order load imbalance
    /// ("we randomized the partial path placement", §4.1.2).
    pub randomize_placement: bool,
    /// Virtual warp sizing.
    pub virtual_warp: VirtualWarpPolicy,
    /// Maximum thread blocks per kernel launch.
    pub max_blocks: usize,
    /// Seed for placement randomisation (determinism in tests).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            order_policy: OrderPolicy::default(),
            chunk_size: 512,
            trie_fraction: 0.9,
            intersect: IntersectStrategy::Auto,
            signature_prefilter: true,
            randomize_placement: true,
            virtual_warp: VirtualWarpPolicy::AvgDegree,
            max_blocks: 256,
            seed: 0xCBF5,
        }
    }
}

impl EngineConfig {
    /// A validating builder: the same knobs as the `with_*` methods, but
    /// illegal values surface as a typed [`ConfigError`] at
    /// [`EngineConfigBuilder::build`] time instead of a panic (or a
    /// run-time failure deep inside a launch).
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
            device_words: None,
        }
    }

    /// Builder-style chunk size.
    pub fn with_chunk_size(mut self, n: usize) -> Self {
        assert!(n > 0);
        self.chunk_size = n;
        self
    }

    /// Builder-style intersection strategy.
    pub fn with_intersect(mut self, s: IntersectStrategy) -> Self {
        self.intersect = s;
        self
    }

    /// Builder-style signature prefilter toggle.
    pub fn with_signature_prefilter(mut self, on: bool) -> Self {
        self.signature_prefilter = on;
        self
    }

    /// Builder-style virtual warp policy.
    pub fn with_virtual_warp(mut self, p: VirtualWarpPolicy) -> Self {
        self.virtual_warp = p;
        self
    }

    /// Builder-style placement randomisation.
    pub fn with_randomize_placement(mut self, on: bool) -> Self {
        self.randomize_placement = on;
        self
    }

    /// Builder-style order policy.
    pub fn with_order_policy(mut self, p: OrderPolicy) -> Self {
        self.order_policy = p;
        self
    }

    /// Builder-style trie memory fraction.
    pub fn with_trie_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0);
        self.trie_fraction = f;
        self
    }
}

/// Validating builder for [`EngineConfig`] (see
/// [`EngineConfig::builder`]). Every setter records the value; all range
/// checks run together in [`EngineConfigBuilder::build`], which returns
/// [`ConfigError`] instead of panicking.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
    device_words: Option<usize>,
}

impl EngineConfigBuilder {
    /// Hybrid BFS-DFS chunk size (must be ≥ 1).
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.config.chunk_size = n;
        self
    }

    /// Fraction of free device words handed to the trie (must be in
    /// `(0, 1]`).
    pub fn trie_fraction(mut self, f: f64) -> Self {
        self.config.trie_fraction = f;
        self
    }

    /// Intersection micro-kernel selection.
    pub fn intersect(mut self, s: IntersectStrategy) -> Self {
        self.config.intersect = s;
        self
    }

    /// Level-0 signature prefilter.
    pub fn signature_prefilter(mut self, on: bool) -> Self {
        self.config.signature_prefilter = on;
        self
    }

    /// Partial-path placement randomisation.
    pub fn randomize_placement(mut self, on: bool) -> Self {
        self.config.randomize_placement = on;
        self
    }

    /// Query-ordering heuristic.
    pub fn order_policy(mut self, p: OrderPolicy) -> Self {
        self.config.order_policy = p;
        self
    }

    /// Virtual warp sizing (a `Fixed` width must be a power of two ≤ 32).
    pub fn virtual_warp(mut self, p: VirtualWarpPolicy) -> Self {
        self.config.virtual_warp = p;
        self
    }

    /// Maximum thread blocks per kernel launch (must be ≥ 1).
    pub fn max_blocks(mut self, n: usize) -> Self {
        self.config.max_blocks = n;
        self
    }

    /// Placement-randomisation seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.config.seed = s;
        self
    }

    /// Checks the trie budget against a concrete device size: `build`
    /// fails with [`ConfigError::Budget`] when the configured fraction
    /// of this many words cannot hold even one trie entry pair.
    pub fn for_device_words(mut self, words: usize) -> Self {
        self.device_words = Some(words);
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        let c = &self.config;
        if c.chunk_size == 0 {
            return Err(ConfigError::Invalid {
                field: "chunk_size",
                reason: "must be at least 1",
            });
        }
        if !(c.trie_fraction > 0.0 && c.trie_fraction <= 1.0) {
            return Err(ConfigError::Invalid {
                field: "trie_fraction",
                reason: "must be in (0, 1]",
            });
        }
        if c.max_blocks == 0 {
            return Err(ConfigError::Invalid {
                field: "max_blocks",
                reason: "must be at least 1",
            });
        }
        if let VirtualWarpPolicy::Fixed(w) = c.virtual_warp {
            if !w.is_power_of_two() || w > 32 {
                return Err(ConfigError::Invalid {
                    field: "virtual_warp",
                    reason: "fixed width must be a power of two ≤ 32",
                });
            }
        }
        if let Some(words) = self.device_words {
            // The trie needs at least one PA/CA entry pair within its
            // fraction of the device (mirrors QueryPlan::build's OOM).
            let budget_entries = (words as f64 * c.trie_fraction) as usize / 2;
            if budget_entries == 0 {
                return Err(ConfigError::Budget {
                    required_words: 2,
                    device_words: words,
                });
            }
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vwarp_from_avg_degree() {
        assert_eq!(VirtualWarpPolicy::AvgDegree.width(0.5), 1);
        assert_eq!(VirtualWarpPolicy::AvgDegree.width(2.8), 4);
        assert_eq!(VirtualWarpPolicy::AvgDegree.width(7.9), 8);
        assert_eq!(VirtualWarpPolicy::AvgDegree.width(1000.0), 32);
        assert_eq!(VirtualWarpPolicy::Fixed(16).width(2.0), 16);
    }

    #[test]
    #[should_panic(expected = "pow2")]
    fn bad_fixed_width_panics() {
        VirtualWarpPolicy::Fixed(12).width(1.0);
    }

    #[test]
    fn builder_chain() {
        let c = EngineConfig::default()
            .with_chunk_size(64)
            .with_intersect(IntersectStrategy::PIntersection)
            .with_signature_prefilter(false)
            .with_randomize_placement(false)
            .with_trie_fraction(0.5);
        assert_eq!(c.chunk_size, 64);
        assert_eq!(c.intersect, IntersectStrategy::PIntersection);
        assert!(!c.signature_prefilter);
        assert!(!c.randomize_placement);
        assert!((c.trie_fraction - 0.5).abs() < 1e-12);
    }
}
