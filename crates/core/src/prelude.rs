//! The one-line import for typical users of the engine:
//! `use cuts_core::prelude::*;` brings in the engine facade, the
//! plan/session split, the scheduler, the unified error type, and the
//! validating config builders — everything the README quick-starts use,
//! and nothing obscure enough to collide with caller names.

#![deny(missing_docs)]

pub use crate::config::{EngineConfig, EngineConfigBuilder, IntersectStrategy};
pub use crate::engine::CutsEngine;
pub use crate::error::{ConfigError, CutsError, EngineError, SchedError};
pub use crate::fault::FaultPlan;
pub use crate::plan::QueryPlan;
pub use crate::result::MatchResult;
pub use crate::sched::{
    ClassSlo, Job, JobId, JobOutcome, SchedReport, Scheduler, SchedulerBuilder, SloReport,
};
pub use crate::serve::{ServeConfig, ServeConfigBuilder, ServeReport, ServeStats, ServeTier};
pub use crate::session::ExecSession;
pub use crate::snapshot::Snapshot;
