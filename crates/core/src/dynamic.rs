//! Batch-dynamic matching: standing queries over a mutating data graph.
//!
//! A [`DynamicSession`] owns a data graph plus a set of registered
//! standing queries, each with its current embedding set mirrored as a
//! host trie. Applying an [`EdgeBatch`] runs the incremental pipeline:
//!
//! 1. the graph applies the batch in place ([`Graph::apply_batch`]),
//!    returning the [`GraphDelta`] of changed arcs and touched vertices;
//! 2. for every standing query the session computes the **dirty ball**
//!    — all vertices within `|V_Q| - 1` hops of a touched vertex over
//!    the *union* adjacency (the new graph plus the removed arcs). Any
//!    embedding that gained or lost an edge maps some query vertex onto
//!    a touched endpoint, and because the query is weakly connected its
//!    image is connected in old-or-new adjacency, so its **root** lies
//!    inside the ball. Roots outside the ball keep their subtrees
//!    verbatim;
//! 3. the query's trie is split with
//!    [`HostTrie::partition_roots`]: dirty subtrees are released back
//!    to the device arena ([`ExecSession::release_subtrees`], one
//!    `subtree_release` trie event) while clean subtrees are retained;
//! 4. dirty roots that pass the host-side level-0 filter are re-seeded
//!    as a depth-1 trie and only those subtrees are re-expanded on the
//!    device ([`ExecSession::run_seeded_enumerate`]);
//! 5. the per-root set difference between the old and new subtrees is
//!    the [`MatchDelta`] — embeddings added and removed by the batch.
//!
//! The composition of emitted deltas is exactly the full-recompute
//! match set (`tests/dynamic_equivalence.rs` checks this byte for byte
//! across randomized insert/delete schedules).

use std::collections::{BTreeSet, HashMap, HashSet};

use cuts_gpu_sim::Device;
use cuts_graph::{BatchError, EdgeBatch, Graph, GraphDelta, VertexId};
use cuts_obs::{Arg, EventKind};
use cuts_trie::HostTrie;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::session::ExecSession;

/// Handle to one standing query inside a [`DynamicSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StandingQueryId(pub usize);

/// The incremental matcher's output for one standing query and one
/// applied batch: which embeddings appeared and which disappeared.
/// Embeddings are in query-vertex space (`emb[q]` = data vertex matched
/// to query vertex `q`), each list sorted — two deltas over the same
/// state are byte-identical iff they agree semantically.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchDelta {
    /// The standing query this delta belongs to.
    pub query: StandingQueryId,
    /// Embeddings present after the batch but not before, sorted.
    pub added: Vec<Vec<VertexId>>,
    /// Embeddings present before the batch but not after, sorted.
    pub removed: Vec<Vec<VertexId>>,
    /// Distinct roots whose subtrees were marked dirty and uprooted.
    pub dirty_roots: usize,
    /// Dirty-ball vertices re-seeded for device re-expansion.
    pub reseeded: usize,
    /// Trie entries released back to the arena before re-expansion.
    pub released_entries: usize,
    /// Simulated device milliseconds the re-expansion cost.
    pub sim_millis: f64,
}

impl MatchDelta {
    /// True when the batch left this query's match set untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total embeddings changed.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// Everything one [`DynamicSession::apply_batch`] call produced: the
/// graph-level arc delta plus one [`MatchDelta`] per standing query (in
/// registration order).
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Arc-level changes the graph accepted.
    pub graph: GraphDelta,
    /// Per-standing-query match deltas.
    pub deltas: Vec<MatchDelta>,
}

/// Failures of the batch-dynamic pipeline: either the batch itself was
/// rejected (graph untouched) or a device re-expansion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicError {
    /// The edge batch failed validation; nothing was applied.
    Batch(BatchError),
    /// A standing query's re-expansion failed on the device.
    Engine(EngineError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::Batch(e) => write!(f, "batch rejected: {e}"),
            DynamicError::Engine(e) => write!(f, "re-expansion failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

impl From<BatchError> for DynamicError {
    fn from(e: BatchError) -> Self {
        DynamicError::Batch(e)
    }
}

impl From<EngineError> for DynamicError {
    fn from(e: EngineError) -> Self {
        DynamicError::Engine(e)
    }
}

/// One registered standing query: its graph, its matching order (fixed
/// at registration) and the host mirror of its current embedding trie
/// (full paths in order space).
struct StandingQuery {
    query: Graph,
    /// `order[l]` = query vertex matched at depth `l`.
    order: Vec<VertexId>,
    trie: HostTrie,
}

impl StandingQuery {
    /// All current embeddings as order-space paths.
    fn paths(&self) -> Vec<Vec<u32>> {
        let n = self.order.len();
        if self.trie.depth() == n {
            self.trie.paths_at_level(n - 1)
        } else {
            Vec::new()
        }
    }

    /// Converts an order-space path to a query-vertex-space embedding.
    fn to_embedding(&self, path: &[u32]) -> Vec<VertexId> {
        let mut emb = vec![0u32; self.order.len()];
        for (l, &q) in self.order.iter().enumerate() {
            emb[q as usize] = path[l];
        }
        emb
    }
}

/// Vertices within `radius` hops of the delta's touched set over the
/// union adjacency: the post-batch graph (which already contains every
/// inserted arc) plus the removed arcs in both directions (so
/// connectivity that existed only before the batch still counts).
/// Every embedding gaining or losing an edge has its root in this set.
pub fn dirty_ball(graph: &Graph, delta: &GraphDelta, radius: usize) -> HashSet<VertexId> {
    let mut removed_adj: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    for &(u, v) in &delta.removed {
        removed_adj.entry(u).or_default().push(v);
        removed_adj.entry(v).or_default().push(u);
    }
    let mut seen: HashSet<VertexId> = delta.touched.iter().copied().collect();
    let mut frontier: Vec<VertexId> = delta.touched.clone();
    for _ in 0..radius {
        let mut next = Vec::new();
        for &u in &frontier {
            let extra = removed_adj.get(&u).map_or(&[][..], |v| v.as_slice());
            for &v in graph
                .out_neighbors(u)
                .iter()
                .chain(graph.in_neighbors(u))
                .chain(extra)
            {
                if seen.insert(v) {
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    seen
}

/// A mutable data graph plus its standing queries. See the module docs
/// for the incremental pipeline each [`DynamicSession::apply_batch`]
/// runs.
pub struct DynamicSession<'d> {
    session: ExecSession<'d>,
    graph: Graph,
    queries: Vec<StandingQuery>,
}

impl<'d> DynamicSession<'d> {
    /// Binds `graph` to `device` for batch-dynamic matching.
    pub fn new(device: &'d Device, config: EngineConfig, graph: Graph) -> Self {
        DynamicSession {
            session: ExecSession::new(device, config),
            graph,
            queries: Vec::new(),
        }
    }

    /// The current data graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The underlying execution session.
    pub fn session(&self) -> &ExecSession<'d> {
        &self.session
    }

    /// Number of registered standing queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Registers `query` (which must be weakly connected, like every
    /// [`ExecSession::run`] input) as a standing query: runs the full
    /// initial expansion and retains the embedding trie for incremental
    /// maintenance.
    pub fn register(&mut self, query: &Graph) -> Result<StandingQueryId, EngineError> {
        let plan = self.session.plan_for(query)?;
        let order = plan.order.order.clone();
        let mut paths: Vec<Vec<u32>> = Vec::new();
        {
            let order = &order;
            let mut sink = |m: &[u32]| {
                paths.push(order.iter().map(|&q| m[q as usize]).collect());
            };
            self.session.run_enumerate(&self.graph, query, &mut sink)?;
        }
        paths.sort_unstable();
        let id = StandingQueryId(self.queries.len());
        self.queries.push(StandingQuery {
            query: query.clone(),
            order,
            trie: HostTrie::from_flat_paths(&paths),
        });
        Ok(id)
    }

    /// The standing query's current match set in query-vertex space —
    /// the composition of its initial expansion with every delta
    /// emitted since.
    pub fn match_set(&self, id: StandingQueryId) -> BTreeSet<Vec<VertexId>> {
        let sq = &self.queries[id.0];
        sq.paths().iter().map(|p| sq.to_embedding(p)).collect()
    }

    /// Ground truth: a fresh full expansion of the standing query over
    /// the current graph (no incremental state involved).
    pub fn recompute(&self, id: StandingQueryId) -> Result<BTreeSet<Vec<VertexId>>, EngineError> {
        let sq = &self.queries[id.0];
        let mut set = BTreeSet::new();
        let mut sink = |m: &[u32]| {
            set.insert(m.to_vec());
        };
        self.session
            .run_enumerate(&self.graph, &sq.query, &mut sink)?;
        Ok(set)
    }

    /// Applies `batch` to the graph and incrementally maintains every
    /// standing query, returning the arc delta plus one [`MatchDelta`]
    /// per query. On a batch validation error nothing changes; on an
    /// engine error the graph has advanced but standing state is only
    /// updated for the queries processed before the failure (re-register
    /// to resynchronise).
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<BatchOutcome, DynamicError> {
        let delta = self.graph.apply_batch(batch)?;
        let trace = self.session.device().trace();
        trace.instant_with(
            EventKind::Batch,
            "apply",
            &[
                ("inserted", Arg::U64(delta.inserted.len() as u64)),
                ("removed", Arg::U64(delta.removed.len() as u64)),
                ("touched", Arg::U64(delta.touched.len() as u64)),
                ("version", Arg::U64(delta.version)),
            ],
        );
        let session = &self.session;
        let graph = &self.graph;
        let mut deltas = Vec::with_capacity(self.queries.len());
        for (qi, sq) in self.queries.iter_mut().enumerate() {
            let n = sq.order.len();
            let ball = dirty_ball(graph, &delta, n - 1);
            let (clean, dirty) = sq.trie.partition_roots(|r| ball.contains(&r));
            let dirty_roots = dirty.levels.first().map_or(0, |r| r.len());
            let released = session.release_subtrees(&dirty)?;
            let old_paths: BTreeSet<Vec<u32>> = if dirty.depth() == n {
                dirty.paths_at_level(n - 1).into_iter().collect()
            } else {
                BTreeSet::new()
            };

            // Re-seed every ball vertex that passes the level-0 filter
            // on the *new* graph (vertices failing it host no roots).
            let mut seeds: Vec<u32> = Vec::new();
            for &v in &ball {
                if session.root_passes(graph, &sq.query, v)? {
                    seeds.push(v);
                }
            }
            seeds.sort_unstable();

            let mut new_paths: BTreeSet<Vec<u32>> = BTreeSet::new();
            let mut sim_millis = 0.0;
            if !seeds.is_empty() {
                let seed_paths: Vec<Vec<u32>> = seeds.iter().map(|&v| vec![v]).collect();
                let seed = HostTrie::from_flat_paths(&seed_paths);
                let order = &sq.order;
                let mut sink = |m: &[u32]| {
                    new_paths.insert(order.iter().map(|&q| m[q as usize]).collect());
                };
                let r = session.run_seeded_enumerate(graph, &sq.query, &seed, &mut sink)?;
                sim_millis = r.sim_millis;
            }

            let added: Vec<Vec<u32>> = new_paths.difference(&old_paths).cloned().collect();
            let removed: Vec<Vec<u32>> = old_paths.difference(&new_paths).cloned().collect();

            // Merge: untouched subtrees verbatim, re-expanded subtrees
            // from the device run, rebuilt as one prefix-shared trie.
            let mut all: Vec<Vec<u32>> = if clean.depth() == n {
                clean.paths_at_level(n - 1)
            } else {
                Vec::new()
            };
            all.extend(new_paths.iter().cloned());
            all.sort_unstable();
            sq.trie = HostTrie::from_flat_paths(&all);

            trace.instant_with(
                EventKind::Batch,
                "delta",
                &[
                    ("query", Arg::U64(qi as u64)),
                    ("added", Arg::U64(added.len() as u64)),
                    ("removed", Arg::U64(removed.len() as u64)),
                    ("dirty_roots", Arg::U64(dirty_roots as u64)),
                    ("released", Arg::U64(released as u64)),
                ],
            );
            deltas.push(MatchDelta {
                query: StandingQueryId(qi),
                added: added.iter().map(|p| sq.to_embedding(p)).collect(),
                removed: removed.iter().map(|p| sq.to_embedding(p)).collect(),
                dirty_roots,
                reseeded: seeds.len(),
                released_entries: released,
                sim_millis,
            });
        }
        Ok(BatchOutcome {
            graph: delta,
            deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{clique, erdos_renyi, mesh2d};

    fn session(graph: Graph) -> DynamicSession<'static> {
        let device = Box::leak(Box::new(Device::new(DeviceConfig::test_small())));
        DynamicSession::new(device, EngineConfig::default(), graph)
    }

    /// Applies each delta to `set` and checks internal consistency.
    fn fold_delta(set: &mut BTreeSet<Vec<u32>>, d: &MatchDelta) {
        for r in &d.removed {
            assert!(set.remove(r), "removed embedding {r:?} was not present");
        }
        for a in &d.added {
            assert!(
                set.insert(a.clone()),
                "added embedding {a:?} already present"
            );
        }
    }

    #[test]
    fn insert_creates_matches_delete_removes_them() {
        // Start from a triangle-free 2x3 mesh, then close a face.
        let mut dyn_s = session(mesh2d(2, 3));
        let q = dyn_s.register(&clique(3)).unwrap();
        assert!(dyn_s.match_set(q).is_empty());

        let mut b = EdgeBatch::new();
        b.insert(0, 4); // diagonal: 0-1-4 and 0-3-4 become triangles
        let out = dyn_s.apply_batch(&b).unwrap();
        let d = &out.deltas[0];
        assert_eq!(d.added.len(), 12); // 2 triangles x 3! orderings
        assert!(d.removed.is_empty());
        assert_eq!(dyn_s.match_set(q), dyn_s.recompute(q).unwrap());

        let mut b = EdgeBatch::new();
        b.delete(0, 4);
        let out = dyn_s.apply_batch(&b).unwrap();
        let d = &out.deltas[0];
        assert!(d.added.is_empty());
        assert_eq!(d.removed.len(), 12);
        assert!(dyn_s.match_set(q).is_empty());
        assert_eq!(dyn_s.match_set(q), dyn_s.recompute(q).unwrap());
    }

    #[test]
    fn deltas_track_recompute_on_random_graph() {
        let mut dyn_s = session(erdos_renyi(40, 120, 11));
        let q = dyn_s.register(&clique(3)).unwrap();
        let mut folded = dyn_s.match_set(q);

        // Insert a missing edge, delete an existing one, repeat.
        let g = dyn_s.graph();
        let (mut u, mut v) = (0u32, 1u32);
        'outer: for a in 0..40u32 {
            for b in (a + 1)..40u32 {
                if !g.has_edge(a, b) {
                    (u, v) = (a, b);
                    break 'outer;
                }
            }
        }
        let mut b1 = EdgeBatch::new();
        b1.insert(u, v);
        let out = dyn_s.apply_batch(&b1).unwrap();
        fold_delta(&mut folded, &out.deltas[0]);
        assert_eq!(folded, dyn_s.recompute(q).unwrap());
        assert_eq!(folded, dyn_s.match_set(q));

        let mut b2 = EdgeBatch::new();
        b2.delete(u, v);
        let out = dyn_s.apply_batch(&b2).unwrap();
        fold_delta(&mut folded, &out.deltas[0]);
        assert_eq!(folded, dyn_s.recompute(q).unwrap());
        assert_eq!(folded, dyn_s.match_set(q));
    }

    #[test]
    fn clean_subtrees_are_not_reexpanded() {
        // Two far-apart regions on a long mesh: edits in one corner must
        // not re-seed roots in the other.
        let mut dyn_s = session(mesh2d(2, 20));
        let q = dyn_s.register(&clique(3)).unwrap();
        let mut b = EdgeBatch::new();
        b.insert(0, 3); // a diagonal in the left corner
        let out = dyn_s.apply_batch(&b).unwrap();
        let d = &out.deltas[0];
        // Ball radius 2 around {0, 3} stays well left of column 10.
        assert!(d.reseeded > 0);
        assert!(d.reseeded < 20, "reseeded {} of 40 vertices", d.reseeded);
        assert_eq!(dyn_s.match_set(q), dyn_s.recompute(q).unwrap());
    }

    #[test]
    fn rejected_batch_changes_nothing() {
        let mut dyn_s = session(mesh2d(3, 3));
        let q = dyn_s.register(&clique(3)).unwrap();
        let before = dyn_s.match_set(q);
        let version = dyn_s.graph().version();
        let mut b = EdgeBatch::new();
        b.insert(0, 99); // out of range
        assert!(matches!(
            dyn_s.apply_batch(&b),
            Err(DynamicError::Batch(BatchError::VertexOutOfRange { .. }))
        ));
        assert_eq!(dyn_s.graph().version(), version);
        assert_eq!(dyn_s.match_set(q), before);
    }

    #[test]
    fn dirty_ball_covers_removed_arcs() {
        let mut g = mesh2d(2, 2); // square 0-1-3-2
        let mut b = EdgeBatch::new();
        b.delete(0, 1);
        let delta = g.apply_batch(&b).unwrap();
        // Radius 1 from {0,1}: via the removed arc both endpoints see
        // each other; via the new graph 0 sees 2 and 1 sees 3.
        let ball = dirty_ball(&g, &delta, 1);
        assert_eq!(ball, [0u32, 1, 2, 3].into_iter().collect::<HashSet<_>>());
    }
}
