#![warn(missing_docs)]

//! The cuTS matching engine (§4 of the paper).
//!
//! Pipeline: compute a degree-greedy matching [`order`], filter the
//! level-0 candidate set (Definition 5), then repeatedly extend every
//! partial path by one query vertex — intersecting the adjacency lists of
//! its already-matched neighbours with one of the [`intersect`]
//! micro-kernels — writing results into the PA/CA trie with a single atomic
//! per path. When the trie cannot hold a full BFS level, the engine falls
//! back to the hybrid BFS-DFS strategy: the frontier is chunked (default
//! 512) and each chunk's subtree is explored to completion before its
//! scratch levels are reclaimed.
//!
//! Execution is split into two phases: a [`QueryPlan`] (immutable,
//! device-independent — built once per query/config/device-class) and an
//! [`ExecSession`] (device-bound, reusable — arena-backed trie slabs, scoped
//! counters, an LRU [`PlanCache`]). [`CutsEngine`] remains as a thin
//! facade over a private session for one-shot use.
//!
//! Semantics: all injective mappings `f : V_Q → V_D` with every query edge
//! mapped to a data edge (subgraph isomorphism *search*, Definition 4;
//! non-induced). A sequential CPU [`mod@reference`] matcher provides ground
//! truth for tests.

pub mod cache;
pub mod complexity;
pub mod config;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod fault;
pub mod intersect;
pub mod kernels;
pub mod ledger;
pub mod order;
pub mod plan;
pub mod policy;
pub mod prelude;
pub mod reference;
pub mod result;
pub mod sched;
pub mod serve;
pub mod session;
pub mod snapshot;
pub mod watch;

pub use cache::{PlanCache, PlanCacheStats};
pub use config::{EngineConfig, EngineConfigBuilder, IntersectStrategy, VirtualWarpPolicy};
pub use dynamic::{BatchOutcome, DynamicError, DynamicSession, MatchDelta, StandingQueryId};
pub use engine::CutsEngine;
pub use error::{ConfigError, CutsError, DistError, EngineError, SchedError, SnapshotError};
pub use fault::{CrashKind, FaultInjector, FaultPlan};
pub use ledger::{AliveBoard, WorkId, WorkLedger};
pub use order::{BackEdge, Dir, MatchOrder, OrderPolicy};
pub use plan::{BudgetCheck, DeviceClass, LevelSchedule, PlanKey, QueryPlan};
pub use policy::{KernelPolicy, LevelDecision, LevelMethod};
pub use result::MatchResult;
pub use sched::{
    ClassSlo, Job, JobId, JobOutcome, SchedReport, SchedStats, Scheduler, SchedulerBuilder,
    SloReport, StatsSink,
};
pub use serve::{ServeConfig, ServeConfigBuilder, ServeReport, ServeStats, ServeTier};
pub use session::{ExecSession, MatchSink, SessionStats};
pub use snapshot::{Snapshot, SnapshotInfo, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use watch::{WatchSession, WatchUpdate, Watcher};
