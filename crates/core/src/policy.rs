//! Plan-time micro-kernel policy.
//!
//! The per-path [`choose`](crate::intersect::choose) re-derives the same
//! c/p decision for every partial path at a level, paying the decision
//! cost O(paths) times and — worse — deciding from one path's lists
//! alone. This module lifts the decision to plan time, in the spirit of
//! gMatch's hardware-statistics-driven kernel choice: the data graph's
//! degree-bucket statistics ([`cuts_graph::DataProfile`]) predict the
//! constraint-list shapes a level will see, and the same cost model that
//! powers `choose` then fixes one micro-kernel for the whole level. Only
//! when the degree spread is too wide for a single prediction (p90/p50
//! ratio over [`SKEW_LIMIT`]) does the level stay on per-path choice.

use cuts_graph::DataProfile;

use crate::config::IntersectStrategy;
use crate::intersect::{bitmap_words, pick_method, probe_cost, Method};
use crate::plan::QueryPlan;

/// Degree-spread ratio (max/p50) above which a level keeps per-path
/// selection instead of one fixed micro-kernel. The max — not p90 —
/// is the right tail sensor here: on hub-and-spoke graphs p50 and p90
/// are both tiny while a handful of hubs carry nearly all the
/// intersection work, and a single plan-time prediction would misprice
/// exactly the paths that dominate the counters.
pub const SKEW_LIMIT: u32 = 8;

/// Micro-kernel decision for one trie level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelMethod {
    /// One micro-kernel for every path at this level.
    Fixed(Method),
    /// Degree spread too wide to predict: decide per partial path.
    PerPath,
}

impl LevelMethod {
    /// Short name for obs events and profile rows.
    pub fn name(&self) -> &'static str {
        match self {
            LevelMethod::Fixed(m) => m.name(),
            LevelMethod::PerPath => "per-path",
        }
    }

    /// The kernel-launch label expansions at this level run under, so
    /// `cuts profile` splits counter totals per method for free.
    pub fn kernel_name(&self) -> &'static str {
        match self {
            LevelMethod::Fixed(Method::C) => "expand_c",
            LevelMethod::Fixed(Method::P) => "expand_p",
            LevelMethod::Fixed(Method::B) => "expand_b",
            LevelMethod::PerPath => "expand_mix",
        }
    }
}

/// One level's resolved decision, with the statistics that produced it
/// (surfaced through the `policy` obs events).
#[derive(Debug, Clone, Copy)]
pub struct LevelDecision {
    /// Depth in the matching order (`1..|V_Q|`).
    pub pos: usize,
    /// Back-edge constraint count χ at this depth.
    pub constraints: usize,
    /// The decision.
    pub method: LevelMethod,
    /// Predicted length of the shortest constraint list.
    pub est_first_len: usize,
}

/// The full per-level policy for one (plan, data-profile) pair.
#[derive(Debug, Clone)]
pub struct KernelPolicy {
    /// `levels[l-1]` decides depth `l`.
    pub levels: Vec<LevelDecision>,
}

impl KernelPolicy {
    /// Computes the policy. Fixed config strategies pin every level;
    /// [`IntersectStrategy::Auto`] derives the arm per level from the
    /// profile's degree statistics and the plan's shared-memory budget.
    pub fn compute(plan: &QueryPlan, profile: &DataProfile) -> KernelPolicy {
        let shared = plan.device_class.shared_mem_words_per_block;
        let levels = plan
            .schedule
            .iter()
            .map(|lvl| {
                let chi = lvl.constraints.max(1);
                // Expected shortest list among χ draws from the degree
                // distribution ≈ the 100/(χ+1) percentile; a typical
                // remaining list ≈ the mean.
                let stats = &profile.out_degrees;
                let est_first = stats.percentile(100.0 / (chi as f64 + 1.0)).max(1) as usize;
                let method = match plan.config.intersect {
                    IntersectStrategy::CIntersection => LevelMethod::Fixed(Method::C),
                    IntersectStrategy::PIntersection => LevelMethod::Fixed(Method::P),
                    IntersectStrategy::Bitmap => LevelMethod::Fixed(Method::B),
                    IntersectStrategy::Auto => {
                        if stats.max() > SKEW_LIMIT.saturating_mul(stats.p50().max(1)) {
                            LevelMethod::PerPath
                        } else {
                            let avg = stats.avg.ceil().max(1.0) as usize;
                            let stream = (chi - 1) * avg;
                            let probe = (chi - 1) * probe_cost(avg);
                            // Plan time cannot see a list's value span, so
                            // price the bitmap at its worst case: the whole
                            // vertex range. The per-path kernel still
                            // shrinks it to the actual span at run time.
                            let bmp = bitmap_words(profile.vertices.max(1));
                            LevelMethod::Fixed(pick_method(est_first, bmp, stream, probe, shared))
                        }
                    }
                };
                LevelDecision {
                    pos: lvl.pos,
                    constraints: lvl.constraints,
                    method,
                    est_first_len: est_first,
                }
            })
            .collect();
        KernelPolicy { levels }
    }

    /// The decision for depth `pos` (`1..|V_Q|`).
    #[inline]
    pub fn method_at(&self, pos: usize) -> LevelMethod {
        self.levels[pos - 1].method
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::plan::DeviceClass;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{clique, mesh2d};

    fn policy_for(data: &cuts_graph::Graph, cfg: &EngineConfig) -> KernelPolicy {
        let class = DeviceClass::of(&DeviceConfig::test_small());
        let plan = QueryPlan::build(&clique(4), cfg, &class).unwrap();
        plan.kernel_policy(&data.profile())
    }

    #[test]
    fn fixed_strategies_pin_every_level() {
        let data = mesh2d(8, 8);
        for (strat, want) in [
            (IntersectStrategy::CIntersection, Method::C),
            (IntersectStrategy::PIntersection, Method::P),
            (IntersectStrategy::Bitmap, Method::B),
        ] {
            let p = policy_for(&data, &EngineConfig::default().with_intersect(strat));
            assert!(p
                .levels
                .iter()
                .all(|d| d.method == LevelMethod::Fixed(want)));
        }
    }

    #[test]
    fn auto_fixes_regular_graphs_and_hedges_skewed_ones() {
        // Mesh: every degree 2–4, spread tiny → fixed arm per level.
        let mesh = mesh2d(16, 16);
        let p = policy_for(&mesh, &EngineConfig::default());
        assert!(p
            .levels
            .iter()
            .all(|d| matches!(d.method, LevelMethod::Fixed(_))));
        // Hub-and-spoke: p50 (and even p90) tiny, max huge — exactly the
        // tail shape the max-based hedge exists for.
        let n = 64;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for u in 0..16u32 {
            for v in (u + 1)..16 {
                edges.push((u, v));
            }
        }
        for v in 16..n as u32 {
            edges.push((0, v));
        }
        let skewed = cuts_graph::Graph::undirected(n, &edges);
        let prof = skewed.profile();
        assert!(prof.out_degrees.max() > SKEW_LIMIT * prof.out_degrees.p50().max(1));
        let p = policy_for(&skewed, &EngineConfig::default());
        assert!(p.levels.iter().all(|d| d.method == LevelMethod::PerPath));
    }

    #[test]
    fn decisions_cover_every_level() {
        let data = mesh2d(8, 8);
        let p = policy_for(&data, &EngineConfig::default());
        assert_eq!(p.levels.len(), 3);
        for (i, d) in p.levels.iter().enumerate() {
            assert_eq!(d.pos, i + 1);
            assert_eq!(p.method_at(d.pos).name(), d.method.name());
            assert!(d.est_first_len >= 1);
        }
    }
}
