//! Query matching order (§4, §4.1.2).
//!
//! The root is the query vertex with maximum out-degree (minimum id breaks
//! ties) — §6.3 credits much of the speedup to this choice, since every
//! lower-degree root admits a superset of its candidates. Each subsequent
//! position takes the highest-out-degree vertex adjacent to the ordered
//! prefix, keeping every prefix connected so the `next_neigh` constraint
//! set is never empty.

use cuts_graph::{Graph, VertexId};

use crate::error::EngineError;

/// How the matching order is chosen — the paper's key heuristic (§4, §6)
/// versus the naive alternative used for ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// cuTS: max-degree root, degree-greedy frontier (default).
    #[default]
    DegreeGreedy,
    /// Id-order BFS from vertex 0 (what an ordering-oblivious engine
    /// effectively does on unlabelled graphs).
    IdBfs,
}

/// Direction of a query edge between an earlier position and the position
/// being matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `(S[prev], S[cur]) ∈ E_Q`: the candidate must be an out-neighbour
    /// of the earlier match.
    Out,
    /// `(S[cur], S[prev]) ∈ E_Q`: the candidate must be an in-neighbour.
    In,
}

/// A constraint tying the current position to an earlier one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackEdge {
    /// Earlier position in the order (index into the partial path).
    pub pos: usize,
    /// Which adjacency of the earlier match constrains the candidate.
    pub dir: Dir,
}

/// The complete matching plan for a query graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOrder {
    /// `order[l]` = query vertex matched at depth `l`.
    pub order: Vec<VertexId>,
    /// `position[q]` = depth at which query vertex `q` is matched.
    pub position: Vec<usize>,
    /// `back_edges[l]` = constraints the depth-`l` candidate must satisfy
    /// against earlier matches (the paper's `next_neigh`, fixed per level).
    pub back_edges: Vec<Vec<BackEdge>>,
    /// Out-degree of `order[l]` in the query (Definition 5 filter).
    pub q_out: Vec<u32>,
    /// In-degree of `order[l]` in the query.
    pub q_in: Vec<u32>,
    /// Label of `order[l]`, when the query is labelled (extension: the
    /// candidate filter then also requires label equality on labelled
    /// data graphs).
    pub q_label: Vec<Option<u32>>,
}

/// Label admissibility of data vertex `c` for a query slot with label
/// `q_label`: constrains only when both sides carry labels.
#[inline]
pub fn label_ok(data: &Graph, c: VertexId, q_label: Option<u32>) -> bool {
    match (data.label(c), q_label) {
        (Some(ld), Some(lq)) => ld == lq,
        _ => true,
    }
}

impl MatchOrder {
    /// Builds a plan from an explicit order (every prefix after the first
    /// vertex must touch the preceding prefix). Used by baselines that
    /// deliberately order differently from cuTS.
    pub fn from_order(query: &Graph, order: Vec<VertexId>) -> Result<MatchOrder, EngineError> {
        let n = query.num_vertices();
        if n == 0 || order.is_empty() {
            return Err(EngineError::EmptyQuery);
        }
        assert_eq!(order.len(), n, "order must cover every query vertex");
        let mut position = vec![usize::MAX; n];
        for (l, &q) in order.iter().enumerate() {
            assert_eq!(
                position[q as usize],
                usize::MAX,
                "duplicate vertex in order"
            );
            position[q as usize] = l;
        }
        let back_edges = Self::build_back_edges(query, &order, &position);
        for (l, be) in back_edges.iter().enumerate().skip(1) {
            if be.is_empty() {
                debug_assert!(l > 0);
                return Err(EngineError::DisconnectedQuery);
            }
        }
        let q_out = order.iter().map(|&q| query.out_degree(q)).collect();
        let q_in = order.iter().map(|&q| query.in_degree(q)).collect();
        let q_label = order.iter().map(|&q| query.label(q)).collect();
        Ok(MatchOrder {
            order,
            position,
            back_edges,
            q_out,
            q_in,
            q_label,
        })
    }

    fn build_back_edges(
        query: &Graph,
        order: &[VertexId],
        position: &[usize],
    ) -> Vec<Vec<BackEdge>> {
        // For symmetric (undirected) queries each adjacency appears in both
        // directions; one constraint per edge suffices because the data
        // graph is symmetric too.
        let symmetric = query.is_symmetric();
        let n = order.len();
        let mut back_edges = Vec::with_capacity(n);
        for (l, &q) in order.iter().enumerate() {
            let mut be = Vec::new();
            for &w in query.out_neighbors(q) {
                let p = position[w as usize];
                if p < l {
                    // (q, w) with w earlier: candidate must have an edge
                    // *to* the earlier match => candidate ∈ in_neighbours
                    // of that match.
                    be.push(BackEdge {
                        pos: p,
                        dir: Dir::In,
                    });
                }
            }
            for &w in query.in_neighbors(q) {
                let p = position[w as usize];
                if p < l {
                    let dup = symmetric && be.iter().any(|b| b.pos == p && b.dir == Dir::In);
                    if dup {
                        continue;
                    }
                    be.push(BackEdge {
                        pos: p,
                        dir: Dir::Out,
                    });
                }
            }
            back_edges.push(be);
        }
        back_edges
    }

    /// Computes the order under a given policy.
    pub fn compute_with_policy(
        query: &Graph,
        policy: OrderPolicy,
    ) -> Result<MatchOrder, EngineError> {
        match policy {
            OrderPolicy::DegreeGreedy => Self::compute(query),
            OrderPolicy::IdBfs => {
                let n = query.num_vertices();
                if n == 0 {
                    return Err(EngineError::EmptyQuery);
                }
                let mut order = Vec::with_capacity(n);
                let mut visited = vec![false; n];
                while order.len() < n {
                    let next = (0..n as VertexId)
                        .filter(|&v| !visited[v as usize])
                        .find(|&v| {
                            order.is_empty()
                                || query
                                    .out_neighbors(v)
                                    .iter()
                                    .chain(query.in_neighbors(v))
                                    .any(|&w| visited[w as usize])
                        });
                    match next {
                        Some(v) => {
                            visited[v as usize] = true;
                            order.push(v);
                        }
                        None => return Err(EngineError::DisconnectedQuery),
                    }
                }
                Self::from_order(query, order)
            }
        }
    }

    /// Computes the order for a connected query graph. Fails with
    /// [`EngineError::DisconnectedQuery`] if some vertex is unreachable
    /// (callers should split components first, per §4).
    pub fn compute(query: &Graph) -> Result<MatchOrder, EngineError> {
        let n = query.num_vertices();
        if n == 0 {
            return Err(EngineError::EmptyQuery);
        }
        // Undirected degree view for selection: out-degree as the paper
        // specifies (for symmetrised graphs they coincide).
        let deg = |v: VertexId| query.out_degree(v);

        let root = (0..n as VertexId)
            .max_by(|&a, &b| deg(a).cmp(&deg(b)).then(b.cmp(&a)))
            .expect("non-empty");

        let mut order = Vec::with_capacity(n);
        let mut position = vec![usize::MAX; n];
        let mut in_prefix = vec![false; n];
        let mut frontier_mark = vec![false; n];
        order.push(root);
        position[root as usize] = 0;
        in_prefix[root as usize] = true;

        let mut frontier: Vec<VertexId> = Vec::new();
        let push_neighbors = |v: VertexId,
                              frontier: &mut Vec<VertexId>,
                              in_prefix: &[bool],
                              frontier_mark: &mut [bool]| {
            for &w in query.out_neighbors(v).iter().chain(query.in_neighbors(v)) {
                if !in_prefix[w as usize] && !frontier_mark[w as usize] {
                    frontier_mark[w as usize] = true;
                    frontier.push(w);
                }
            }
        };
        push_neighbors(root, &mut frontier, &in_prefix, &mut frontier_mark);

        while order.len() < n {
            // Max out-degree in the frontier, min id on ties.
            let Some((idx, _)) = frontier
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| deg(a).cmp(&deg(b)).then(b.cmp(&a)))
            else {
                return Err(EngineError::DisconnectedQuery);
            };
            let v = frontier.swap_remove(idx);
            position[v as usize] = order.len();
            order.push(v);
            in_prefix[v as usize] = true;
            push_neighbors(v, &mut frontier, &in_prefix, &mut frontier_mark);
        }

        let back_edges = Self::build_back_edges(query, &order, &position);
        let q_out = order.iter().map(|&q| query.out_degree(q)).collect();
        let q_in = order.iter().map(|&q| query.in_degree(q)).collect();
        let q_label = order.iter().map(|&q| query.label(q)).collect();
        Ok(MatchOrder {
            order,
            position,
            back_edges,
            q_out,
            q_in,
            q_label,
        })
    }

    /// Number of levels (query vertices).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the (disallowed) empty order.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_graph::generators::{chain, clique, star};

    #[test]
    fn root_is_max_degree_min_id() {
        // Star: hub (vertex 0) has max degree.
        let o = MatchOrder::compute(&star(5)).unwrap();
        assert_eq!(o.order[0], 0);
        // Chain 0-1-2-3: vertices 1 and 2 have degree 2; min id = 1 wins.
        let o = MatchOrder::compute(&chain(4)).unwrap();
        assert_eq!(o.order[0], 1);
    }

    #[test]
    fn prefix_always_connected() {
        let o = MatchOrder::compute(&chain(6)).unwrap();
        // Every level > 0 must have at least one back edge.
        for l in 1..o.len() {
            assert!(!o.back_edges[l].is_empty(), "level {l} unconstrained");
        }
    }

    #[test]
    fn clique_back_edges_full() {
        let o = MatchOrder::compute(&clique(4)).unwrap();
        for l in 0..4 {
            assert_eq!(o.back_edges[l].len(), l);
        }
    }

    #[test]
    fn undirected_dedup_one_constraint_per_edge() {
        let o = MatchOrder::compute(&clique(3)).unwrap();
        // Each back edge appears once, not twice.
        assert_eq!(o.back_edges[1].len(), 1);
        assert_eq!(o.back_edges[2].len(), 2);
    }

    #[test]
    fn directed_both_directions_kept() {
        // 0 -> 1 and 1 -> 2 and 2 -> 0 (directed 3-cycle).
        let g = Graph::directed(3, &[(0, 1), (1, 2), (2, 0)]);
        let o = MatchOrder::compute(&g).unwrap();
        // Last level closes the cycle: one In and one Out constraint.
        let last = &o.back_edges[2];
        assert_eq!(last.len(), 2);
        assert!(last.iter().any(|b| b.dir == Dir::In));
        assert!(last.iter().any(|b| b.dir == Dir::Out));
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::undirected(4, &[(0, 1), (2, 3)]);
        assert!(matches!(
            MatchOrder::compute(&g),
            Err(EngineError::DisconnectedQuery)
        ));
    }

    #[test]
    fn empty_rejected() {
        let g = Graph::undirected(0, &[]);
        assert!(matches!(
            MatchOrder::compute(&g),
            Err(EngineError::EmptyQuery)
        ));
    }

    #[test]
    fn id_bfs_policy_orders_by_id() {
        let o = MatchOrder::compute_with_policy(&chain(4), OrderPolicy::IdBfs).unwrap();
        assert_eq!(o.order, vec![0, 1, 2, 3]);
        // Degree-greedy picks a different (better) root on the chain.
        let g = MatchOrder::compute_with_policy(&chain(4), OrderPolicy::DegreeGreedy).unwrap();
        assert_eq!(g.order[0], 1);
    }

    #[test]
    fn from_order_rejects_disconnected_prefix() {
        // Order [0, 3, ...] on a chain: vertex 3 not adjacent to vertex 0.
        let err = MatchOrder::from_order(&chain(4), vec![0, 3, 1, 2]);
        assert!(matches!(err, Err(EngineError::DisconnectedQuery)));
    }

    #[test]
    fn position_inverts_order() {
        let o = MatchOrder::compute(&clique(5)).unwrap();
        for (l, &q) in o.order.iter().enumerate() {
            assert_eq!(o.position[q as usize], l);
        }
    }
}
