//! Continuous-query subscriptions over the serving tier.
//!
//! [`ServeTier::watch`] turns a tier into a batch-dynamic server: every
//! rank holds a replica [`DynamicSession`] of the live graph, standing
//! queries are registered on all replicas, and each applied
//! [`EdgeBatch`] is served by the lowest-numbered live rank (the
//! *primary*), which fans the resulting [`MatchDelta`]s out to
//! subscribed [`Watcher`]s. Surviving ranks replay every batch, so when
//! the tier's [`FaultPlan`](crate::FaultPlan) kills the primary —
//! the crash clock is the number of batches a rank has served, mirroring
//! the serve tier's chunk clock — the next live rank takes over with
//! byte-identical standing state and the delta stream continues without
//! a gap or a reset.
//!
//! SLO accounting covers per-delta latencies: each delta is committed to
//! the tier-style `Telemetry` under class `watch/q<id>` with the
//! fan-out wait as queue time and the simulated re-expansion cost as
//! execution time, so [`WatchSession::slo`] reports the same per-class
//! quantiles `cuts serve` emits.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

use cuts_gpu_sim::Counters;
use cuts_graph::{EdgeBatch, Graph};
use cuts_obs::{Arg, EventKind};

use crate::dynamic::{DynamicError, DynamicSession, MatchDelta, StandingQueryId};
use crate::error::{CutsError, EngineError};
use crate::fault::CrashFault;
use crate::result::MatchResult;
use crate::sched::{JobId, JobOutcome, SloReport, Telemetry};
use crate::serve::ServeTier;

/// One fanned-out delta as a subscriber sees it.
#[derive(Debug, Clone)]
pub struct WatchUpdate {
    /// 1-based sequence number of the batch that produced this delta.
    pub batch: u64,
    /// Rank that served the batch (changes on failover).
    pub rank: usize,
    /// The match delta itself.
    pub delta: MatchDelta,
}

/// Receiving end of a subscription: yields one [`WatchUpdate`] per
/// applied batch, in order.
#[derive(Debug)]
pub struct Watcher {
    /// The standing query this watcher follows.
    pub query: StandingQueryId,
    rx: Receiver<WatchUpdate>,
}

impl Watcher {
    /// Drains every update delivered so far.
    pub fn drain(&self) -> Vec<WatchUpdate> {
        self.rx.try_iter().collect()
    }
}

/// A serving tier in batch-dynamic mode. Built by [`ServeTier::watch`];
/// holds one graph replica per rank plus the subscription registry.
pub struct WatchSession<'t> {
    tier: &'t ServeTier,
    replicas: Vec<DynamicSession<'t>>,
    alive: Vec<bool>,
    crashes: Vec<CrashFault>,
    /// Batches applied so far — the failover crash clock.
    applied: u64,
    telem: Telemetry,
    subs: Vec<Vec<Sender<WatchUpdate>>>,
    lost_ranks: u64,
}

impl ServeTier {
    /// Enters batch-dynamic mode over `graph`: every rank gets a
    /// replica session on its first device. The tier's fault plan,
    /// telemetry switch and stats sink all apply to the watch session.
    pub fn watch(&self, graph: Graph) -> WatchSession<'_> {
        let cfg = self.config();
        let replicas: Vec<DynamicSession<'_>> = self
            .rank_devices()
            .iter()
            .map(|devs| DynamicSession::new(&devs[0], cfg.engine().clone(), graph.clone()))
            .collect();
        let ranks = replicas.len();
        WatchSession {
            tier: self,
            replicas,
            alive: vec![true; ranks],
            crashes: cfg.fault_plan().resolve(ranks).crashes,
            applied: 0,
            telem: Telemetry::with(cfg.telemetry_enabled(), cfg.stats_every(), cfg.stats_sink()),
            subs: Vec::new(),
            lost_ranks: 0,
        }
    }
}

impl WatchSession<'_> {
    /// Registers `query` as a standing query on every live replica and
    /// subscribes to its delta stream.
    pub fn subscribe(&mut self, query: &Graph) -> Result<Watcher, EngineError> {
        let mut id = None;
        for (r, replica) in self.replicas.iter_mut().enumerate() {
            if !self.alive[r] {
                continue;
            }
            let qid = replica.register(query)?;
            // Replicas register in lockstep, so ids agree across ranks.
            debug_assert!(id.is_none_or(|prev| prev == qid));
            id = Some(qid);
        }
        let id = id.expect("a validated tier always has a live rank");
        let (tx, rx) = channel();
        while self.subs.len() <= id.0 {
            self.subs.push(Vec::new());
        }
        self.subs[id.0].push(tx);
        Ok(Watcher { query: id, rx })
    }

    /// The standing query's current match set, read from the primary.
    pub fn match_set(
        &self,
        id: StandingQueryId,
    ) -> std::collections::BTreeSet<Vec<cuts_graph::VertexId>> {
        self.replicas[self.primary().expect("a live rank")].match_set(id)
    }

    /// Ground truth from the primary: full recompute over the live graph.
    pub fn recompute(
        &self,
        id: StandingQueryId,
    ) -> Result<std::collections::BTreeSet<Vec<cuts_graph::VertexId>>, EngineError> {
        self.replicas[self.primary().expect("a live rank")].recompute(id)
    }

    /// Lowest-numbered live rank, if any.
    pub fn primary(&self) -> Option<usize> {
        self.alive.iter().position(|&a| a)
    }

    /// Live rank count.
    pub fn live_ranks(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Ranks lost to the fault plan so far.
    pub fn lost_ranks(&self) -> u64 {
        self.lost_ranks
    }

    /// Batches applied so far.
    pub fn batches_applied(&self) -> u64 {
        self.applied
    }

    /// Per-class SLO quantiles over every delta committed so far.
    pub fn slo(&self) -> SloReport {
        self.telem.slo()
    }

    /// Applies `batch` tier-wide: the fault plan's crash clock advances
    /// (a rank with `after_chunks == n` dies before serving its
    /// `(n+1)`-th batch), every surviving replica replays the batch, and
    /// the primary's deltas are fanned out to watchers and committed to
    /// the SLO ledger. Returns the primary's deltas in registration
    /// order.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<Vec<MatchDelta>, CutsError> {
        let start = Instant::now();
        let trace = self.tier.serve_trace();
        // Crash boundary: batches already served is the chunk clock.
        for c in &self.crashes {
            if self.alive[c.rank] && (c.after_chunks as u64) <= self.applied {
                self.alive[c.rank] = false;
                self.lost_ranks += 1;
                trace.instant_with(
                    EventKind::Batch,
                    "rank_lost",
                    &[
                        ("rank", Arg::U64(c.rank as u64)),
                        ("batch", Arg::U64(self.applied)),
                    ],
                );
            }
        }
        let primary = self.primary().ok_or(CutsError::Invalid {
            what: "fault_plan",
            given: "every rank dead before batch".to_string(),
        })?;
        let mut primary_deltas = None;
        for r in 0..self.replicas.len() {
            if !self.alive[r] {
                continue;
            }
            let out = self.replicas[r].apply_batch(batch).map_err(|e| match e {
                DynamicError::Batch(b) => CutsError::Invalid {
                    what: "edge_batch",
                    given: b.to_string(),
                },
                DynamicError::Engine(e) => CutsError::Engine(e),
            })?;
            if r == primary {
                primary_deltas = Some(out.deltas);
            }
        }
        let deltas = primary_deltas.expect("primary is alive and was replayed");
        self.applied += 1;
        let queue_millis = start.elapsed().as_secs_f64() * 1e3;
        for d in &deltas {
            let class = format!("watch/q{}", d.query.0);
            let outcome = JobOutcome {
                id: JobId(self.applied * 1000 + d.query.0 as u64),
                name: Some(class.clone()),
                device: primary,
                lane: 0,
                queue_millis,
                exec_millis: d.sim_millis,
                trie_entries: d.released_entries,
                stolen: false,
                result: Ok(MatchResult {
                    num_matches: d.len() as u64,
                    level_counts: Vec::new(),
                    counters: Counters::default(),
                    sim_millis: d.sim_millis,
                    wall_millis: queue_millis,
                    used_chunking: false,
                    order: Vec::new(),
                }),
            };
            self.telem.on_finish(&class, None, &outcome);
            if let Some(subs) = self.subs.get(d.query.0) {
                for tx in subs {
                    let _ = tx.send(WatchUpdate {
                        batch: self.applied,
                        rank: primary,
                        delta: d.clone(),
                    });
                }
            }
        }
        self.telem.maybe_emit(self.applied);
        Ok(deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::serve::ServeConfig;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{clique, mesh2d};
    use std::collections::BTreeSet;

    fn tier(ranks: usize, fault: Option<FaultPlan>) -> ServeTier {
        let mut b = ServeConfig::builder()
            .ranks(ranks)
            .lanes(1)
            .device_config(DeviceConfig::test_small());
        if let Some(f) = fault {
            b = b.fault_plan(f);
        }
        ServeTier::new(b.build().unwrap())
    }

    #[test]
    fn watcher_sees_every_delta_and_slo_fills() {
        let t = tier(2, None);
        let mut w = t.watch(mesh2d(2, 3));
        let watcher = w.subscribe(&clique(3)).unwrap();
        let mut b = EdgeBatch::new();
        b.insert(0, 4);
        w.apply_batch(&b).unwrap();
        let mut b = EdgeBatch::new();
        b.delete(0, 4);
        w.apply_batch(&b).unwrap();

        let updates = watcher.drain();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].delta.added.len(), 12);
        assert_eq!(updates[1].delta.removed.len(), 12);
        assert_eq!(w.match_set(watcher.query).len(), 0);

        let slo = w.slo();
        let c = slo.class("watch/q0").expect("watch class accounted");
        assert_eq!(c.completed, 2);
    }

    #[test]
    fn failover_keeps_delta_stream_seamless() {
        // Rank 0 dies after serving one batch; rank 1 takes over.
        let plan = FaultPlan::parse("crash:0@1").unwrap();
        let t = tier(2, Some(plan));
        let mut w = t.watch(mesh2d(2, 3));
        let watcher = w.subscribe(&clique(3)).unwrap();
        let mut folded: BTreeSet<Vec<u32>> = BTreeSet::new();

        let edits: [(bool, u32, u32); 3] = [(true, 0, 4), (false, 0, 4), (true, 1, 3)];
        for (add, u, v) in edits {
            let mut b = EdgeBatch::new();
            if add {
                b.insert(u, v);
            } else {
                b.delete(u, v);
            }
            w.apply_batch(&b).unwrap();
        }
        assert_eq!(w.live_ranks(), 1);
        assert_eq!(w.lost_ranks(), 1);
        assert_eq!(w.primary(), Some(1));

        let updates = watcher.drain();
        assert_eq!(updates.len(), 3);
        assert_eq!(updates[0].rank, 0);
        assert_eq!(updates[1].rank, 1, "failover before the second batch");
        for u in &updates {
            for r in &u.delta.removed {
                assert!(folded.remove(r));
            }
            for a in &u.delta.added {
                assert!(folded.insert(a.clone()));
            }
        }
        assert_eq!(folded, w.recompute(watcher.query).unwrap());
    }
}
