//! Intersection micro-kernels (§4.1.3, Algorithm 2).
//!
//! Three strategies intersect the adjacency lists of the already-matched
//! neighbours of the query vertex being extended:
//!
//! * [`ScatterScratch::scatter_vector`] — the SpGEMM-style scatter-vector:
//!   O(χ·δ) time but O(|V|) scratch *per worker*, which the paper rules
//!   out on device; kept as the CPU reference and ablation baseline.
//! * [`c_intersection`] — stream each subsequent list against a shared-
//!   memory buffer holding the running intersection.
//! * [`p_intersection`] — keep only the first list and verify each of its
//!   candidates against the remaining constraints by probing their sorted
//!   adjacency. (Probing `v ∈ children(a_k)` is exactly the paper's
//!   "parent set of `v` includes `a_k`" check, expressed on the same CSR.)
//! * [`b_intersection`] — the GSI-style bitmap probe: encode the shortest
//!   list as a word-packed bitmap over its value span in shared memory,
//!   then stream every other list against it with O(1) probes.
//!
//! [`choose`] implements the adaptive selection the paper alludes to: pick
//! whichever of c/p/b moves fewer words for the lists at hand *and* fits
//! the block's shared-memory budget (the c and b arms both keep state
//! resident in shared memory; an arm whose buffer cannot fit is never
//! selected).
//!
//! All kernels are instrumented: they charge DRAM/shared traffic and the
//! masked-lane idle slots implied by the virtual-warp width, which is how
//! the thread-idling claims of §4.1.2 become measurable.

use cuts_gpu_sim::BlockCounters;
use cuts_graph::{Graph, VertexId};

use crate::order::Dir;

/// Adjacency list that constrains the next candidate: neighbours of the
/// already-matched data vertex in the direction the query edge demands.
#[inline]
pub fn constraint_list(g: &Graph, matched: VertexId, dir: Dir) -> &[VertexId] {
    match dir {
        Dir::In => g.in_neighbors(matched),
        Dir::Out => g.out_neighbors(matched),
    }
}

/// Ceil-log2 with a floor of 1 (binary-search probe cost in words).
#[inline]
pub(crate) fn probe_cost(len: usize) -> usize {
    usize::BITS as usize - len.max(2).leading_zeros() as usize
}

/// Device words (u32) of a bit-per-value bitmap covering `span` values.
#[inline]
pub(crate) fn bitmap_words(span: usize) -> usize {
    span.div_ceil(32)
}

/// Value span (`last − first + 1`) of a sorted non-empty list.
#[inline]
fn list_span(list: &[VertexId]) -> usize {
    match (list.first(), list.last()) {
        (Some(&lo), Some(&hi)) => (hi - lo) as usize + 1,
        _ => 0,
    }
}

/// Charges the masked-lane idle slots of processing `len` elements with a
/// virtual warp of `width` lanes: lanes in the final, partially-filled
/// group execute predicated no-ops.
#[inline]
fn charge_idle(ctr: &mut BlockCounters, len: usize, width: usize) {
    let slots = len.div_ceil(width.max(1)) * width;
    let idle = slots - len;
    if idle > 0 {
        ctr.alu(idle);
        ctr.diverge();
    }
}

/// c-intersection (Algorithm 2, lines 19-31). `lists` must be sorted;
/// the result in `out` is sorted. Empty `lists` yields an empty result.
pub fn c_intersection(
    lists: &[&[VertexId]],
    vwarp: usize,
    ctr: &mut BlockCounters,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let Some((first, rest)) = lists.split_first() else {
        return;
    };
    // Warp loads children of a1 into the shared buffer, coalesced.
    ctr.dram_read_coalesced(first.len());
    ctr.shmem_write(first.len());
    charge_idle(ctr, first.len(), vwarp);
    out.extend_from_slice(first);
    let mut tmp: Vec<VertexId> = Vec::with_capacity(out.len());
    for list in rest {
        if out.is_empty() {
            return;
        }
        // Lanes load this constraint's children to registers, coalesced,
        // then probe the shared buffer.
        ctr.dram_read_coalesced(list.len());
        charge_idle(ctr, list.len(), vwarp);
        tmp.clear();
        for &v in *list {
            ctr.shmem_read(probe_cost(out.len()));
            if out.binary_search(&v).is_ok() {
                tmp.push(v);
            }
        }
        // interset2 replaces interset1 in shared memory.
        ctr.shmem_write(tmp.len());
        std::mem::swap(out, &mut tmp);
    }
}

/// p-intersection (Algorithm 2, lines 33-42). `lists` must be sorted; the
/// result is sorted (subsequence of the first list).
pub fn p_intersection(
    lists: &[&[VertexId]],
    vwarp: usize,
    ctr: &mut BlockCounters,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let Some((first, rest)) = lists.split_first() else {
        return;
    };
    ctr.dram_read_coalesced(first.len());
    charge_idle(ctr, first.len(), vwarp);
    'cand: for &v in *first {
        for list in rest {
            // Binary probe into the constraint's adjacency in global
            // memory: uncoalesced, log(len) words touched.
            ctr.dram_read_random(probe_cost(list.len()));
            if list.binary_search(&v).is_err() {
                continue 'cand;
            }
        }
        out.push(v);
    }
    ctr.shmem_write(out.len());
}

/// b-intersection (bitmap probe). The shortest list is encoded as a
/// word-packed bitmap over its value span in shared memory, then every
/// other list is streamed against it: one coalesced read per constraint
/// word, one O(1) shared probe per in-span element — no log-cost probes
/// at all. Hits are re-encoded into a second bitmap (double-buffered like
/// the c-kernel's interset1/interset2), and the survivors are extracted
/// in ascending order at the end.
///
/// `lists` must be sorted and duplicate-free (CSR adjacency guarantees
/// both); the result in `out` is sorted. When the double-buffered bitmap
/// would not fit `shared_words`, the kernel degrades to
/// [`c_intersection`] — identical results, honestly charged.
pub fn b_intersection(
    lists: &[&[VertexId]],
    vwarp: usize,
    shared_words: usize,
    ctr: &mut BlockCounters,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let Some((first, rest)) = lists.split_first() else {
        return;
    };
    if first.is_empty() {
        return;
    }
    let lo = first[0] as usize;
    let words = bitmap_words(list_span(first));
    if 2 * words > shared_words.max(1) {
        // Span too wide for the double-buffered bitmap: fall back.
        return c_intersection(lists, vwarp, ctr, out);
    }
    // Encode: stream the shortest list once (coalesced), zero the bitmap,
    // set one bit per element.
    ctr.dram_read_coalesced(first.len());
    ctr.shmem_write(words + first.len());
    charge_idle(ctr, first.len(), vwarp);
    let mut cur = vec![0u32; words];
    for &v in *first {
        let b = v as usize - lo;
        cur[b / 32] |= 1 << (b % 32);
    }
    let hi = lo + list_span(first) - 1;
    let mut next = vec![0u32; words];
    for list in rest {
        // Stream the constraint coalesced; one shared probe per in-span
        // element (the out-of-span bounds test is register-only ALU).
        ctr.dram_read_coalesced(list.len());
        ctr.alu(list.len());
        charge_idle(ctr, list.len(), vwarp);
        ctr.shmem_write(words); // zero the target buffer
        let mut kept = 0usize;
        for &v in *list {
            let v = v as usize;
            if v < lo || v > hi {
                continue;
            }
            let b = v - lo;
            ctr.shmem_read(1);
            if cur[b / 32] & (1 << (b % 32)) != 0 {
                next[b / 32] |= 1 << (b % 32);
                kept += 1;
            }
        }
        ctr.shmem_write(kept);
        std::mem::swap(&mut cur, &mut next);
        next.iter_mut().for_each(|w| *w = 0);
        if kept == 0 {
            return;
        }
    }
    // Extract set bits ascending: result is sorted by construction.
    ctr.shmem_read(words);
    for (wi, &w) in cur.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            out.push((lo + wi * 32 + b) as VertexId);
            w &= w - 1;
        }
    }
    charge_idle(ctr, out.len(), vwarp);
}

/// Micro-kernel choice for one partial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Stream-and-probe against the shared buffer.
    C,
    /// Probe-first-list against the other adjacencies.
    P,
    /// Bitmap-encode the first list, stream the others against it.
    B,
}

impl Method {
    /// Short lower-case name, used in kernel labels and obs events.
    pub fn name(&self) -> &'static str {
        match self {
            Method::C => "c",
            Method::P => "p",
            Method::B => "bitmap",
        }
    }
}

/// The shared cost model behind [`choose`] and the plan-time
/// `KernelPolicy`, expressed over scalar list statistics so both exact
/// per-path lists and plan-time estimates can be priced identically.
///
/// * `first_len` — length of the shortest (buffered/encoded) list
/// * `bmp_words` — bitmap words covering the first list's value span
/// * `stream` — total length of the remaining lists (words each of c/b
///   streams from DRAM)
/// * `probe_words` — Σ log-probe cost over the remaining lists (p's
///   per-candidate random-read bill)
/// * `shared_words` — the block's shared-memory budget in words
pub(crate) fn pick_method(
    first_len: usize,
    bmp_words: usize,
    stream: usize,
    probe_words: usize,
    shared_words: usize,
) -> Method {
    let budget = shared_words.max(1);
    // Feasibility: c double-buffers the running intersection
    // (interset1/interset2 — 2·|first| words resident); b double-buffers
    // the span bitmap. p keeps nothing resident and always fits.
    let c_fits = first_len != 0 && 2 * first_len <= budget;
    let b_fits = first_len != 0 && 2 * bmp_words <= budget;
    if stream == 0 {
        // Single-list case: copy through shared if it fits.
        return if c_fits { Method::C } else { Method::P };
    }
    // Subgraph isomorphism is memory-bound (§6), so DRAM words decide
    // first: c and b both stream every other list once (`stream`), while
    // p issues log-cost random probes per buffered candidate.
    let cost_p = first_len * probe_words;
    if cost_p < stream || (!c_fits && !b_fits) {
        return Method::P;
    }
    // c vs b move the same DRAM words; break the tie on shared-memory
    // traffic: c pays a log-probe per streamed element, b pays O(1)
    // probes plus the encode (zero + set + per-pass clears).
    let shmem_c = stream * probe_cost(first_len);
    let shmem_b = first_len + 2 * bmp_words + stream;
    if b_fits && (!c_fits || shmem_b < shmem_c) {
        Method::B
    } else if c_fits {
        Method::C
    } else {
        Method::B
    }
}

/// Adaptive per-path selection: estimated words moved by each method
/// (the paper's "we adaptively choose the intersection method, which
/// enables higher performance"), constrained by the block's shared-
/// memory budget — an arm whose resident buffer cannot fit
/// `shared_words` is never picked.
pub fn choose(lists: &[&[VertexId]], shared_words: usize) -> Method {
    let Some((first, rest)) = lists.split_first() else {
        return Method::C;
    };
    let stream: usize = rest.iter().map(|l| l.len()).sum();
    let probe_words: usize = rest.iter().map(|l| probe_cost(l.len())).sum();
    pick_method(
        first.len(),
        bitmap_words(list_span(first)),
        stream,
        probe_words,
        shared_words,
    )
}

/// O(|V|)-scratch scatter-vector intersection (Algorithm 2, lines 7-17).
/// The scratch is reusable across calls via epoch tagging, so repeated use
/// costs O(χ·δ), not O(|V|).
pub struct ScatterScratch {
    mark: Vec<u32>,
    count: Vec<u32>,
    epoch: u32,
}

impl ScatterScratch {
    /// Scratch for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        ScatterScratch {
            mark: vec![0; n],
            count: vec![0; n],
            epoch: 0,
        }
    }

    /// Intersects sorted `lists`; result sorted. Charges counters like a
    /// single-thread device worker (the paper's point is that parallel
    /// workers would each need their own O(|V|) scratch).
    pub fn scatter_vector(
        &mut self,
        lists: &[&[VertexId]],
        ctr: &mut BlockCounters,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        let Some((first, _)) = lists.split_first() else {
            return;
        };
        self.epoch += 1;
        let chi = lists.len() as u32;
        for list in lists {
            ctr.dram_read_coalesced(list.len());
            for &v in *list {
                if self.mark[v as usize] != self.epoch {
                    self.mark[v as usize] = self.epoch;
                    self.count[v as usize] = 0;
                }
                self.count[v as usize] += 1;
                ctr.alu(2);
            }
        }
        // Collect from the first list (a superset of the intersection).
        for &v in *first {
            ctr.alu(1);
            if self.mark[v as usize] == self.epoch && self.count[v as usize] == chi {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_intersection(lists: &[&[u32]]) -> Vec<u32> {
        let Some((first, rest)) = lists.split_first() else {
            return Vec::new();
        };
        first
            .iter()
            .copied()
            .filter(|v| rest.iter().all(|l| l.contains(v)))
            .collect()
    }

    /// Generous shared budget (the test_small device config).
    const SHARED: usize = 4096;

    fn all_methods(lists: &[&[u32]]) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut ctr = BlockCounters::default();
        let (mut c, mut p, mut b, mut s) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        c_intersection(lists, 4, &mut ctr, &mut c);
        p_intersection(lists, 4, &mut ctr, &mut p);
        b_intersection(lists, 4, SHARED, &mut ctr, &mut b);
        ScatterScratch::new(1000).scatter_vector(lists, &mut ctr, &mut s);
        (c, p, b, s)
    }

    #[test]
    fn methods_agree_on_examples() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 3, 5, 7], vec![2, 3, 5, 8], vec![3, 5, 9]],
            vec![vec![1, 2, 3]],
            vec![vec![], vec![1, 2]],
            vec![vec![1, 2], vec![]],
            vec![vec![1, 2, 3], vec![4, 5, 6]],
            vec![vec![0, 999], vec![0, 999], vec![0, 999]],
        ];
        for case in cases {
            let lists: Vec<&[u32]> = case.iter().map(|v| v.as_slice()).collect();
            let want = naive_intersection(&lists);
            let (c, p, b, s) = all_methods(&lists);
            assert_eq!(c, want, "c-intersection {case:?}");
            assert_eq!(p, want, "p-intersection {case:?}");
            assert_eq!(b, want, "b-intersection {case:?}");
            assert_eq!(s, want, "scatter-vector {case:?}");
        }
    }

    #[test]
    fn empty_input() {
        let (c, p, b, s) = all_methods(&[]);
        assert!(c.is_empty() && p.is_empty() && b.is_empty() && s.is_empty());
    }

    #[test]
    fn results_stay_sorted() {
        let a: Vec<u32> = (0..100).step_by(3).collect();
        let b: Vec<u32> = (0..100).step_by(2).collect();
        let (c, p, bm, s) = all_methods(&[&a, &b]);
        for r in [&c, &p, &bm, &s] {
            assert!(r.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(c, (0..100).step_by(6).collect::<Vec<u32>>());
    }

    #[test]
    fn bitmap_falls_back_when_span_exceeds_budget() {
        // Span 1M values → ~31k bitmap words, far over a 4096-word
        // budget even though the list itself is short.
        let a: Vec<u32> = vec![0, 1_000_000];
        let b: Vec<u32> = vec![0, 5, 1_000_000];
        let mut ctr = BlockCounters::default();
        let mut out = Vec::new();
        b_intersection(&[&a, &b], 4, SHARED, &mut ctr, &mut out);
        assert_eq!(out, vec![0, 1_000_000]);
        // And the chooser never picks the bitmap arm for that span.
        assert_ne!(choose(&[&a, &b], SHARED), Method::B);
    }

    #[test]
    fn adaptive_prefers_p_for_tiny_buffer() {
        let small: Vec<u32> = vec![5];
        let huge: Vec<u32> = (0..10_000).collect();
        assert_eq!(choose(&[&small, &huge], SHARED), Method::P);
        // Similar dense sizes: streaming wins, and the bitmap arm beats
        // c on shared traffic (O(1) probes vs log-probes).
        let a: Vec<u32> = (0..32).collect();
        let b: Vec<u32> = (0..32).collect();
        assert_eq!(choose(&[&a, &b], SHARED), Method::B);
        assert_eq!(choose(&[&a], SHARED), Method::C);
        // Wide sparse span: bitmap infeasible, c carries the day.
        let sp: Vec<u32> = (0..32).map(|v| v * 100_000).collect();
        let sq: Vec<u32> = (0..32).map(|v| v * 100_000 + (v % 2)).collect();
        assert_eq!(choose(&[&sp, &sq], SHARED), Method::C);
    }

    #[test]
    fn choose_respects_shared_budget() {
        // Satellite fix: the old model ignored the device budget and
        // happily picked c with a running buffer bigger than shared
        // memory. first = 3000 words → c needs 6000 resident words.
        let first: Vec<u32> = (0..3000).collect();
        let second: Vec<u32> = (0..3000).collect();
        assert_ne!(choose(&[&first, &second], 4096), Method::C);
        // The bitmap double-buffer covers the same span in
        // 2·ceil(3000/32) = 188 words: feasible and picked.
        assert_eq!(choose(&[&first, &second], 4096), Method::B);
        // A budget too small for either resident arm forces p.
        assert_eq!(choose(&[&first, &second], 64), Method::P);
        // Sweep: whatever is picked, its resident footprint must fit.
        for budget in [1usize, 16, 64, 256, 4096, 1 << 20] {
            match choose(&[&first, &second], budget) {
                Method::C => assert!(2 * first.len() <= budget, "c overflows {budget}"),
                Method::B => assert!(
                    2 * bitmap_words(first.len()) <= budget,
                    "bitmap overflows {budget}"
                ),
                Method::P => {}
            }
        }
    }

    #[test]
    fn bitmap_counters_model_o1_probes() {
        // Dense same-span lists: b's shared reads are one per streamed
        // element (+ final extraction scan), strictly below c's
        // log-probe bill for lists this long.
        let a: Vec<u32> = (0..2000).collect();
        let b: Vec<u32> = (0..2000).collect();
        let (mut cc, mut cb) = (BlockCounters::default(), BlockCounters::default());
        let (mut outc, mut outb) = (Vec::new(), Vec::new());
        c_intersection(&[&a, &b], 4, &mut cc, &mut outc);
        b_intersection(&[&a, &b], 4, SHARED, &mut cb, &mut outb);
        assert_eq!(outc, outb);
        assert!(
            cb.c.shmem_reads < cc.c.shmem_reads,
            "bitmap probes {} must undercut c probes {}",
            cb.c.shmem_reads,
            cc.c.shmem_reads
        );
        // Both arms stream the same DRAM words.
        assert_eq!(cb.c.dram_reads, cc.c.dram_reads);
    }

    #[test]
    fn wide_warps_charge_more_idle() {
        let a: Vec<u32> = (0..3).collect(); // list shorter than a warp
        let b: Vec<u32> = (0..3).collect();
        let mut narrow = BlockCounters::default();
        let mut wide = BlockCounters::default();
        let mut out = Vec::new();
        c_intersection(&[&a, &b], 2, &mut narrow, &mut out);
        c_intersection(&[&a, &b], 32, &mut wide, &mut out);
        assert!(
            wide.c.instructions > narrow.c.instructions,
            "32-wide {} vs 2-wide {}",
            wide.c.instructions,
            narrow.c.instructions
        );
    }

    #[test]
    fn scatter_scratch_reusable_across_epochs() {
        let mut s = ScatterScratch::new(10);
        let mut ctr = BlockCounters::default();
        let mut out = Vec::new();
        s.scatter_vector(&[&[1, 2, 3], &[2, 3]], &mut ctr, &mut out);
        assert_eq!(out, vec![2, 3]);
        // Second call must not see stale counts.
        s.scatter_vector(&[&[2, 4], &[4]], &mut ctr, &mut out);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn constraint_list_direction() {
        let g = Graph::directed(3, &[(0, 1), (2, 1)]);
        assert_eq!(constraint_list(&g, 0, Dir::Out), &[1]);
        assert_eq!(constraint_list(&g, 1, Dir::In), &[0, 2]);
        assert_eq!(constraint_list(&g, 1, Dir::Out), &[] as &[u32]);
    }

    use cuts_graph::Graph;
}
