//! Intersection micro-kernels (§4.1.3, Algorithm 2).
//!
//! Three strategies intersect the adjacency lists of the already-matched
//! neighbours of the query vertex being extended:
//!
//! * [`ScatterScratch::scatter_vector`] — the SpGEMM-style scatter-vector:
//!   O(χ·δ) time but O(|V|) scratch *per worker*, which the paper rules
//!   out on device; kept as the CPU reference and ablation baseline.
//! * [`c_intersection`] — stream each subsequent list against a shared-
//!   memory buffer holding the running intersection.
//! * [`p_intersection`] — keep only the first list and verify each of its
//!   candidates against the remaining constraints by probing their sorted
//!   adjacency. (Probing `v ∈ children(a_k)` is exactly the paper's
//!   "parent set of `v` includes `a_k`" check, expressed on the same CSR.)
//!
//! [`choose`] implements the adaptive selection the paper alludes to: pick
//! whichever of c/p moves fewer words for the lists at hand.
//!
//! All kernels are instrumented: they charge DRAM/shared traffic and the
//! masked-lane idle slots implied by the virtual-warp width, which is how
//! the thread-idling claims of §4.1.2 become measurable.

use cuts_gpu_sim::BlockCounters;
use cuts_graph::{Graph, VertexId};

use crate::order::Dir;

/// Adjacency list that constrains the next candidate: neighbours of the
/// already-matched data vertex in the direction the query edge demands.
#[inline]
pub fn constraint_list(g: &Graph, matched: VertexId, dir: Dir) -> &[VertexId] {
    match dir {
        Dir::In => g.in_neighbors(matched),
        Dir::Out => g.out_neighbors(matched),
    }
}

/// Ceil-log2 with a floor of 1 (binary-search probe cost in words).
#[inline]
fn probe_cost(len: usize) -> usize {
    usize::BITS as usize - len.max(2).leading_zeros() as usize
}

/// Charges the masked-lane idle slots of processing `len` elements with a
/// virtual warp of `width` lanes: lanes in the final, partially-filled
/// group execute predicated no-ops.
#[inline]
fn charge_idle(ctr: &mut BlockCounters, len: usize, width: usize) {
    let slots = len.div_ceil(width.max(1)) * width;
    let idle = slots - len;
    if idle > 0 {
        ctr.alu(idle);
        ctr.diverge();
    }
}

/// c-intersection (Algorithm 2, lines 19-31). `lists` must be sorted;
/// the result in `out` is sorted. Empty `lists` yields an empty result.
pub fn c_intersection(
    lists: &[&[VertexId]],
    vwarp: usize,
    ctr: &mut BlockCounters,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let Some((first, rest)) = lists.split_first() else {
        return;
    };
    // Warp loads children of a1 into the shared buffer, coalesced.
    ctr.dram_read_coalesced(first.len());
    ctr.shmem_write(first.len());
    charge_idle(ctr, first.len(), vwarp);
    out.extend_from_slice(first);
    let mut tmp: Vec<VertexId> = Vec::with_capacity(out.len());
    for list in rest {
        if out.is_empty() {
            return;
        }
        // Lanes load this constraint's children to registers, coalesced,
        // then probe the shared buffer.
        ctr.dram_read_coalesced(list.len());
        charge_idle(ctr, list.len(), vwarp);
        tmp.clear();
        for &v in *list {
            ctr.shmem_read(probe_cost(out.len()));
            if out.binary_search(&v).is_ok() {
                tmp.push(v);
            }
        }
        // interset2 replaces interset1 in shared memory.
        ctr.shmem_write(tmp.len());
        std::mem::swap(out, &mut tmp);
    }
}

/// p-intersection (Algorithm 2, lines 33-42). `lists` must be sorted; the
/// result is sorted (subsequence of the first list).
pub fn p_intersection(
    lists: &[&[VertexId]],
    vwarp: usize,
    ctr: &mut BlockCounters,
    out: &mut Vec<VertexId>,
) {
    out.clear();
    let Some((first, rest)) = lists.split_first() else {
        return;
    };
    ctr.dram_read_coalesced(first.len());
    charge_idle(ctr, first.len(), vwarp);
    'cand: for &v in *first {
        for list in rest {
            // Binary probe into the constraint's adjacency in global
            // memory: uncoalesced, log(len) words touched.
            ctr.dram_read_random(probe_cost(list.len()));
            if list.binary_search(&v).is_err() {
                continue 'cand;
            }
        }
        out.push(v);
    }
    ctr.shmem_write(out.len());
}

/// Micro-kernel choice for one partial path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Stream-and-probe against the shared buffer.
    C,
    /// Probe-first-list against the other adjacencies.
    P,
}

/// Adaptive selection: estimated words moved by each method; the paper's
/// "we adaptively choose the intersection method, which enables higher
/// performance".
pub fn choose(lists: &[&[VertexId]]) -> Method {
    if lists.len() <= 1 {
        return Method::C;
    }
    // Subgraph isomorphism is memory-bound (§6), so compare DRAM words
    // only: both methods stream the first list; beyond that, c streams
    // every other list once (its membership probes hit shared memory,
    // which the roofline prices far cheaper), while p issues log-cost
    // random probes into global memory per buffered candidate.
    let first = lists[0].len();
    let cost_c: usize = lists[1..].iter().map(|l| l.len()).sum();
    let cost_p = first
        * lists[1..]
            .iter()
            .map(|l| probe_cost(l.len()))
            .sum::<usize>();
    if cost_p < cost_c {
        Method::P
    } else {
        Method::C
    }
}

/// O(|V|)-scratch scatter-vector intersection (Algorithm 2, lines 7-17).
/// The scratch is reusable across calls via epoch tagging, so repeated use
/// costs O(χ·δ), not O(|V|).
pub struct ScatterScratch {
    mark: Vec<u32>,
    count: Vec<u32>,
    epoch: u32,
}

impl ScatterScratch {
    /// Scratch for graphs with up to `n` vertices.
    pub fn new(n: usize) -> Self {
        ScatterScratch {
            mark: vec![0; n],
            count: vec![0; n],
            epoch: 0,
        }
    }

    /// Intersects sorted `lists`; result sorted. Charges counters like a
    /// single-thread device worker (the paper's point is that parallel
    /// workers would each need their own O(|V|) scratch).
    pub fn scatter_vector(
        &mut self,
        lists: &[&[VertexId]],
        ctr: &mut BlockCounters,
        out: &mut Vec<VertexId>,
    ) {
        out.clear();
        let Some((first, _)) = lists.split_first() else {
            return;
        };
        self.epoch += 1;
        let chi = lists.len() as u32;
        for list in lists {
            ctr.dram_read_coalesced(list.len());
            for &v in *list {
                if self.mark[v as usize] != self.epoch {
                    self.mark[v as usize] = self.epoch;
                    self.count[v as usize] = 0;
                }
                self.count[v as usize] += 1;
                ctr.alu(2);
            }
        }
        // Collect from the first list (a superset of the intersection).
        for &v in *first {
            ctr.alu(1);
            if self.mark[v as usize] == self.epoch && self.count[v as usize] == chi {
                out.push(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_intersection(lists: &[&[u32]]) -> Vec<u32> {
        let Some((first, rest)) = lists.split_first() else {
            return Vec::new();
        };
        first
            .iter()
            .copied()
            .filter(|v| rest.iter().all(|l| l.contains(v)))
            .collect()
    }

    fn all_methods(lists: &[&[u32]]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut ctr = BlockCounters::default();
        let (mut c, mut p, mut s) = (Vec::new(), Vec::new(), Vec::new());
        c_intersection(lists, 4, &mut ctr, &mut c);
        p_intersection(lists, 4, &mut ctr, &mut p);
        ScatterScratch::new(1000).scatter_vector(lists, &mut ctr, &mut s);
        (c, p, s)
    }

    #[test]
    fn methods_agree_on_examples() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 3, 5, 7], vec![2, 3, 5, 8], vec![3, 5, 9]],
            vec![vec![1, 2, 3]],
            vec![vec![], vec![1, 2]],
            vec![vec![1, 2], vec![]],
            vec![vec![1, 2, 3], vec![4, 5, 6]],
            vec![vec![0, 999], vec![0, 999], vec![0, 999]],
        ];
        for case in cases {
            let lists: Vec<&[u32]> = case.iter().map(|v| v.as_slice()).collect();
            let want = naive_intersection(&lists);
            let (c, p, s) = all_methods(&lists);
            assert_eq!(c, want, "c-intersection {case:?}");
            assert_eq!(p, want, "p-intersection {case:?}");
            assert_eq!(s, want, "scatter-vector {case:?}");
        }
    }

    #[test]
    fn empty_input() {
        let (c, p, s) = all_methods(&[]);
        assert!(c.is_empty() && p.is_empty() && s.is_empty());
    }

    #[test]
    fn results_stay_sorted() {
        let a: Vec<u32> = (0..100).step_by(3).collect();
        let b: Vec<u32> = (0..100).step_by(2).collect();
        let (c, p, s) = all_methods(&[&a, &b]);
        for r in [&c, &p, &s] {
            assert!(r.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(c, (0..100).step_by(6).collect::<Vec<u32>>());
    }

    #[test]
    fn adaptive_prefers_p_for_tiny_buffer() {
        let small: Vec<u32> = vec![5];
        let huge: Vec<u32> = (0..10_000).collect();
        assert_eq!(choose(&[&small, &huge]), Method::P);
        // Similar sizes: streaming wins.
        let a: Vec<u32> = (0..32).collect();
        let b: Vec<u32> = (0..32).collect();
        assert_eq!(choose(&[&a, &b]), Method::C);
        assert_eq!(choose(&[&a]), Method::C);
    }

    #[test]
    fn wide_warps_charge_more_idle() {
        let a: Vec<u32> = (0..3).collect(); // list shorter than a warp
        let b: Vec<u32> = (0..3).collect();
        let mut narrow = BlockCounters::default();
        let mut wide = BlockCounters::default();
        let mut out = Vec::new();
        c_intersection(&[&a, &b], 2, &mut narrow, &mut out);
        c_intersection(&[&a, &b], 32, &mut wide, &mut out);
        assert!(
            wide.c.instructions > narrow.c.instructions,
            "32-wide {} vs 2-wide {}",
            wide.c.instructions,
            narrow.c.instructions
        );
    }

    #[test]
    fn scatter_scratch_reusable_across_epochs() {
        let mut s = ScatterScratch::new(10);
        let mut ctr = BlockCounters::default();
        let mut out = Vec::new();
        s.scatter_vector(&[&[1, 2, 3], &[2, 3]], &mut ctr, &mut out);
        assert_eq!(out, vec![2, 3]);
        // Second call must not see stale counts.
        s.scatter_vector(&[&[2, 4], &[4]], &mut ctr, &mut out);
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn constraint_list_direction() {
        let g = Graph::directed(3, &[(0, 1), (2, 1)]);
        assert_eq!(constraint_list(&g, 0, Dir::Out), &[1]);
        assert_eq!(constraint_list(&g, 1, Dir::In), &[0, 2]);
        assert_eq!(constraint_list(&g, 1, Dir::Out), &[] as &[u32]);
    }

    use cuts_graph::Graph;
}
