//! Query planning: the immutable, device-independent half of a run.
//!
//! A [`QueryPlan`] captures everything about executing one query that does
//! not depend on *which* data graph arrives or *which* device instance
//! executes it: the §4 matching order with its per-level back-edge
//! constraints, the expand-parameter schedule derived from the engine
//! configuration, and the trie budget implied by the device *class*. Build
//! it once, run it many times through a [`crate::ExecSession`] — this is
//! the plan-then-execute split every serving engine (including the GSI
//! design the paper benchmarks against) uses to keep per-query latency at
//! kernel cost rather than planning-plus-allocation cost.
//!
//! Plans are keyed by [`PlanKey`] — a fingerprint of (query structure,
//! engine configuration, device class) — so a [`crate::PlanCache`] can
//! recognise a repeat query without holding the query graph itself.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cuts_gpu_sim::DeviceConfig;
use cuts_graph::Graph;

use crate::complexity::ComplexityModel;
use crate::config::{EngineConfig, IntersectStrategy};
use crate::error::EngineError;
use crate::order::MatchOrder;

/// The capacity-relevant equivalence class of a device: two devices of the
/// same class can execute the same plan with identical results, because
/// everything a plan depends on (trie budget, launch geometry limits) is
/// derived from these fields alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceClass {
    /// Device model name (e.g. `sim-V100`).
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub num_sms: usize,
    /// Shared memory per block, in words.
    pub shared_mem_words_per_block: usize,
    /// Global memory capacity, in words.
    pub global_mem_words: usize,
}

impl DeviceClass {
    /// The class of a concrete device configuration.
    pub fn of(config: &DeviceConfig) -> Self {
        DeviceClass {
            name: config.name,
            num_sms: config.num_sms,
            shared_mem_words_per_block: config.shared_mem_words_per_block,
            global_mem_words: config.global_mem_words,
        }
    }

    /// Fingerprint used as the [`PlanKey::device_class`] component; also
    /// recomputed when decoding a snapshot to validate a stored key.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.name.hash(&mut h);
        self.num_sms.hash(&mut h);
        self.shared_mem_words_per_block.hash(&mut h);
        self.global_mem_words.hash(&mut h);
        h.finish()
    }
}

/// Cache key identifying a plan: fingerprints of the query structure, the
/// engine configuration, and the device class. Collisions are possible in
/// principle (64-bit hashes) but irrelevant in practice for an in-process
/// cache of tens of plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Query-structure fingerprint (vertex count, arcs, labels, symmetry).
    pub query: u64,
    /// Engine-configuration fingerprint (every field, f64s via `to_bits`).
    pub config: u64,
    /// Device-class fingerprint.
    pub device_class: u64,
}

impl PlanKey {
    /// Computes the key for a (query, config, device-class) triple.
    pub fn new(query: &Graph, config: &EngineConfig, class: &DeviceClass) -> Self {
        PlanKey {
            query: fingerprint_query(query),
            config: fingerprint_config(config),
            device_class: class.fingerprint(),
        }
    }
}

fn fingerprint_query(query: &Graph) -> u64 {
    let mut h = DefaultHasher::new();
    query.num_vertices().hash(&mut h);
    query.is_symmetric().hash(&mut h);
    for (u, v) in query.edges() {
        u.hash(&mut h);
        v.hash(&mut h);
    }
    query.is_labeled().hash(&mut h);
    if query.is_labeled() {
        for v in 0..query.num_vertices() as u32 {
            query.label(v).hash(&mut h);
        }
    }
    h.finish()
}

pub(crate) fn fingerprint_config(config: &EngineConfig) -> u64 {
    let mut h = DefaultHasher::new();
    // Discriminants + payloads, spelled out so adding a config field forces
    // a decision here (the struct is non-exhaustive at a distance).
    std::mem::discriminant(&config.order_policy).hash(&mut h);
    config.chunk_size.hash(&mut h);
    config.trie_fraction.to_bits().hash(&mut h);
    std::mem::discriminant(&config.intersect).hash(&mut h);
    config.signature_prefilter.hash(&mut h);
    config.randomize_placement.hash(&mut h);
    match config.virtual_warp {
        crate::config::VirtualWarpPolicy::AvgDegree => 0usize.hash(&mut h),
        crate::config::VirtualWarpPolicy::Fixed(w) => (1usize, w).hash(&mut h),
    }
    config.max_blocks.hash(&mut h);
    config.seed.hash(&mut h);
    h.finish()
}

/// Per-level slice of the expand-parameter schedule: the constraint shape
/// the search kernel will see at this depth, fixed at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSchedule {
    /// Depth in the matching order (`1..|V_Q|`; level 0 is init).
    pub pos: usize,
    /// Number of back-edge constraints at this depth.
    pub constraints: usize,
    /// Intersection micro-kernel selection for this depth.
    pub strategy: IntersectStrategy,
}

/// Advisory memory-budget verdict computed at plan time (the hybrid
/// BFS-DFS fallback remains the run-time safety net; this is the planner's
/// early warning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetCheck {
    /// Estimated peak trie entries (Equation 5's geometric sum).
    pub estimated_entries: f64,
    /// Entries the device class can hold under this configuration.
    pub budget_entries: usize,
    /// Whether the estimate fits without chunking.
    pub fits: bool,
}

/// An immutable, device-independent execution plan for one query under one
/// engine configuration on one device class.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// The §4 matching order with back-edge constraint sets.
    pub order: MatchOrder,
    /// Per-level expand parameters (depths `1..|V_Q|`).
    pub schedule: Vec<LevelSchedule>,
    /// Snapshot of the configuration the plan was built under.
    pub config: EngineConfig,
    /// The device class the plan was sized for.
    pub device_class: DeviceClass,
    /// Trie entry budget for this class: `global_mem_words × trie_fraction
    /// / 2` (two words per entry — PA and CA). The session sizes its arena
    /// carve from the *actual* free words at bind time, never above this.
    pub trie_entries_budget: usize,
    /// Neighbourhood signature of the root query vertex (`order[0]`),
    /// unmasked — the init-candidates prefilter requires data vertices to
    /// dominate it (label lanes only when both graphs are labelled; see
    /// [`QueryPlan::required_root_signature`]).
    pub root_signature: u64,
    /// Whether the planned query carries labels (needed to mask the
    /// signature's label lanes against unlabelled data).
    pub query_labeled: bool,
    /// Cache key this plan answers to.
    pub key: PlanKey,
}

impl QueryPlan {
    /// Builds a plan: computes the matching order under the configured
    /// policy, derives the per-level schedule, and checks that the device
    /// class can hold a non-empty trie at all.
    pub fn build(
        query: &Graph,
        config: &EngineConfig,
        class: &DeviceClass,
    ) -> Result<QueryPlan, EngineError> {
        let order = MatchOrder::compute_with_policy(query, config.order_policy)?;
        let schedule = (1..order.len())
            .map(|pos| LevelSchedule {
                pos,
                constraints: order.back_edges[pos].len(),
                strategy: config.intersect,
            })
            .collect();
        let trie_entries_budget =
            ((class.global_mem_words as f64 * config.trie_fraction) / 2.0) as usize;
        if trie_entries_budget == 0 {
            return Err(EngineError::Device(
                cuts_gpu_sim::DeviceError::OutOfMemory {
                    requested: 2,
                    available: class.global_mem_words,
                },
            ));
        }
        let key = PlanKey::new(query, config, class);
        let root_signature = cuts_graph::profile::vertex_signature(query, order.order[0]);
        Ok(QueryPlan {
            root_signature,
            query_labeled: query.is_labeled(),
            order,
            schedule,
            config: config.clone(),
            device_class: class.clone(),
            trie_entries_budget,
            key,
        })
    }

    /// The signature every level-0 data candidate must dominate, with
    /// label lanes masked out unless both the query and the data graph
    /// are labelled (an unlabelled side is a wildcard).
    pub fn required_root_signature(&self, data_labeled: bool) -> u64 {
        cuts_graph::profile::required_signature(
            self.root_signature,
            self.query_labeled,
            data_labeled,
        )
    }

    /// Resolves the per-level micro-kernel policy for running this plan
    /// over a data graph with the given profile (see [`crate::policy`]).
    pub fn kernel_policy(&self, profile: &cuts_graph::DataProfile) -> crate::policy::KernelPolicy {
        crate::policy::KernelPolicy::compute(self, profile)
    }

    /// Number of levels (query vertices).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True for the (disallowed) empty plan.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Estimated peak trie entries for running this plan over `data`,
    /// using the §5 model with survival ratio `sigma` (Equation 5's exact
    /// geometric sum of per-level path counts).
    pub fn space_estimate(&self, data: &Graph, sigma: f64) -> f64 {
        let m = ComplexityModel {
            data_vertices: data.num_vertices() as f64,
            query_vertices: self.len(),
            max_degree: data.max_out_degree() as f64,
            sigma,
        };
        (1..=self.len()).map(|l| m.paths_at_depth(l)).sum()
    }

    /// Plan-time budget check for `data`: does the Equation-5 estimate fit
    /// the class's trie budget without hybrid chunking? `sigma` defaults
    /// are workload-dependent; 0.25 is a reasonable unlabelled-graph prior.
    pub fn budget_check(&self, data: &Graph, sigma: f64) -> BudgetCheck {
        let estimated_entries = self.space_estimate(data, sigma);
        BudgetCheck {
            estimated_entries,
            budget_entries: self.trie_entries_budget,
            fits: estimated_entries <= self.trie_entries_budget as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_graph::generators::{chain, clique, mesh2d};

    fn class() -> DeviceClass {
        DeviceClass::of(&DeviceConfig::test_small())
    }

    #[test]
    fn build_captures_order_and_schedule() {
        let q = clique(4);
        let cfg = EngineConfig::default();
        let p = QueryPlan::build(&q, &cfg, &class()).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.schedule.len(), 3);
        // K4 back edges grow one per level.
        assert_eq!(
            p.schedule.iter().map(|s| s.constraints).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(p.trie_entries_budget > 0);
    }

    #[test]
    fn key_stable_and_sensitive() {
        let cfg = EngineConfig::default();
        let c = class();
        let a = PlanKey::new(&clique(3), &cfg, &c);
        let b = PlanKey::new(&clique(3), &cfg, &c);
        assert_eq!(a, b, "same triple must key identically");
        assert_ne!(
            a,
            PlanKey::new(&clique(4), &cfg, &c),
            "different query must key differently"
        );
        assert_ne!(
            a,
            PlanKey::new(&clique(3), &cfg.clone().with_chunk_size(7), &c),
            "different config must key differently"
        );
        let other = DeviceClass::of(&DeviceConfig::v100_like());
        assert_ne!(
            a,
            PlanKey::new(&clique(3), &cfg, &other),
            "different device class must key differently"
        );
    }

    #[test]
    fn labels_participate_in_query_fingerprint() {
        let cfg = EngineConfig::default();
        let c = class();
        let plain = chain(3);
        let labeled = chain(3).with_labels(vec![1, 2, 1]);
        assert_ne!(
            PlanKey::new(&plain, &cfg, &c),
            PlanKey::new(&labeled, &cfg, &c)
        );
    }

    #[test]
    fn budget_check_flags_tight_class() {
        let q = clique(3);
        let cfg = EngineConfig::default();
        let data = mesh2d(8, 8);
        let roomy = QueryPlan::build(&q, &cfg, &class()).unwrap();
        assert!(roomy.budget_check(&data, 0.25).fits);
        let tight = DeviceClass::of(&DeviceConfig::test_small().with_global_mem_words(64));
        let p = QueryPlan::build(&q, &cfg, &tight).unwrap();
        let b = p.budget_check(&data, 0.25);
        assert!(!b.fits, "64-word class cannot hold the mesh estimate");
        assert!(b.estimated_entries > b.budget_entries as f64);
    }

    #[test]
    fn zero_budget_class_rejected() {
        let tiny = DeviceClass::of(&DeviceConfig::test_small().with_global_mem_words(1));
        let err = QueryPlan::build(&clique(3), &EngineConfig::default(), &tiny);
        assert!(matches!(err, Err(EngineError::Device(_))));
    }

    #[test]
    fn disconnected_query_rejected_at_plan_time() {
        let g = cuts_graph::Graph::undirected(4, &[(0, 1), (2, 3)]);
        let err = QueryPlan::build(&g, &EngineConfig::default(), &class());
        assert!(matches!(err, Err(EngineError::DisconnectedQuery)));
    }
}
