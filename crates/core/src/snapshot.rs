//! Versioned snapshot container: cold-start artifacts on disk.
//!
//! A snapshot persists everything a serving process rebuilds from
//! scratch on every start today — the data graph with its
//! [`DataProfile`] (degree deciles + packed signatures), the
//! [`crate::PlanCache`]'s [`QueryPlan`]s keyed by their existing
//! [`crate::PlanKey`] fingerprints, and CSF path-set result tries — in
//! one checksummed binary file. [`crate::ExecSession::from_snapshot`]
//! restores a device-bound session from it with **zero** plan builds and
//! **zero** re-profiling.
//!
//! The normative wire-format specification lives in DESIGN.md §12; the
//! layout in brief (all integers little-endian):
//!
//! ```text
//! [0,  8)   magic "CUTSNAP\0"
//! [8,  12)  format version (currently 1)
//! [12, 16)  section count
//! [16, 20)  CRC-32 of the section table
//! [20, 20 + 24·count)  section table: tag[4] · offset u64 · len u64 · crc u32
//! then the payloads, contiguous, in table order; the file ends exactly
//! at the last section's end.
//! ```
//!
//! Sections appear in the fixed order `META`, `GRPH`, `PROF`, `PLNS`,
//! `CSFS`, each covered by its own CRC-32 (IEEE). Every byte of the file
//! is covered by a check: decoders return typed [`SnapshotError`]s on
//! bad magic, unsupported versions, checksum mismatches, truncation, or
//! inconsistent contents — never a panic, never a silently-wrong decode.

use std::path::Path;
use std::sync::{Arc, Mutex};

use cuts_graph::profile::{DataProfile, DegreeBucketStats};
use cuts_graph::{Csr, Graph};
use cuts_obs::{Arg, EventKind};
use cuts_trie::csf::Csf;
use cuts_trie::serial::{decode_csf, encode_csf};

use crate::config::{EngineConfig, IntersectStrategy, VirtualWarpPolicy};
use crate::error::{CutsError, SnapshotError};
use crate::order::{BackEdge, Dir, MatchOrder, OrderPolicy};
use crate::plan::{fingerprint_config, DeviceClass, LevelSchedule, PlanKey, QueryPlan};
use crate::session::ExecSession;

/// Leading magic bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CUTSNAP\0";

/// The container format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Fixed section order of a version-1 snapshot.
pub const SECTION_TAGS: [[u8; 4]; 5] = [*b"META", *b"GRPH", *b"PROF", *b"PLNS", *b"CSFS"];

/// Byte offset where the section table starts.
const TABLE_START: usize = 20;

/// Bytes per section-table entry: tag + offset + len + crc.
const TABLE_ENTRY: usize = 24;

/// Sanity cap on the device-class name length (bounds the leak of
/// interning unknown names).
const MAX_NAME_LEN: usize = 256;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected). Hand-rolled: the workspace vendors no
// checksum crate. Slicing-by-8 keeps the checksum off the warm-start
// critical path — it processes eight input bytes per table round instead
// of one, which matters because every payload byte is CRC-covered and the
// snapshot read re-verifies the whole file.
// ---------------------------------------------------------------------------

const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the per-section and table checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = c ^ u32::from_le_bytes(ch[0..4].try_into().expect("4 bytes"));
        let hi = u32::from_le_bytes(ch[4..8].try_into().expect("4 bytes"));
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian primitives.
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian reader over a section payload.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A wire `u64` that must fit a host `usize`.
    fn size(&mut self) -> Result<usize, SnapshotError> {
        self.u64()?
            .try_into()
            .map_err(|_| SnapshotError::Corrupt("size overflows this platform"))
    }

    /// A wire flag that must be exactly 0 or 1.
    fn flag(&mut self) -> Result<bool, SnapshotError> {
        match self.u32()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt("flag out of range")),
        }
    }

    /// `n` consecutive `u32`s; the length is checked against the
    /// remaining payload *before* allocating.
    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, SnapshotError> {
        let bytes = n
            .checked_mul(4)
            .ok_or(SnapshotError::Corrupt("array size overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    /// `n` consecutive `u64`s, bounds-checked before allocation.
    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, SnapshotError> {
        let bytes = n
            .checked_mul(8)
            .ok_or(SnapshotError::Corrupt("array size overflows"))?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("trailing bytes in section"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_flag(out: &mut Vec<u8>, v: bool) {
    put_u32(out, v as u32);
}

// ---------------------------------------------------------------------------
// Device-class name interning: `DeviceClass.name` is `&'static str`, so a
// decoded name must live forever. Known simulator models resolve to their
// compiled-in literals; unknown names are leaked once per distinct string
// (bounded by MAX_NAME_LEN and the set of snapshots a process opens).
// ---------------------------------------------------------------------------

fn intern_device_name(name: &str) -> &'static str {
    const KNOWN: [&str; 3] = ["sim-V100", "sim-A100", "sim-test"];
    if let Some(&k) = KNOWN.iter().find(|&&k| k == name) {
        return k;
    }
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut extra = EXTRA.lock().unwrap();
    if let Some(&e) = extra.iter().find(|&&e| e == name) {
        return e;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    extra.push(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Section codecs. Public so the proptest suite can fuzz each one in
// isolation; the container calls the same functions.
// ---------------------------------------------------------------------------

/// Encodes a [`DataProfile`] (the `PROF` section payload).
pub fn encode_profile(p: &DataProfile) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 2 * (44 + 8) + 8 + 8 * p.signatures.len());
    put_u64(&mut out, p.vertices as u64);
    put_flag(&mut out, p.labeled);
    for stats in [&p.out_degrees, &p.in_degrees] {
        for &d in &stats.deciles {
            put_u32(&mut out, d);
        }
        put_u64(&mut out, stats.avg.to_bits());
    }
    put_u64(&mut out, p.signatures.len() as u64);
    for &s in &p.signatures {
        put_u64(&mut out, s);
    }
    out
}

/// Decodes [`encode_profile`] output.
pub fn decode_profile(bytes: &[u8]) -> Result<DataProfile, SnapshotError> {
    let mut r = Reader::new(bytes);
    let p = read_profile(&mut r)?;
    r.finish()?;
    Ok(p)
}

fn read_profile(r: &mut Reader<'_>) -> Result<DataProfile, SnapshotError> {
    let vertices = r.size()?;
    let labeled = r.flag()?;
    let mut stats = [DegreeBucketStats {
        deciles: [0; 11],
        avg: 0.0,
    }; 2];
    for s in &mut stats {
        let deciles = r.u32s(11)?;
        s.deciles = deciles.try_into().expect("exactly 11 deciles");
        s.avg = r.f64()?;
        if !s.avg.is_finite() || s.avg < 0.0 {
            return Err(SnapshotError::Corrupt("degree average out of range"));
        }
    }
    let sig_count = r.size()?;
    if sig_count != vertices {
        return Err(SnapshotError::Corrupt("one signature per vertex required"));
    }
    let signatures = r.u64s(sig_count)?;
    Ok(DataProfile {
        out_degrees: stats[0],
        in_degrees: stats[1],
        signatures,
        vertices,
        labeled,
    })
}

/// Encodes a [`Graph`] (the `GRPH` section payload): the out-adjacency
/// CSR verbatim — per-vertex degrees followed by the sorted target
/// array — so decoding is bulk little-endian reads plus validation, with
/// no edge-list detour and no sorting. This is what makes warm start
/// effectively zero-copy: the wire layout *is* the runtime layout.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let csr = g.out_csr();
    let offsets = csr.offsets();
    let mut out =
        Vec::with_capacity(8 + 4 + 4 + 8 + 4 * (g.num_vertices() * 2 + csr.targets().len()));
    put_u64(&mut out, g.num_vertices() as u64);
    put_flag(&mut out, g.is_symmetric());
    put_flag(&mut out, g.is_labeled());
    put_u64(&mut out, csr.targets().len() as u64);
    for w in offsets.windows(2) {
        put_u32(&mut out, (w[1] - w[0]) as u32);
    }
    out.extend(csr.targets().iter().flat_map(|t| t.to_le_bytes()));
    if g.is_labeled() {
        for v in 0..g.num_vertices() as u32 {
            put_u32(&mut out, g.label(v).expect("labeled graph"));
        }
    }
    out
}

/// Decodes [`encode_graph`] output. Every CSR invariant is re-verified
/// (degree sum, monotone offsets, strictly ascending rows, in-range
/// targets, no self-loops, and — for symmetric graphs — that the
/// adjacency equals its own transpose), so a decoded graph is
/// structurally indistinguishable from one the generators built.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n = r.size()?;
    let symmetric = r.flag()?;
    let labeled = r.flag()?;
    let arcs = r.size()?;
    let degrees = r.u32s(n)?;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut total = 0u64;
    offsets.push(0u64);
    for &d in &degrees {
        total += d as u64;
        offsets.push(total);
    }
    if total != arcs as u64 {
        return Err(SnapshotError::Corrupt(
            "degree sum disagrees with arc count",
        ));
    }
    let targets = r.u32s(arcs)?;
    let csr = Csr::from_sorted_parts(offsets, targets).map_err(SnapshotError::Corrupt)?;
    let g = Graph::from_out_csr(csr, symmetric).map_err(SnapshotError::Corrupt)?;
    let g = if labeled {
        g.with_labels(r.u32s(n)?)
    } else {
        g
    };
    r.finish()?;
    Ok(g)
}

fn write_config(out: &mut Vec<u8>, c: &EngineConfig) {
    put_u32(
        out,
        match c.order_policy {
            OrderPolicy::DegreeGreedy => 0,
            OrderPolicy::IdBfs => 1,
        },
    );
    put_u64(out, c.chunk_size as u64);
    put_u64(out, c.trie_fraction.to_bits());
    put_u32(
        out,
        match c.intersect {
            IntersectStrategy::Auto => 0,
            IntersectStrategy::CIntersection => 1,
            IntersectStrategy::PIntersection => 2,
            IntersectStrategy::Bitmap => 3,
        },
    );
    put_flag(out, c.signature_prefilter);
    put_flag(out, c.randomize_placement);
    match c.virtual_warp {
        VirtualWarpPolicy::AvgDegree => {
            put_u32(out, 0);
            put_u64(out, 0);
        }
        VirtualWarpPolicy::Fixed(w) => {
            put_u32(out, 1);
            put_u64(out, w as u64);
        }
    }
    put_u64(out, c.max_blocks as u64);
    put_u64(out, c.seed);
}

fn read_config(r: &mut Reader<'_>) -> Result<EngineConfig, SnapshotError> {
    let order_policy = match r.u32()? {
        0 => OrderPolicy::DegreeGreedy,
        1 => OrderPolicy::IdBfs,
        _ => return Err(SnapshotError::Corrupt("unknown order policy")),
    };
    let chunk_size = r.size()?;
    let trie_fraction = r.f64()?;
    let intersect = match r.u32()? {
        0 => IntersectStrategy::Auto,
        1 => IntersectStrategy::CIntersection,
        2 => IntersectStrategy::PIntersection,
        3 => IntersectStrategy::Bitmap,
        _ => return Err(SnapshotError::Corrupt("unknown intersect strategy")),
    };
    let signature_prefilter = r.flag()?;
    let randomize_placement = r.flag()?;
    let vw_tag = r.u32()?;
    let vw_width = r.size()?;
    let virtual_warp = match vw_tag {
        0 if vw_width == 0 => VirtualWarpPolicy::AvgDegree,
        1 if vw_width >= 1 => VirtualWarpPolicy::Fixed(vw_width),
        _ => return Err(SnapshotError::Corrupt("bad virtual-warp policy")),
    };
    let max_blocks = r.size()?;
    let seed = r.u64()?;
    if chunk_size == 0 || max_blocks == 0 {
        return Err(SnapshotError::Corrupt("config sizes must be positive"));
    }
    if !(trie_fraction.is_finite() && trie_fraction > 0.0 && trie_fraction <= 1.0) {
        return Err(SnapshotError::Corrupt("trie fraction out of range"));
    }
    Ok(EngineConfig {
        order_policy,
        chunk_size,
        trie_fraction,
        intersect,
        signature_prefilter,
        randomize_placement,
        virtual_warp,
        max_blocks,
        seed,
    })
}

/// Encodes one [`QueryPlan`] record (one element of the `PLNS` section).
pub fn encode_plan(p: &QueryPlan) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, p.key.query);
    put_u64(&mut out, p.key.config);
    put_u64(&mut out, p.key.device_class);
    let n = p.order.len();
    put_u32(&mut out, n as u32);
    for &q in &p.order.order {
        put_u32(&mut out, q);
    }
    for level in &p.order.back_edges {
        put_u32(&mut out, level.len() as u32);
        for e in level {
            put_u32(&mut out, e.pos as u32);
            put_u32(&mut out, matches!(e.dir, Dir::In) as u32);
        }
    }
    for &d in &p.order.q_out {
        put_u32(&mut out, d);
    }
    for &d in &p.order.q_in {
        put_u32(&mut out, d);
    }
    for &l in &p.order.q_label {
        put_flag(&mut out, l.is_some());
        put_u32(&mut out, l.unwrap_or(0));
    }
    write_config(&mut out, &p.config);
    let name = p.device_class.name.as_bytes();
    put_u32(&mut out, name.len() as u32);
    out.extend_from_slice(name);
    put_u64(&mut out, p.device_class.num_sms as u64);
    put_u64(&mut out, p.device_class.shared_mem_words_per_block as u64);
    put_u64(&mut out, p.device_class.global_mem_words as u64);
    put_u64(&mut out, p.trie_entries_budget as u64);
    put_u64(&mut out, p.root_signature);
    put_flag(&mut out, p.query_labeled);
    out
}

/// Decodes one [`encode_plan`] record, revalidating every structural
/// invariant and both recomputable fingerprint components of the stored
/// [`PlanKey`] (the query fingerprint cannot be rechecked without the
/// query graph; it is covered by the section CRC).
pub fn decode_plan(bytes: &[u8]) -> Result<QueryPlan, SnapshotError> {
    let mut r = Reader::new(bytes);
    let p = read_plan(&mut r)?;
    r.finish()?;
    Ok(p)
}

fn read_plan(r: &mut Reader<'_>) -> Result<QueryPlan, SnapshotError> {
    let key = PlanKey {
        query: r.u64()?,
        config: r.u64()?,
        device_class: r.u64()?,
    };
    let n = r.u32()? as usize;
    if n == 0 {
        return Err(SnapshotError::Corrupt("empty plan"));
    }
    let order = r.u32s(n)?;
    let mut position = vec![usize::MAX; n];
    for (l, &q) in order.iter().enumerate() {
        let q = q as usize;
        if q >= n || position[q] != usize::MAX {
            return Err(SnapshotError::Corrupt("order is not a permutation"));
        }
        position[q] = l;
    }
    let mut back_edges = Vec::with_capacity(n);
    for l in 0..n {
        let count = r.u32()? as usize;
        if (l == 0) != (count == 0) {
            return Err(SnapshotError::Corrupt(
                "back-edge counts violate connectivity",
            ));
        }
        let mut level = Vec::new();
        for _ in 0..count {
            let pos = r.u32()? as usize;
            if pos >= l {
                return Err(SnapshotError::Corrupt("back edge not backward"));
            }
            let dir = match r.u32()? {
                0 => Dir::Out,
                1 => Dir::In,
                _ => return Err(SnapshotError::Corrupt("unknown edge direction")),
            };
            level.push(BackEdge { pos, dir });
        }
        back_edges.push(level);
    }
    let q_out = r.u32s(n)?;
    let q_in = r.u32s(n)?;
    let mut q_label = Vec::with_capacity(n);
    for _ in 0..n {
        let present = r.flag()?;
        let value = r.u32()?;
        if !present && value != 0 {
            return Err(SnapshotError::Corrupt("absent label carries a value"));
        }
        q_label.push(present.then_some(value));
    }
    let config = read_config(r)?;
    let name_len = r.u32()? as usize;
    if name_len > MAX_NAME_LEN {
        return Err(SnapshotError::Corrupt("device name too long"));
    }
    let name_bytes = r.take(name_len)?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| SnapshotError::Corrupt("device name not utf-8"))?;
    let device_class = DeviceClass {
        name: intern_device_name(name),
        num_sms: r.size()?,
        shared_mem_words_per_block: r.size()?,
        global_mem_words: r.size()?,
    };
    let trie_entries_budget = r.size()?;
    let root_signature = r.u64()?;
    let query_labeled = r.flag()?;
    if query_labeled != q_label.iter().all(|l| l.is_some())
        || (!query_labeled && q_label.iter().any(|l| l.is_some()))
    {
        return Err(SnapshotError::Corrupt("label flags inconsistent"));
    }
    // Both recomputable key components must match what was stored.
    if fingerprint_config(&config) != key.config {
        return Err(SnapshotError::Corrupt("config fingerprint mismatch"));
    }
    if device_class.fingerprint() != key.device_class {
        return Err(SnapshotError::Corrupt("device-class fingerprint mismatch"));
    }
    // The budget is a pure function of class and config — recompute it.
    let expect_budget =
        ((device_class.global_mem_words as f64 * config.trie_fraction) / 2.0) as usize;
    if trie_entries_budget != expect_budget || trie_entries_budget == 0 {
        return Err(SnapshotError::Corrupt("trie budget mismatch"));
    }
    // The schedule is derived, not stored: rebuild it exactly as
    // `QueryPlan::build` does.
    let schedule = (1..n)
        .map(|pos| LevelSchedule {
            pos,
            constraints: back_edges[pos].len(),
            strategy: config.intersect,
        })
        .collect();
    Ok(QueryPlan {
        order: MatchOrder {
            order,
            position,
            back_edges,
            q_out,
            q_in,
            q_label,
        },
        schedule,
        config,
        device_class,
        trie_entries_budget,
        root_signature,
        query_labeled,
        key,
    })
}

fn encode_plans(plans: &[Arc<QueryPlan>]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, plans.len() as u32);
    for p in plans {
        out.extend_from_slice(&encode_plan(p));
    }
    out
}

fn decode_plans(bytes: &[u8]) -> Result<Vec<Arc<QueryPlan>>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    let mut plans = Vec::new();
    for _ in 0..count {
        plans.push(Arc::new(read_plan(&mut r)?));
    }
    r.finish()?;
    Ok(plans)
}

fn encode_tries(tries: &[(u64, Csf)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, tries.len() as u32);
    for (key, csf) in tries {
        put_u64(&mut out, *key);
        let body = encode_csf(csf);
        put_u64(&mut out, body.len() as u64);
        out.extend_from_slice(&body);
    }
    out
}

fn decode_tries(bytes: &[u8]) -> Result<Vec<(u64, Csf)>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()? as usize;
    let mut tries = Vec::new();
    for _ in 0..count {
        let key = r.u64()?;
        let len = r.size()?;
        let body = r.take(len)?;
        let csf = decode_csf(bytes::Bytes::from(body))?;
        tries.push((key, csf));
    }
    r.finish()?;
    Ok(tries)
}

// ---------------------------------------------------------------------------
// META section + container assembly.
// ---------------------------------------------------------------------------

struct Meta {
    vertices: u64,
    arcs: u64,
    symmetric: bool,
    labeled: bool,
    plan_count: u32,
    trie_count: u32,
}

fn encode_meta(m: &Meta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    put_u64(&mut out, m.vertices);
    put_u64(&mut out, m.arcs);
    put_flag(&mut out, m.symmetric);
    put_flag(&mut out, m.labeled);
    put_u32(&mut out, m.plan_count);
    put_u32(&mut out, m.trie_count);
    out
}

fn decode_meta(bytes: &[u8]) -> Result<Meta, SnapshotError> {
    let mut r = Reader::new(bytes);
    let m = Meta {
        vertices: r.u64()?,
        arcs: r.u64()?,
        symmetric: r.flag()?,
        labeled: r.flag()?,
        plan_count: r.u32()?,
        trie_count: r.u32()?,
    };
    r.finish()?;
    Ok(m)
}

/// A verified section: its table tag and its payload slice.
type Sections<'a> = Vec<(&'a [u8; 4], &'a [u8])>;

/// Parses the container header and table, verifying magic, version, both
/// checksum layers, canonical section order, contiguity, and exact file
/// length. Returns each section's payload slice.
fn parse_container(bytes: &[u8]) -> Result<Sections<'_>, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() {
        return Err(SnapshotError::Truncated);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < TABLE_START {
        return Err(SnapshotError::Truncated);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes")) as usize;
    if count != SECTION_TAGS.len() {
        return Err(SnapshotError::Corrupt("unexpected section count"));
    }
    let table_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let table_end = TABLE_START + count * TABLE_ENTRY;
    if bytes.len() < table_end {
        return Err(SnapshotError::Truncated);
    }
    let table = &bytes[TABLE_START..table_end];
    if crc32(table) != table_crc {
        return Err(SnapshotError::TableChecksum);
    }
    let mut sections = Vec::with_capacity(count);
    let mut cursor = table_end as u64;
    for (i, entry) in table.chunks_exact(TABLE_ENTRY).enumerate() {
        let tag: &[u8; 4] = entry[..4].try_into().expect("4 bytes");
        let offset = u64::from_le_bytes(entry[4..12].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(entry[12..20].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(entry[20..24].try_into().expect("4 bytes"));
        if tag != &SECTION_TAGS[i] {
            // Distinguish a reordered table from a genuinely absent tag.
            if SECTION_TAGS.iter().any(|t| t == tag) {
                return Err(SnapshotError::Corrupt("section table out of order"));
            }
            return Err(SnapshotError::MissingSection {
                section: SECTION_TAGS[i],
            });
        }
        if offset != cursor {
            return Err(SnapshotError::Corrupt("sections not contiguous"));
        }
        let end = offset
            .checked_add(len)
            .ok_or(SnapshotError::Corrupt("section bounds overflow"))?;
        if end > bytes.len() as u64 {
            return Err(SnapshotError::Truncated);
        }
        let payload = &bytes[offset as usize..end as usize];
        if crc32(payload) != crc {
            return Err(SnapshotError::SectionChecksum { section: *tag });
        }
        sections.push((tag, payload));
        cursor = end;
    }
    if cursor != bytes.len() as u64 {
        return Err(SnapshotError::Corrupt("trailing bytes after last section"));
    }
    Ok(sections)
}

// ---------------------------------------------------------------------------
// The snapshot value itself.
// ---------------------------------------------------------------------------

/// An in-memory snapshot: a data graph with its cached profile, the
/// plans a session built for it, and optional CSF result tries.
#[derive(Debug, Clone)]
pub struct Snapshot {
    graph: Graph,
    plans: Vec<Arc<QueryPlan>>,
    tries: Vec<(u64, Csf)>,
}

impl Snapshot {
    /// A snapshot of `data` alone (profile computed now if not cached);
    /// no plans, no tries.
    pub fn new(data: &Graph) -> Snapshot {
        let _ = data.profile();
        Snapshot {
            graph: data.clone(),
            plans: Vec::new(),
            tries: Vec::new(),
        }
    }

    /// Captures `data` plus every plan `session` currently retains,
    /// emitting a `snapshot`/`save` trace event on the session's device.
    pub fn capture(data: &Graph, session: &ExecSession<'_>) -> Snapshot {
        let mut snap = Snapshot::new(data);
        snap.plans = session.cached_plans();
        session.device().trace().instant_with(
            EventKind::Snapshot,
            "save",
            &[
                ("plans", Arg::U64(snap.plans.len() as u64)),
                ("vertices", Arg::U64(data.num_vertices() as u64)),
            ],
        );
        snap
    }

    /// The snapshotted data graph (profile pre-installed: calling
    /// [`Graph::profile`] on it never re-profiles).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Guards a warm start against a graph that has moved on: fails with
    /// [`SnapshotError::StaleGraph`] unless `live` has the same
    /// version-inclusive [`Graph::fingerprint`] as the snapshotted
    /// graph. Because the fingerprint hashes the mutation version along
    /// with the CSR bytes, a batch followed by its exact inverse still
    /// invalidates older snapshots — no edit history is consulted.
    ///
    /// The check is for snapshots held in memory by the process that
    /// captured them (the serving warm-start path). A snapshot decoded
    /// from disk carries version 0 — the wire format predates versioning
    /// — so it validates only against a live graph that has never been
    /// batch-mutated; validation is conservative, never falsely fresh.
    pub fn validate_for(&self, live: &Graph) -> Result<(), SnapshotError> {
        let snapshot = self.graph.fingerprint();
        let live = live.fingerprint();
        if snapshot != live {
            return Err(SnapshotError::StaleGraph { snapshot, live });
        }
        Ok(())
    }

    /// The persisted plans, in cache order (least recently used first).
    pub fn plans(&self) -> &[Arc<QueryPlan>] {
        &self.plans
    }

    /// The persisted CSF result tries with their caller-chosen keys
    /// (conventionally the query fingerprint, [`PlanKey::query`]).
    pub fn tries(&self) -> &[(u64, Csf)] {
        &self.tries
    }

    /// Looks up a persisted result trie by key.
    pub fn trie_for(&self, key: u64) -> Option<&Csf> {
        self.tries.iter().find(|(k, _)| *k == key).map(|(_, c)| c)
    }

    /// Adds a plan to persist.
    pub fn add_plan(&mut self, plan: Arc<QueryPlan>) {
        self.plans.push(plan);
    }

    /// Adds a CSF result trie to persist under `key`.
    pub fn add_trie(&mut self, key: u64, csf: Csf) {
        self.tries.push((key, csf));
    }

    /// Serializes to the version-1 container format. Canonical: decoding
    /// and re-encoding reproduces the bytes exactly.
    pub fn encode(&self) -> Vec<u8> {
        let meta = Meta {
            vertices: self.graph.num_vertices() as u64,
            arcs: self.graph.num_edges() as u64,
            symmetric: self.graph.is_symmetric(),
            labeled: self.graph.is_labeled(),
            plan_count: self.plans.len() as u32,
            trie_count: self.tries.len() as u32,
        };
        let sections: [([u8; 4], Vec<u8>); 5] = [
            (*b"META", encode_meta(&meta)),
            (*b"GRPH", encode_graph(&self.graph)),
            (*b"PROF", encode_profile(&self.graph.profile())),
            (*b"PLNS", encode_plans(&self.plans)),
            (*b"CSFS", encode_tries(&self.tries)),
        ];
        let mut table = Vec::with_capacity(sections.len() * TABLE_ENTRY);
        let mut offset = (TABLE_START + sections.len() * TABLE_ENTRY) as u64;
        for (tag, payload) in &sections {
            table.extend_from_slice(tag);
            put_u64(&mut table, offset);
            put_u64(&mut table, payload.len() as u64);
            put_u32(&mut table, crc32(payload));
            offset += payload.len() as u64;
        }
        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, sections.len() as u32);
        put_u32(&mut out, crc32(&table));
        out.extend_from_slice(&table);
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes a container, verifying every checksum and structural
    /// invariant, and installs the decoded profile into the graph's
    /// cache (so no consumer ever re-profiles it).
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let sections = parse_container(bytes)?;
        let meta = decode_meta(sections[0].1)?;
        let graph = decode_graph(sections[1].1)?;
        let profile = decode_profile(sections[2].1)?;
        let plans = decode_plans(sections[3].1)?;
        let tries = decode_tries(sections[4].1)?;
        if profile.vertices != graph.num_vertices() || profile.labeled != graph.is_labeled() {
            return Err(SnapshotError::Corrupt("profile does not match graph"));
        }
        if meta.vertices != graph.num_vertices() as u64
            || meta.arcs != graph.num_edges() as u64
            || meta.symmetric != graph.is_symmetric()
            || meta.labeled != graph.is_labeled()
            || meta.plan_count as usize != plans.len()
            || meta.trie_count as usize != tries.len()
        {
            return Err(SnapshotError::Corrupt("meta disagrees with sections"));
        }
        let graph = graph.with_cached_profile(Arc::new(profile));
        Ok(Snapshot {
            graph,
            plans,
            tries,
        })
    }

    /// Writes the encoded snapshot to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), CutsError> {
        let path = path.as_ref();
        std::fs::write(path, self.encode())
            .map_err(|e| CutsError::io(path.display().to_string(), e))
    }

    /// Reads and decodes a snapshot file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Snapshot, CutsError> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| CutsError::io(path.display().to_string(), e))?;
        Ok(Snapshot::decode(&bytes)?)
    }
}

/// One section-table row, as [`inspect`] reports it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Four-byte ASCII tag.
    pub tag: [u8; 4],
    /// Payload length in bytes.
    pub len: u64,
    /// Payload CRC-32 (already verified).
    pub crc: u32,
}

/// Header-level description of a snapshot (`cuts snapshot inspect`).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Container format version.
    pub version: u32,
    /// Verified sections in file order.
    pub sections: Vec<SectionInfo>,
    /// Data-graph vertex count.
    pub vertices: u64,
    /// Data-graph stored-arc count.
    pub arcs: u64,
    /// Whether the data graph was symmetrised from an undirected input.
    pub symmetric: bool,
    /// Whether the data graph carries vertex labels.
    pub labeled: bool,
    /// Persisted plan count.
    pub plans: u32,
    /// Persisted CSF trie count.
    pub tries: u32,
    /// Total file size in bytes.
    pub total_bytes: u64,
}

/// Verifies the container (magic, version, all checksums) and summarises
/// it from the table and `META` section without decoding the payloads.
pub fn inspect(bytes: &[u8]) -> Result<SnapshotInfo, SnapshotError> {
    let sections = parse_container(bytes)?;
    let meta = decode_meta(sections[0].1)?;
    Ok(SnapshotInfo {
        version: SNAPSHOT_VERSION,
        sections: sections
            .iter()
            .map(|(tag, payload)| SectionInfo {
                tag: **tag,
                len: payload.len() as u64,
                crc: crc32(payload),
            })
            .collect(),
        vertices: meta.vertices,
        arcs: meta.arcs,
        symmetric: meta.symmetric,
        labeled: meta.labeled,
        plans: meta.plan_count,
        tries: meta.trie_count,
        total_bytes: bytes.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::{Device, DeviceConfig};
    use cuts_graph::generators::{clique, erdos_renyi, mesh2d};
    use cuts_trie::HostTrie;

    fn sample_snapshot() -> Snapshot {
        let data = mesh2d(4, 4);
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        session.run(&data, &clique(3)).unwrap();
        session
            .run(&data, &cuts_graph::generators::chain(3))
            .unwrap();
        let mut snap = Snapshot::capture(&data, &session);
        let trie = HostTrie::from_flat_paths(&[vec![0, 1, 5], vec![0, 4, 5]]);
        snap.add_trie(snap.plans()[0].key.query, Csf::from_host_trie(&trie));
        snap
    }

    #[test]
    fn crc32_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_roundtrip_and_byte_stability() {
        let snap = sample_snapshot();
        let enc = snap.encode();
        let back = Snapshot::decode(&enc).unwrap();
        assert_eq!(back.plans().len(), 2);
        assert_eq!(back.tries().len(), 1);
        assert_eq!(back.graph().num_vertices(), 16);
        for (a, b) in snap.plans().iter().zip(back.plans()) {
            assert_eq!(**a, **b);
        }
        assert_eq!(back.encode(), enc, "decode→encode must be byte-stable");
    }

    #[test]
    fn decoded_profile_is_installed_not_rebuilt() {
        let snap = sample_snapshot();
        let back = Snapshot::decode(&snap.encode()).unwrap();
        let before = cuts_graph::profile::profile_builds();
        let p = back.graph().profile();
        assert_eq!(cuts_graph::profile::profile_builds(), before);
        assert_eq!(*p, *snap.graph().profile());
    }

    #[test]
    fn labeled_directed_graph_roundtrip() {
        let g =
            Graph::directed(5, &[(0, 1), (1, 2), (3, 1), (4, 0)]).with_labels(vec![0, 1, 2, 0, 1]);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert!(!back.is_symmetric());
        assert_eq!(back.label(2), Some(2));
        assert!(back.has_edge(3, 1) && !back.has_edge(1, 3));
        assert_eq!(encode_graph(&back), encode_graph(&g));
    }

    #[test]
    fn profile_codec_roundtrip() {
        let g = erdos_renyi(40, 120, 5);
        let p = g.profile();
        let back = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(back, *p);
    }

    #[test]
    fn plan_codec_rejects_tampered_fingerprints() {
        let snap = sample_snapshot();
        let mut rec = encode_plan(&snap.plans()[0]);
        // Flip a bit in the stored config fingerprint (bytes 8..16).
        rec[8] ^= 1;
        assert_eq!(
            decode_plan(&rec),
            Err(SnapshotError::Corrupt("config fingerprint mismatch"))
        );
    }

    #[test]
    fn every_prefix_of_a_container_errors() {
        let enc = sample_snapshot().encode();
        for cut in 0..enc.len() {
            assert!(Snapshot::decode(&enc[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let enc = sample_snapshot().encode();
        let mut bad = enc.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Snapshot::decode(&bad),
            Err(SnapshotError::BadMagic)
        ));
        let mut bumped = enc.clone();
        bumped[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bumped),
            Err(SnapshotError::UnsupportedVersion { found: 2 })
        ));
    }

    #[test]
    fn inspect_summarises_without_decoding() {
        let snap = sample_snapshot();
        let info = inspect(&snap.encode()).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.vertices, 16);
        assert_eq!(info.plans, 2);
        assert_eq!(info.tries, 1);
        assert!(info.symmetric);
        assert!(!info.labeled);
        let tags: Vec<[u8; 4]> = info.sections.iter().map(|s| s.tag).collect();
        assert_eq!(tags, SECTION_TAGS.to_vec());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cuts-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let snap = sample_snapshot();
        snap.write_to(&path).unwrap();
        let back = Snapshot::read_from(&path).unwrap();
        assert_eq!(back.encode(), snap.encode());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Snapshot::read_from("/nonexistent/cuts.snap").unwrap_err();
        assert!(matches!(err, CutsError::Io { .. }));
    }

    #[test]
    fn validate_for_rejects_batch_mutated_graph() {
        use cuts_graph::EdgeBatch;
        let mut data = erdos_renyi(30, 80, 5);
        let snap = Snapshot::new(&data);
        snap.validate_for(&data).unwrap();

        // Mutate: the snapshot must now be rejected.
        let (u, v) = {
            let mut pick = (0, 1);
            'outer: for a in 0..30u32 {
                for b in (a + 1)..30u32 {
                    if !data.has_edge(a, b) {
                        pick = (a, b);
                        break 'outer;
                    }
                }
            }
            pick
        };
        let mut b = EdgeBatch::new();
        b.insert(u, v);
        data.apply_batch(&b).unwrap();
        let err = snap.validate_for(&data).unwrap_err();
        assert!(matches!(err, SnapshotError::StaleGraph { .. }));

        // Exact inverse restores the CSR bytes but not the version, so
        // the stale verdict sticks — no history is needed to be safe.
        let mut b = EdgeBatch::new();
        b.delete(u, v);
        data.apply_batch(&b).unwrap();
        assert!(matches!(
            snap.validate_for(&data),
            Err(SnapshotError::StaleGraph { .. })
        ));

        // A snapshot captured *after* the edits validates.
        let fresh = Snapshot::new(&data);
        fresh.validate_for(&data).unwrap();
    }
}
