//! Replicated work ledger: the recovery layer's source of truth,
//! generic over the unit of work.
//!
//! Every unit of work — a path-batch chunk in the distributed runtime
//! (`cuts-dist`), a whole job in [`crate::serve`] — is registered here
//! before any rank may process it, and its match count is *committed*
//! here exactly once. The run is complete when every registered unit is
//! committed, and the run's total is the sum of committed counts — so a
//! rank crash can lose in-flight computation but never results, and
//! at-least-once delivery of donated work deduplicates on commit.
//!
//! In the paper's deployment this role is played by the saved-results
//! store each node writes after every chunk of Algorithm 3 (plus a
//! replicated ownership table); in this in-process simulation it is a
//! mutex-protected map shared by the worker threads.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stable identity of one registered unit of work.
pub type WorkId = u64;

#[derive(Debug)]
enum WorkState<T> {
    /// Registered, not yet committed; `owner` is responsible for it and
    /// `payload` is the recoverable copy of the work itself.
    Pending { owner: usize, payload: T },
    /// Committed with its match count.
    Done,
}

#[derive(Debug)]
struct LedgerInner<T> {
    units: HashMap<WorkId, WorkState<T>>,
    pending: usize,
    total_matches: u64,
    reassigned: usize,
    first_loss_at: Option<Instant>,
    recovered_at: Option<Instant>,
}

impl<T> Default for LedgerInner<T> {
    fn default() -> Self {
        LedgerInner {
            units: HashMap::new(),
            pending: 0,
            total_matches: 0,
            reassigned: 0,
            first_loss_at: None,
            recovered_at: None,
        }
    }
}

/// Shared work-ownership and result store (see module docs). `T` is the
/// recoverable payload a survivor re-executes when the owner dies.
#[derive(Debug)]
pub struct WorkLedger<T> {
    inner: Mutex<LedgerInner<T>>,
    next_id: AtomicU64,
}

impl<T> Default for WorkLedger<T> {
    fn default() -> Self {
        WorkLedger {
            inner: Mutex::new(LedgerInner::default()),
            next_id: AtomicU64::new(0),
        }
    }
}

impl<T: Clone> WorkLedger<T> {
    /// Empty ledger.
    pub fn new() -> Self {
        WorkLedger::default()
    }

    /// Allocates a fresh work id.
    pub fn new_id(&self) -> WorkId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a unit owned by `owner`. The payload copy is what a
    /// surviving rank re-executes if `owner` dies.
    pub fn register(&self, id: WorkId, owner: usize, payload: &T) {
        let mut inner = self.inner.lock().unwrap();
        let prev = inner.units.insert(
            id,
            WorkState::Pending {
                owner,
                payload: payload.clone(),
            },
        );
        assert!(prev.is_none(), "work unit {id} registered twice");
        inner.pending += 1;
    }

    /// Re-homes a pending unit to `new_owner` (donation / migration
    /// hand-off). Returns `false` when the unit is already committed —
    /// the signal for a receiver to discard an at-least-once duplicate.
    pub fn transfer(&self, id: WorkId, new_owner: usize) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.units.get_mut(&id) {
            Some(WorkState::Pending { owner, .. }) => {
                *owner = new_owner;
                true
            }
            _ => false,
        }
    }

    /// Commits a unit's match count. Idempotent: only the first commit
    /// is recorded; returns whether this call was the first.
    pub fn commit(&self, id: WorkId, matches: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.units.insert(id, WorkState::Done) {
            Some(WorkState::Pending { .. }) => {
                inner.pending -= 1;
                inner.total_matches += matches;
                if inner.pending == 0 && inner.first_loss_at.is_some() {
                    inner.recovered_at = Some(Instant::now());
                }
                true
            }
            Some(WorkState::Done) | None => false,
        }
    }

    /// Replaces a pending unit with finer-grained children (progressive
    /// deepening). The parent never commits; the children must. Returns
    /// `false` (and registers nothing) if the parent was already gone.
    pub fn split(&self, parent: WorkId, owner: usize, children: &[(WorkId, &T)]) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.units.remove(&parent) {
            Some(WorkState::Pending { .. }) => {
                inner.pending -= 1;
                for &(id, payload) in children {
                    let prev = inner.units.insert(
                        id,
                        WorkState::Pending {
                            owner,
                            payload: payload.clone(),
                        },
                    );
                    assert!(prev.is_none(), "work unit {id} registered twice");
                    inner.pending += 1;
                }
                true
            }
            Some(done @ WorkState::Done) => {
                inner.units.insert(parent, done);
                false
            }
            None => false,
        }
    }

    /// True when every registered unit has committed.
    pub fn all_completed(&self) -> bool {
        self.inner.lock().unwrap().pending == 0
    }

    /// Pending (uncommitted) unit count.
    pub fn pending(&self) -> usize {
        self.inner.lock().unwrap().pending
    }

    /// Sum of committed match counts.
    pub fn total_matches(&self) -> u64 {
        self.inner.lock().unwrap().total_matches
    }

    /// Claims every pending unit whose owner satisfies `orphaned` (dead
    /// ranks, plus the claimant itself for work lost in transit),
    /// transferring ownership to `me`. Returns the claimed work.
    pub fn reclaim<F: Fn(usize) -> bool>(&self, me: usize, orphaned: F) -> Vec<(WorkId, T)> {
        let mut inner = self.inner.lock().unwrap();
        let mut claimed = Vec::new();
        for (&id, state) in inner.units.iter_mut() {
            if let WorkState::Pending { owner, payload } = state {
                if *owner != me && orphaned(*owner) {
                    *owner = me;
                    claimed.push((id, payload.clone()));
                } else if *owner == me {
                    // Units homed to an idle claimant can only be work
                    // whose hand-off was lost: re-materialise them.
                    claimed.push((id, payload.clone()));
                }
            }
        }
        if !claimed.is_empty() {
            inner.reassigned += claimed.len();
            claimed.sort_by_key(|&(id, _)| id);
        }
        claimed
    }

    /// Like [`WorkLedger::reclaim`], but claims *only* units owned by
    /// ranks satisfying `orphaned` — never the claimant's own pending
    /// units. The serving tier uses this: its hand-offs are in-process
    /// moves that cannot be lost in transit, so re-materialising own
    /// work would enqueue duplicates.
    pub fn reclaim_foreign<F: Fn(usize) -> bool>(
        &self,
        me: usize,
        orphaned: F,
    ) -> Vec<(WorkId, T)> {
        let mut inner = self.inner.lock().unwrap();
        let mut claimed = Vec::new();
        for (&id, state) in inner.units.iter_mut() {
            if let WorkState::Pending { owner, payload } = state {
                if *owner != me && orphaned(*owner) {
                    *owner = me;
                    claimed.push((id, payload.clone()));
                }
            }
        }
        if !claimed.is_empty() {
            inner.reassigned += claimed.len();
            claimed.sort_by_key(|&(id, _)| id);
        }
        claimed
    }

    /// Records that a rank was lost (first loss starts the recovery
    /// clock).
    pub fn note_loss(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.first_loss_at.is_none() {
            inner.first_loss_at = Some(Instant::now());
        }
    }

    /// Units re-homed by the reclaim calls so far.
    pub fn reassigned(&self) -> usize {
        self.inner.lock().unwrap().reassigned
    }

    /// Wall milliseconds from the first rank loss until the last pending
    /// unit committed; 0.0 when no loss occurred or recovery never
    /// finished.
    pub fn recovery_millis(&self) -> f64 {
        let inner = self.inner.lock().unwrap();
        match (inner.first_loss_at, inner.recovered_at) {
            (Some(lost), Some(done)) => done.saturating_duration_since(lost).as_secs_f64() * 1e3,
            _ => 0.0,
        }
    }
}

/// Liveness flags for every rank, flipped exactly once when a rank's
/// worker exits (cleanly or not). The in-process analogue of the MPI
/// launcher observing a process death; heartbeat timeouts elsewhere
/// cover *unresponsive* (delayed) ranks that are still technically
/// alive.
#[derive(Debug)]
pub struct AliveBoard {
    alive: Vec<AtomicBool>,
}

impl AliveBoard {
    /// All ranks start alive.
    pub fn new(ranks: usize) -> Self {
        AliveBoard {
            alive: (0..ranks).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    /// Whether `rank`'s worker is still running.
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::Acquire)
    }

    /// Marks `rank` exited.
    pub fn set_dead(&self, rank: usize) {
        self.alive[rank].store(false, Ordering::Release);
    }

    /// Number of ranks still alive.
    pub fn live_count(&self) -> usize {
        self.alive
            .iter()
            .filter(|a| a.load(Ordering::Acquire))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_idempotent_and_sums() {
        let l: WorkLedger<u32> = WorkLedger::new();
        let (a, b) = (l.new_id(), l.new_id());
        l.register(a, 0, &1);
        l.register(b, 1, &2);
        assert!(!l.all_completed());
        assert!(l.commit(a, 10));
        assert!(!l.commit(a, 10), "second commit must be a no-op");
        assert!(l.commit(b, 5));
        assert!(l.all_completed());
        assert_eq!(l.total_matches(), 15);
    }

    #[test]
    fn reclaim_foreign_never_takes_own_pending() {
        let l: WorkLedger<u32> = WorkLedger::new();
        let ids: Vec<WorkId> = (0..3).map(|_| l.new_id()).collect();
        l.register(ids[0], 0, &0); // dead rank
        l.register(ids[1], 1, &1); // live rank
        l.register(ids[2], 2, &2); // claimant's own pending unit
        let claimed = l.reclaim_foreign(2, |owner| owner == 0);
        let claimed_ids: Vec<WorkId> = claimed.iter().map(|&(id, _)| id).collect();
        assert_eq!(claimed_ids, vec![ids[0]]);
        // Once claimed it is ours; a second sweep takes nothing.
        assert!(l.reclaim_foreign(2, |owner| owner == 0).is_empty());
        assert_eq!(l.reassigned(), 1);
    }

    #[test]
    fn recovery_clock() {
        let l: WorkLedger<u32> = WorkLedger::new();
        let id = l.new_id();
        l.register(id, 0, &1);
        assert_eq!(l.recovery_millis(), 0.0);
        l.note_loss();
        std::thread::sleep(std::time::Duration::from_millis(2));
        l.commit(id, 1);
        assert!(l.recovery_millis() > 0.0);
    }

    #[test]
    fn alive_board_lifecycle() {
        let b = AliveBoard::new(3);
        assert_eq!(b.live_count(), 3);
        b.set_dead(1);
        assert!(!b.is_alive(1));
        assert!(b.is_alive(0));
        assert_eq!(b.live_count(), 2);
    }
}
