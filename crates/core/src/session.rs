//! Device-bound execution sessions: the mutable, reusable half of a run.
//!
//! An [`ExecSession`] binds an engine configuration to one simulated
//! device and executes [`QueryPlan`]s over data graphs. It owns the two
//! pieces of state worth keeping warm between runs:
//!
//! * a [`PlanCache`] so repeat queries skip order computation, and
//! * a [`BufferPool`] holding the trie's PA/CA arrays, so every run after
//!   the first performs **zero** new device allocations (the paper's
//!   "allocate two big arrays" happens once per session, not once per
//!   query — assertable through [`cuts_gpu_sim::Device::alloc_calls`]).
//!
//! Counter accounting uses per-thread sinks
//! ([`cuts_gpu_sim::CounterSink`]): each run sees exactly the launches it
//! issued, even when other sessions — or other scheduler lanes — drive
//! the same device concurrently.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use cuts_gpu_sim::{BufferPool, CostModel, CounterSink, Counters, Device, DeviceError, PoolStats};
use cuts_graph::components::{extract_component, weakly_connected_components};
use cuts_graph::Graph;
use cuts_obs::{Arg, EventKind, Json, ToJson};
use cuts_trie::{PairTable, Trie};

use crate::cache::{PlanCache, PlanCacheStats};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::kernels::{expand_range, init_candidates, ExpandParams, SigPrefilter};
use crate::plan::{DeviceClass, QueryPlan};
use crate::policy::KernelPolicy;
use crate::result::MatchResult;

/// Sink receiving one complete embedding at a time; the slice is indexed
/// by *query vertex id* (`m[q]` = matched data vertex).
pub type MatchSink<'s> = &'s mut dyn FnMut(&[u32]);

/// Default number of plans a session retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 16;

/// Snapshot of a session's reuse behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStats {
    /// Completed run calls (any entry point).
    pub runs: u64,
    /// Plan-cache statistics.
    pub plans: PlanCacheStats,
    /// Buffer-pool statistics.
    pub pool: PoolStats,
    /// Trie entry capacity the session settled on (fixed at first run).
    pub trie_entries: Option<usize>,
}

impl ToJson for SessionStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::U64(self.runs)),
            (
                "plans",
                Json::obj([
                    ("hits", Json::U64(self.plans.hits)),
                    ("misses", Json::U64(self.plans.misses)),
                    ("evictions", Json::U64(self.plans.evictions)),
                    ("len", Json::U64(self.plans.len as u64)),
                    ("hit_ratio", Json::F64(self.plans.hit_ratio())),
                ]),
            ),
            ("pool", self.pool.to_json()),
            (
                "trie_entries",
                match self.trie_entries {
                    Some(e) => Json::U64(e as u64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// A reusable executor binding an [`EngineConfig`] to one [`Device`].
///
/// ```
/// use cuts_core::{EngineConfig, ExecSession};
/// use cuts_gpu_sim::{Device, DeviceConfig};
/// use cuts_graph::generators::clique;
///
/// let device = Device::new(DeviceConfig::test_small());
/// let session = ExecSession::new(&device, EngineConfig::default());
/// let warmup = session.run(&clique(4), &clique(3)).unwrap();
/// let allocs = device.alloc_calls();
/// let again = session.run(&clique(4), &clique(3)).unwrap();
/// assert_eq!(again.num_matches, warmup.num_matches);
/// assert_eq!(device.alloc_calls(), allocs); // warm run: zero new mallocs
/// ```
pub struct ExecSession<'d> {
    device: &'d Device,
    config: EngineConfig,
    class: DeviceClass,
    plans: PlanCache,
    pool: BufferPool<'d>,
    // Fixed at the first trie acquisition so every later run requests the
    // same capacities and the pool can always serve them.
    trie_entries: OnceLock<usize>,
    runs: AtomicU64,
}

impl<'d> ExecSession<'d> {
    /// A session with the default plan-cache capacity.
    pub fn new(device: &'d Device, config: EngineConfig) -> Self {
        Self::with_cache_capacity(device, config, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// A session retaining at most `plan_capacity` cached plans (0
    /// disables plan caching).
    pub fn with_cache_capacity(
        device: &'d Device,
        config: EngineConfig,
        plan_capacity: usize,
    ) -> Self {
        ExecSession {
            device,
            config,
            class: DeviceClass::of(device.config()),
            plans: PlanCache::new(plan_capacity),
            pool: BufferPool::new(device),
            trie_entries: OnceLock::new(),
            runs: AtomicU64::new(0),
        }
    }

    /// Restores a warm session from a decoded [`crate::Snapshot`]: every
    /// persisted plan whose config and device-class fingerprints match
    /// this session is inserted into the plan cache up front, so repeat
    /// queries hit with **zero** plan builds (`stats().plans.misses`
    /// stays 0), and the snapshot's graph already carries its profile, so
    /// nothing is re-profiled. Plans built for a different configuration
    /// or device class are skipped — the session stays correct, it just
    /// plans those queries on first sight like a cold session would.
    pub fn from_snapshot(
        device: &'d Device,
        config: EngineConfig,
        snapshot: &crate::snapshot::Snapshot,
    ) -> Self {
        let capacity = DEFAULT_PLAN_CACHE_CAPACITY.max(snapshot.plans().len());
        let session = Self::with_cache_capacity(device, config, capacity);
        let seeded = session.seed_plans(snapshot.plans());
        device.trace().instant_with(
            EventKind::Snapshot,
            "load",
            &[
                ("plans", Arg::U64(seeded as u64)),
                (
                    "skipped",
                    Arg::U64((snapshot.plans().len() - seeded) as u64),
                ),
                ("vertices", Arg::U64(snapshot.graph().num_vertices() as u64)),
            ],
        );
        session
    }

    /// Inserts every plan matching this session's configuration and
    /// device class into the plan cache without counting lookups.
    /// Returns how many were accepted.
    pub fn seed_plans(&self, plans: &[Arc<QueryPlan>]) -> usize {
        let config_fp = crate::plan::fingerprint_config(&self.config);
        let class_fp = self.class.fingerprint();
        let mut seeded = 0;
        for plan in plans {
            if plan.key.config == config_fp && plan.key.device_class == class_fp {
                self.plans.insert(Arc::clone(plan));
                seeded += 1;
            }
        }
        seeded
    }

    /// The plans currently resident in this session's cache, least
    /// recently used first (what [`crate::Snapshot::capture`] persists).
    pub fn cached_plans(&self) -> Vec<Arc<QueryPlan>> {
        self.plans.plans()
    }

    /// The device this session executes on.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The device class plans are built for.
    pub fn class(&self) -> &DeviceClass {
        &self.class
    }

    /// Reuse statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            runs: self.runs.load(Ordering::Relaxed),
            plans: self.plans.stats(),
            pool: self.pool.stats(),
            trie_entries: self.trie_entries.get().copied(),
        }
    }

    /// The (cached) plan for `query` under this session's configuration
    /// and device class.
    pub fn plan_for(&self, query: &Graph) -> Result<Arc<QueryPlan>, EngineError> {
        let trace = self.device.trace();
        if !trace.is_enabled() {
            return self.plans.get_or_build(query, &self.config, &self.class);
        }
        let hits_before = self.plans.stats().hits;
        let plan = self.plans.get_or_build(query, &self.config, &self.class);
        let name = if self.plans.stats().hits > hits_before {
            "hit"
        } else {
            "miss"
        };
        trace.instant_with(
            EventKind::Plan,
            name,
            &[("query_n", Arg::U64(query.num_vertices() as u64))],
        );
        plan
    }

    /// Counts all embeddings of `query` in `data`. The query must be
    /// (weakly) connected — see [`ExecSession::run_disconnected`]
    /// otherwise.
    pub fn run(&self, data: &Graph, query: &Graph) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, None, None, None)
    }

    /// Executes an already-built plan over `data` (the batch entry points
    /// and benchmarks use this to separate plan cost from run cost).
    pub fn run_with_plan(
        &self,
        plan: &QueryPlan,
        data: &Graph,
    ) -> Result<MatchResult, EngineError> {
        self.run_inner(plan, data, None, None, None)
    }

    /// [`ExecSession::run_with_plan`] with an explicit trie capacity of
    /// `entries` PA/CA pairs for this run only, acquired exactly (no
    /// best-fit over-serving). The scheduler sizes each job from its own
    /// §5 space estimate instead of this session's device-wide default,
    /// which keeps results independent of lane count and pool history.
    pub fn run_with_plan_sized(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        entries: usize,
    ) -> Result<MatchResult, EngineError> {
        self.run_inner(plan, data, None, None, Some(entries))
    }

    /// Like [`ExecSession::run`], additionally streaming every embedding
    /// to `sink` (no materialisation of the full result set).
    pub fn run_enumerate(
        &self,
        data: &Graph,
        query: &Graph,
        sink: MatchSink<'_>,
    ) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, Some(sink), None, None)
    }

    /// Resumes matching from already-built partial paths: the receiving
    /// side of a §4.2 work donation. `seed.levels.len()` query vertices
    /// (in this session's order for `query`) are treated as matched; the
    /// run continues from there and counts only completions of the seeded
    /// paths. Arguments follow the workspace convention: data graph
    /// before query graph.
    pub fn run_seeded(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, None, Some(seed), None)
    }

    /// Former name of [`ExecSession::run_seeded`].
    #[deprecated(since = "0.5.0", note = "renamed to `run_seeded`")]
    pub fn run_from_trie(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        self.run_seeded(data, query, seed)
    }

    /// Runs one query over many data graphs, planning once. Results are in
    /// input order, one `Result` per data graph — a failure on one graph
    /// (say, a capacity exhaustion) does not discard the completed runs.
    /// The trie buffers and the plan are shared across the whole batch,
    /// so only the first element can trigger device allocation. When the
    /// query itself cannot be planned, every slot carries that error.
    pub fn run_batch(
        &self,
        datas: &[Graph],
        query: &Graph,
    ) -> Vec<Result<MatchResult, EngineError>> {
        let plan = match self.plan_for(query) {
            Ok(p) => p,
            Err(e) => return datas.iter().map(|_| Err(e.clone())).collect(),
        };
        datas
            .iter()
            .map(|data| self.run_inner(&plan, data, None, None, None))
            .collect()
    }

    /// §4 composition for disconnected query graphs: match each weakly
    /// connected component independently and multiply the counts (the
    /// paper's "cross product of individual solutions" — components may
    /// map to overlapping data vertices).
    ///
    /// The returned [`MatchResult`] aggregates the per-component runs:
    /// `num_matches` is the saturating product; `level_counts` and `order`
    /// are the component runs' vectors concatenated in component order
    /// (so `level_counts.len() == |V_Q|`), with `order` remapped to
    /// original query-vertex ids; counters and simulated times sum.
    pub fn run_disconnected(
        &self,
        data: &Graph,
        query: &Graph,
    ) -> Result<MatchResult, EngineError> {
        if query.num_vertices() == 0 {
            return Err(EngineError::EmptyQuery);
        }
        let comps = weakly_connected_components(query);
        let mut num_matches: u64 = 1;
        let mut level_counts = Vec::with_capacity(query.num_vertices());
        let mut order = Vec::with_capacity(query.num_vertices());
        let mut counters = Counters::default();
        let mut sim_millis = 0.0;
        let mut wall_millis = 0.0;
        let mut used_chunking = false;
        for c in 0..comps.num_components() as u32 {
            let (sub, members) = extract_component(query, &comps, c);
            let r = self.run(data, &sub)?;
            num_matches = num_matches.saturating_mul(r.num_matches);
            // Remap the component-local order back to original vertex ids.
            order.extend(r.order.iter().map(|&q| members[q as usize]));
            level_counts.extend(r.level_counts);
            counters += r.counters;
            sim_millis += r.sim_millis;
            wall_millis += r.wall_millis;
            used_chunking |= r.used_chunking;
        }
        Ok(MatchResult {
            num_matches,
            level_counts,
            counters,
            sim_millis,
            wall_millis,
            used_chunking,
            order,
        })
    }

    /// Expands seeded partial paths by exactly one level and returns the
    /// extended paths as a host trie (depth `seed.depth() + 1`). Used by
    /// the distributed worker's progressive deepening: a single heavy
    /// subtree becomes many donatable frontier slices. The seed must be
    /// shallower than the query.
    pub fn expand_seed_once(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<cuts_trie::HostTrie, EngineError> {
        let plan = self.plan_for(query)?;
        let depth = seed.levels.len();
        assert!(
            depth >= 1 && depth < plan.len(),
            "seed depth must be in 1..|V_Q|"
        );
        let mut trie = self.acquire_trie()?;
        let out = (|| {
            trie.load(seed)?;
            let frontier = trie.level(depth - 1);
            let vwarp = self.config.virtual_warp.width(data.avg_out_degree());
            let policy = self.resolve_policy(&plan, data);
            let params = ExpandParams {
                data,
                plan: &plan.order,
                pos: depth,
                vwarp,
                method: policy.method_at(depth),
                shared_words: self.class.shared_mem_words_per_block,
                placement: None,
                max_blocks: self.config.max_blocks,
            };
            expand_range(self.device, &trie, frontier, &params)?;
            trie.seal_level();
            Ok(trie.to_host())
        })();
        self.release_trie(trie);
        out
    }

    /// Hands out a pooled trie. The entry capacity is fixed the first time
    /// a session needs one — sized like the paper's up-front allocation
    /// (`free_words × trie_fraction / 2` entries) — so every subsequent
    /// acquisition requests the exact capacity the pool already holds.
    fn acquire_trie(&self) -> Result<Trie, EngineError> {
        let entries = *self.trie_entries.get_or_init(|| {
            let e = ((self.device.free_words() as f64 * self.config.trie_fraction) / 2.0) as usize;
            let e = e.max(1);
            self.device.trace().instant_with(
                EventKind::Trie,
                "size",
                &[("entries", Arg::U64(e as u64))],
            );
            e
        });
        let pa = self.pool.acquire(entries)?;
        let ca = match self.pool.acquire(entries) {
            Ok(ca) => ca,
            Err(e) => {
                self.pool.release(pa);
                return Err(e.into());
            }
        };
        Ok(Trie::from_table(PairTable::from_buffers(pa, ca)))
    }

    /// A trie with exactly `entries` capacity, bypassing the session-wide
    /// sizing (scheduler path; see [`ExecSession::run_with_plan_sized`]).
    fn acquire_trie_sized(&self, entries: usize) -> Result<Trie, EngineError> {
        let entries = entries.max(1);
        let pa = self.pool.acquire_exact(entries)?;
        let ca = match self.pool.acquire_exact(entries) {
            Ok(ca) => ca,
            Err(e) => {
                self.pool.release(pa);
                return Err(e.into());
            }
        };
        Ok(Trie::from_table(PairTable::from_buffers(pa, ca)))
    }

    /// Returns a trie's buffers to the pool.
    fn release_trie(&self, trie: Trie) {
        let (pa, ca) = trie.into_table().into_buffers();
        self.pool.release(pa);
        self.pool.release(ca);
    }

    fn run_inner(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        sink: Option<MatchSink<'_>>,
        seed: Option<&cuts_trie::HostTrie>,
        trie_entries: Option<usize>,
    ) -> Result<MatchResult, EngineError> {
        let trace = self.device.trace();
        let mut rspan = if trace.is_enabled() {
            let mut s = trace.span(EventKind::Run, "run");
            s.arg("query_n", Arg::U64(plan.len() as u64));
            s.arg("data_n", Arg::U64(data.num_vertices() as u64));
            Some(s)
        } else {
            None
        };
        let wall_start = Instant::now();
        let counter_sink = CounterSink::install();
        let mut trie = match trie_entries {
            Some(entries) => self.acquire_trie_sized(entries)?,
            None => self.acquire_trie()?,
        };
        let out = self.run_core(plan, data, &mut trie, sink, seed, wall_start, &counter_sink);
        self.release_trie(trie);
        if let Ok(r) = &out {
            self.runs.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &mut rspan {
                s.arg("matches", Arg::U64(r.num_matches));
                s.counters(r.counters.into());
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        trie: &mut Trie,
        mut sink: Option<MatchSink<'_>>,
        seed: Option<&cuts_trie::HostTrie>,
        wall_start: Instant,
        counter_sink: &CounterSink,
    ) -> Result<MatchResult, EngineError> {
        let order = &plan.order;
        let n = order.len();
        let mut level_counts = vec![0u64; n];
        let vwarp = self.config.virtual_warp.width(data.avg_out_degree());
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let policy = self.resolve_policy(plan, data);
        let profile = data.profile();

        let (frontier0, start_pos) = match seed {
            None => {
                let pre = self.config.signature_prefilter.then(|| SigPrefilter {
                    sigs: &profile.signatures,
                    required: plan.required_root_signature(data.is_labeled()),
                });
                init_candidates(
                    self.device,
                    data,
                    order,
                    trie,
                    self.config.max_blocks,
                    pre.as_ref(),
                )?;
                let lvl0 = trie.seal_level();
                level_counts[0] = lvl0.len() as u64;
                (lvl0, 1)
            }
            Some(host) => {
                let depth = host.levels.len();
                assert!(depth >= 1 && depth <= n, "seed depth out of range");
                trie.load(host)?;
                for (l, r) in host.levels.iter().enumerate() {
                    level_counts[l] = r.len() as u64;
                }
                (trie.level(depth - 1), depth)
            }
        };

        let mut used_chunking = false;
        let mut frontier = frontier0;
        let mut pos = start_pos;
        let mut chunked_total: Option<u64> = None;

        let trace = self.device.trace();
        while pos < n && !frontier.is_empty() {
            let mut lspan = if trace.is_enabled() {
                let mut s = trace.span(EventKind::Level, &format!("level {pos}"));
                s.arg("pos", Arg::U64(pos as u64));
                s.arg("frontier", Arg::U64(frontier.len() as u64));
                Some(s)
            } else {
                None
            };
            let pre_len = trie.table().len();
            let placement = self.placement(&mut rng, &frontier);
            let params = ExpandParams {
                data,
                plan: order,
                pos,
                vwarp,
                method: policy.method_at(pos),
                shared_words: self.class.shared_mem_words_per_block,
                placement: placement.as_deref(),
                max_blocks: self.config.max_blocks,
            };
            match expand_range(self.device, trie, frontier.clone(), &params) {
                Ok(()) => {
                    let lvl = trie.seal_level();
                    level_counts[pos] += lvl.len() as u64;
                    if let Some(s) = &mut lspan {
                        s.arg("paths", Arg::U64(lvl.len() as u64));
                    }
                    frontier = lvl;
                    pos += 1;
                }
                Err(DeviceError::BufferOverflow { .. }) => {
                    // Hybrid BFS-DFS (§4.1.2): roll back the partial level
                    // and walk the remaining depths chunk by chunk.
                    trie.table().truncate(pre_len);
                    used_chunking = true;
                    drop(lspan.take());
                    trace.instant_with(
                        EventKind::Trie,
                        "spill",
                        &[
                            ("depth", Arg::U64(pos as u64)),
                            ("frontier", Arg::U64(frontier.len() as u64)),
                        ],
                    );
                    let total = self.process_chunks(
                        data,
                        plan,
                        &policy,
                        trie,
                        pos,
                        frontier.clone(),
                        self.config.chunk_size,
                        vwarp,
                        &mut level_counts,
                        &mut sink,
                    )?;
                    chunked_total = Some(total);
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }

        let num_matches = match chunked_total {
            Some(t) => t,
            None if pos == n => {
                if let Some(sink) = sink.as_mut() {
                    self.emit_level(trie, order, frontier.clone(), sink);
                }
                level_counts[n - 1]
            }
            None => 0, // frontier drained before reaching full depth
        };

        let counters = counter_sink.snapshot();
        let sim_millis = CostModel::default().millis(&counters, self.device.config());
        Ok(MatchResult {
            num_matches,
            level_counts,
            counters,
            sim_millis,
            wall_millis: wall_start.elapsed().as_secs_f64() * 1e3,
            used_chunking,
            order: order.order.clone(),
        })
    }

    /// Computes the plan-time kernel policy for running `plan` over
    /// `data`, emitting one `policy` obs event per level (plus the
    /// prefilter verdict) when tracing is on.
    fn resolve_policy(&self, plan: &QueryPlan, data: &Graph) -> KernelPolicy {
        let policy = plan.kernel_policy(&data.profile());
        let trace = self.device.trace();
        if trace.is_enabled() {
            for d in &policy.levels {
                trace.instant_with(
                    EventKind::Policy,
                    d.method.name(),
                    &[
                        ("pos", Arg::U64(d.pos as u64)),
                        ("constraints", Arg::U64(d.constraints as u64)),
                        ("est_first_len", Arg::U64(d.est_first_len as u64)),
                    ],
                );
            }
            trace.instant_with(
                EventKind::Policy,
                if self.config.signature_prefilter {
                    "prefilter_on"
                } else {
                    "prefilter_off"
                },
                &[],
            );
        }
        policy
    }

    /// Shuffled frontier placement when configured (§4.1.2: randomising
    /// partial-path placement fixes id-order load imbalance).
    fn placement(&self, rng: &mut SmallRng, frontier: &Range<usize>) -> Option<Vec<u32>> {
        if !self.config.randomize_placement || frontier.len() < 2 {
            return None;
        }
        let mut p: Vec<u32> = frontier.clone().map(|i| i as u32).collect();
        p.shuffle(rng);
        Some(p)
    }

    /// Depth-first walk over frontier chunks: expand a chunk, recurse one
    /// level deeper, reclaim the chunk's scratch level, move on. Chunk
    /// sizes halve locally when even one chunk cannot fit.
    #[allow(clippy::too_many_arguments)]
    fn process_chunks(
        &self,
        data: &Graph,
        plan: &QueryPlan,
        policy: &KernelPolicy,
        trie: &mut Trie,
        pos: usize,
        frontier: Range<usize>,
        chunk_size: usize,
        vwarp: usize,
        level_counts: &mut [u64],
        sink: &mut Option<MatchSink<'_>>,
    ) -> Result<u64, EngineError> {
        let n = plan.len();
        if pos == n {
            if let Some(sink) = sink.as_mut() {
                self.emit_level(trie, &plan.order, frontier.clone(), sink);
            }
            return Ok(frontier.len() as u64);
        }
        let mut total = 0u64;
        for chunk in cuts_trie::Chunks::new(frontier, chunk_size) {
            let pre_len = trie.table().len();
            let params = ExpandParams {
                data,
                plan: &plan.order,
                pos,
                vwarp,
                method: policy.method_at(pos),
                shared_words: self.class.shared_mem_words_per_block,
                placement: None,
                max_blocks: self.config.max_blocks,
            };
            match expand_range(self.device, trie, chunk.clone(), &params) {
                Ok(()) => {
                    let lvl = trie.seal_level();
                    level_counts[pos] += lvl.len() as u64;
                    total += self.process_chunks(
                        data,
                        plan,
                        policy,
                        trie,
                        pos + 1,
                        lvl,
                        chunk_size,
                        vwarp,
                        level_counts,
                        sink,
                    )?;
                    trie.pop_levels(1);
                }
                Err(DeviceError::BufferOverflow { .. }) => {
                    trie.table().truncate(pre_len);
                    if chunk.len() == 1 {
                        return Err(EngineError::CapacityExhausted { depth: pos });
                    }
                    self.device.trace().instant_with(
                        EventKind::Trie,
                        "halve",
                        &[
                            ("depth", Arg::U64(pos as u64)),
                            ("chunk", Arg::U64(chunk.len() as u64)),
                        ],
                    );
                    // Halve locally and retry this chunk.
                    total += self.process_chunks(
                        data,
                        plan,
                        policy,
                        trie,
                        pos,
                        chunk.clone(),
                        (chunk.len() / 2).max(1),
                        vwarp,
                        level_counts,
                        sink,
                    )?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(total)
    }

    /// Streams the full embeddings ending at `level`'s entries, remapped
    /// from order space to query-vertex space.
    fn emit_level(
        &self,
        trie: &Trie,
        order: &crate::order::MatchOrder,
        level: Range<usize>,
        sink: MatchSink<'_>,
    ) {
        let n = order.len();
        let mut m = vec![0u32; n];
        for leaf in level {
            let path = trie.extract_path(leaf);
            debug_assert_eq!(path.len(), n);
            for (l, &v) in path.iter().enumerate() {
                m[order.order[l] as usize] = v;
            }
            sink(&m);
        }
    }
}

impl std::fmt::Debug for ExecSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSession")
            .field("device", &self.device.config().name)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{clique, erdos_renyi, mesh2d};

    #[test]
    fn warm_runs_reuse_buffers_and_plans() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let first = session.run(&clique(4), &clique(3)).unwrap();
        let allocs_after_first = device.alloc_calls();
        for _ in 0..3 {
            let r = session.run(&clique(4), &clique(3)).unwrap();
            assert_eq!(r.num_matches, first.num_matches);
            assert_eq!(r.level_counts, first.level_counts);
        }
        assert_eq!(
            device.alloc_calls(),
            allocs_after_first,
            "warm runs must not call the device allocator"
        );
        let s = session.stats();
        assert_eq!(s.runs, 4);
        assert_eq!(s.plans.hits, 3);
        assert_eq!(s.plans.misses, 1);
        assert_eq!(s.pool.device_allocs, 2, "one PA + one CA, ever");
        assert_eq!(s.pool.reuses, 6);
    }

    #[test]
    fn batch_runs_plan_once() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let datas = vec![clique(4), mesh2d(3, 3), erdos_renyi(30, 90, 7)];
        let batch = session.run_batch(&datas, &clique(3));
        assert_eq!(batch.len(), 3);
        for (data, r) in datas.iter().zip(&batch) {
            let r = r.as_ref().expect("per-job result is Ok");
            let fresh = ExecSession::new(&device, EngineConfig::default())
                .run(data, &clique(3))
                .unwrap();
            assert_eq!(r.num_matches, fresh.num_matches);
        }
        let s = session.stats();
        assert_eq!(s.plans.misses, 1, "one plan serves the whole batch");
        assert_eq!(s.pool.device_allocs, 2);
    }

    #[test]
    fn batch_with_unplannable_query_fails_per_job() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let datas = vec![clique(4), mesh2d(3, 3)];
        let disconnected = Graph::undirected(4, &[(0, 1), (2, 3)]);
        let batch = session.run_batch(&datas, &disconnected);
        assert_eq!(batch.len(), 2);
        for r in &batch {
            assert!(matches!(r, Err(EngineError::DisconnectedQuery)));
        }
    }

    #[test]
    fn sized_runs_match_default_runs() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = erdos_renyi(30, 90, 7);
        let query = clique(3);
        let baseline = session.run(&data, &query).unwrap();
        let plan = session.plan_for(&query).unwrap();
        // Any capacity large enough to avoid spilling gives identical
        // counts; a deliberately tiny one still matches via chunking.
        for entries in [256usize, 4096] {
            let r = session.run_with_plan_sized(&plan, &data, entries).unwrap();
            assert_eq!(r.num_matches, baseline.num_matches);
            assert_eq!(r.level_counts, baseline.level_counts);
        }
    }

    #[test]
    fn counters_are_per_run_despite_shared_device() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let a = session.run(&clique(4), &clique(3)).unwrap();
        let b = session.run(&clique(4), &clique(3)).unwrap();
        // Scoped accounting: each run sees only its own traffic, so two
        // identical runs report identical counters.
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.kernel_launches > 0);
    }

    #[test]
    fn disconnected_returns_full_result() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = clique(4);
        let q = Graph::undirected(4, &[(0, 1), (2, 3)]);
        let r = session.run_disconnected(&data, &q).unwrap();
        assert_eq!(r.num_matches, 144);
        assert_eq!(r.level_counts.len(), 4, "one entry per query vertex");
        assert_eq!(r.level_counts, vec![4, 12, 4, 12]);
        // Order covers every original query vertex exactly once.
        let mut o = r.order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
        // Connected query passes straight through.
        let c = session.run_disconnected(&data, &clique(3)).unwrap();
        assert_eq!(c.num_matches, 24);
        assert_eq!(c.level_counts, vec![4, 12, 24]);
    }

    #[test]
    fn sessions_on_one_device_do_not_clobber_each_other() {
        let device = Device::new(DeviceConfig::test_small());
        let a = ExecSession::new(&device, EngineConfig::default());
        let b = ExecSession::new(&device, EngineConfig::default());
        let ra = a.run(&mesh2d(3, 3), &clique(3)).unwrap();
        let rb = b.run(&mesh2d(3, 3), &clique(3)).unwrap();
        assert_eq!(ra.num_matches, rb.num_matches);
        assert_eq!(ra.counters, rb.counters, "scoped counters, no resets");
    }
}
