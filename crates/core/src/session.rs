//! Device-bound execution sessions: the mutable, reusable half of a run.
//!
//! An [`ExecSession`] binds an engine configuration to one simulated
//! device and executes [`QueryPlan`]s over data graphs. It owns the two
//! pieces of state worth keeping warm between runs:
//!
//! * a [`PlanCache`] so repeat queries skip order computation, and
//! * an [`cuts_gpu_sim::Arena`] carved once from the device — one slab
//!   class sized for PA/CA trie segments — so every run after the first
//!   performs **zero** new device allocations (the paper's "allocate two
//!   big arrays" happens once per session, not once per query —
//!   assertable through [`cuts_gpu_sim::Device::alloc_calls`]). Tries are
//!   slab *chains* over that class: undersized runs grow by appending a
//!   segment in place instead of reallocating and retrying.
//!
//! Counter accounting uses per-thread sinks
//! ([`cuts_gpu_sim::CounterSink`]): each run sees exactly the launches it
//! issued, even when other sessions — or other scheduler lanes — drive
//! the same device concurrently.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use cuts_gpu_sim::{
    Arena, ArenaStats, ClassSpec, CostModel, CounterSink, Counters, Device, DeviceError,
};
use cuts_graph::components::{extract_component, weakly_connected_components};
use cuts_graph::{Graph, VertexId};
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, EventKind, Json, ToJson};
use cuts_trie::{PairTable, Trie};

use crate::cache::{PlanCache, PlanCacheStats};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::kernels::{expand_range, init_candidates, ExpandParams, SigPrefilter};
use crate::plan::{DeviceClass, QueryPlan};
use crate::policy::KernelPolicy;
use crate::result::MatchResult;

/// Sink receiving one complete embedding at a time; the slice is indexed
/// by *query vertex id* (`m[q]` = matched data vertex).
pub type MatchSink<'s> = &'s mut dyn FnMut(&[u32]);

/// Default number of plans a session retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 16;

/// Snapshot of a session's reuse behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Completed run calls (any entry point).
    pub runs: u64,
    /// Plan-cache statistics.
    pub plans: PlanCacheStats,
    /// Arena-slab statistics (`None` until the first trie acquisition
    /// carves the arena): class geometry, occupancy, high-water marks.
    pub arena: Option<ArenaStats>,
    /// Trie entry capacity the session settled on (fixed at first run).
    pub trie_entries: Option<usize>,
}

impl ToJson for SessionStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("runs", Json::U64(self.runs)),
            (
                "plans",
                Json::obj([
                    ("hits", Json::U64(self.plans.hits)),
                    ("misses", Json::U64(self.plans.misses)),
                    ("evictions", Json::U64(self.plans.evictions)),
                    ("len", Json::U64(self.plans.len as u64)),
                    ("hit_ratio", Json::F64(self.plans.hit_ratio())),
                ]),
            ),
            (
                "arena",
                match &self.arena {
                    Some(a) => a.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "trie_entries",
                match self.trie_entries {
                    Some(e) => Json::U64(e as u64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Grants or denies trie-chain growth, in device words. The serial path
/// always grants (the whole device budget is the one job's to take); the
/// scheduler's lane ledger charges the device's admission reservation so
/// concurrent jobs can never oversubscribe the arena.
pub(crate) trait GrowthLedger: Sync {
    /// Reserve `words` more for the running job; `false` = no room now.
    fn try_grant(&self, words: usize) -> bool;
    /// Return `words` previously granted (growth that could not be used).
    fn refund(&self, words: usize);
}

/// A ledger that always grants: single-tenant execution.
pub(crate) struct GrantAll;

impl GrowthLedger for GrantAll {
    fn try_grant(&self, _words: usize) -> bool {
        true
    }
    fn refund(&self, _words: usize) {}
}

/// Failure of a budgeted run (the scheduler path).
#[derive(Debug)]
pub(crate) enum BudgetedRunError {
    /// The run itself failed.
    Engine(EngineError),
    /// The ledger denied in-place growth: the caller should release its
    /// reservation, re-reserve at `target_entries`, and rerun — the
    /// deterministic rerun-at-target keeps lane results byte-identical
    /// to the serial grow-in-place sequence.
    GrowthDenied {
        /// The capacity (entries) the chain wanted to grow to.
        target_entries: usize,
    },
}

impl From<EngineError> for BudgetedRunError {
    fn from(e: EngineError) -> Self {
        BudgetedRunError::Engine(e)
    }
}

impl From<DeviceError> for BudgetedRunError {
    fn from(e: DeviceError) -> Self {
        BudgetedRunError::Engine(e.into())
    }
}

/// The session's carved trie storage: one arena class of PA/CA slabs.
struct TrieArena {
    arena: Arena,
    /// Entries per slab (= slab words; one u32 per entry per array).
    seg_entries: usize,
    /// Segment pairs the class can back at once (`2 × pairs` slabs).
    pairs: usize,
}

impl TrieArena {
    /// Largest trie capacity (entries) one chain can reach.
    fn max_chain_entries(&self) -> usize {
        self.pairs * self.seg_entries
    }

    /// Device words a chain sized for `entries` occupies: both arrays,
    /// whole segments, clamped to the class (larger requests saturate at
    /// the full arena and rely on hybrid chunking past that).
    fn chain_words(&self, entries: usize) -> usize {
        let segs = entries.div_ceil(self.seg_entries).clamp(1, self.pairs);
        2 * segs * self.seg_entries
    }
}

/// Mutable growth context threaded through a budgeted run.
struct GrowthState<'a> {
    cur_entries: usize,
    limit_entries: usize,
    ledger: &'a dyn GrowthLedger,
}

/// A reusable executor binding an [`EngineConfig`] to one [`Device`].
///
/// ```
/// use cuts_core::{EngineConfig, ExecSession};
/// use cuts_gpu_sim::{Device, DeviceConfig};
/// use cuts_graph::generators::clique;
///
/// let device = Device::new(DeviceConfig::test_small());
/// let session = ExecSession::new(&device, EngineConfig::default());
/// let warmup = session.run(&clique(4), &clique(3)).unwrap();
/// let allocs = device.alloc_calls();
/// let again = session.run(&clique(4), &clique(3)).unwrap();
/// assert_eq!(again.num_matches, warmup.num_matches);
/// assert_eq!(device.alloc_calls(), allocs); // warm run: zero new mallocs
/// ```
pub struct ExecSession<'d> {
    device: &'d Device,
    config: EngineConfig,
    class: DeviceClass,
    plans: PlanCache,
    // Carved at the first trie acquisition; geometry is then fixed, so
    // every later run chains over the same slab class and never touches
    // the device allocator again.
    arena: OnceLock<TrieArena>,
    arena_init: Mutex<()>,
    runs: AtomicU64,
}

impl<'d> ExecSession<'d> {
    /// A session with the default plan-cache capacity.
    pub fn new(device: &'d Device, config: EngineConfig) -> Self {
        Self::with_cache_capacity(device, config, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// A session retaining at most `plan_capacity` cached plans (0
    /// disables plan caching).
    pub fn with_cache_capacity(
        device: &'d Device,
        config: EngineConfig,
        plan_capacity: usize,
    ) -> Self {
        ExecSession {
            device,
            config,
            class: DeviceClass::of(device.config()),
            plans: PlanCache::new(plan_capacity),
            arena: OnceLock::new(),
            arena_init: Mutex::new(()),
            runs: AtomicU64::new(0),
        }
    }

    /// Restores a warm session from a decoded [`crate::Snapshot`]: every
    /// persisted plan whose config and device-class fingerprints match
    /// this session is inserted into the plan cache up front, so repeat
    /// queries hit with **zero** plan builds (`stats().plans.misses`
    /// stays 0), and the snapshot's graph already carries its profile, so
    /// nothing is re-profiled. Plans built for a different configuration
    /// or device class are skipped — the session stays correct, it just
    /// plans those queries on first sight like a cold session would.
    pub fn from_snapshot(
        device: &'d Device,
        config: EngineConfig,
        snapshot: &crate::snapshot::Snapshot,
    ) -> Self {
        let capacity = DEFAULT_PLAN_CACHE_CAPACITY.max(snapshot.plans().len());
        let session = Self::with_cache_capacity(device, config, capacity);
        let seeded = session.seed_plans(snapshot.plans());
        device.trace().instant_with(
            EventKind::Snapshot,
            "load",
            &[
                ("plans", Arg::U64(seeded as u64)),
                (
                    "skipped",
                    Arg::U64((snapshot.plans().len() - seeded) as u64),
                ),
                ("vertices", Arg::U64(snapshot.graph().num_vertices() as u64)),
            ],
        );
        session
    }

    /// Inserts every plan matching this session's configuration and
    /// device class into the plan cache without counting lookups.
    /// Returns how many were accepted.
    pub fn seed_plans(&self, plans: &[Arc<QueryPlan>]) -> usize {
        let config_fp = crate::plan::fingerprint_config(&self.config);
        let class_fp = self.class.fingerprint();
        let mut seeded = 0;
        for plan in plans {
            if plan.key.config == config_fp && plan.key.device_class == class_fp {
                self.plans.insert(Arc::clone(plan));
                seeded += 1;
            }
        }
        seeded
    }

    /// The plans currently resident in this session's cache, least
    /// recently used first (what [`crate::Snapshot::capture`] persists).
    pub fn cached_plans(&self) -> Vec<Arc<QueryPlan>> {
        self.plans.plans()
    }

    /// The device this session executes on.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The device class plans are built for.
    pub fn class(&self) -> &DeviceClass {
        &self.class
    }

    /// Reuse statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            runs: self.runs.load(Ordering::Relaxed),
            plans: self.plans.stats(),
            arena: self.arena.get().map(|t| t.arena.stats()),
            trie_entries: self.arena.get().map(|t| t.max_chain_entries()),
        }
    }

    /// The (cached) plan for `query` under this session's configuration
    /// and device class.
    pub fn plan_for(&self, query: &Graph) -> Result<Arc<QueryPlan>, EngineError> {
        let trace = self.device.trace();
        if !trace.is_enabled() {
            return self.plans.get_or_build(query, &self.config, &self.class);
        }
        let hits_before = self.plans.stats().hits;
        let plan = self.plans.get_or_build(query, &self.config, &self.class);
        let name = if self.plans.stats().hits > hits_before {
            "hit"
        } else {
            "miss"
        };
        trace.instant_with(
            EventKind::Plan,
            name,
            &[("query_n", Arg::U64(query.num_vertices() as u64))],
        );
        plan
    }

    /// Counts all embeddings of `query` in `data`. The query must be
    /// (weakly) connected — see [`ExecSession::run_disconnected`]
    /// otherwise.
    pub fn run(&self, data: &Graph, query: &Graph) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, None, None, None)
    }

    /// Executes an already-built plan over `data` (the batch entry points
    /// and benchmarks use this to separate plan cost from run cost).
    pub fn run_with_plan(
        &self,
        plan: &QueryPlan,
        data: &Graph,
    ) -> Result<MatchResult, EngineError> {
        self.run_inner(plan, data, None, None, None)
    }

    /// [`ExecSession::run_with_plan`] with an explicit trie capacity of
    /// `entries` PA/CA pairs for this run only, acquired exactly (no
    /// best-fit over-serving). The scheduler sizes each job from its own
    /// §5 space estimate instead of this session's device-wide default,
    /// which keeps results independent of lane count and arena history.
    pub fn run_with_plan_sized(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        entries: usize,
    ) -> Result<MatchResult, EngineError> {
        self.run_inner(plan, data, None, None, Some(entries))
    }

    /// Like [`ExecSession::run`], additionally streaming every embedding
    /// to `sink` (no materialisation of the full result set).
    pub fn run_enumerate(
        &self,
        data: &Graph,
        query: &Graph,
        sink: MatchSink<'_>,
    ) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, Some(sink), None, None)
    }

    /// Resumes matching from already-built partial paths: the receiving
    /// side of a §4.2 work donation. `seed.levels.len()` query vertices
    /// (in this session's order for `query`) are treated as matched; the
    /// run continues from there and counts only completions of the seeded
    /// paths. Arguments follow the workspace convention: data graph
    /// before query graph.
    pub fn run_seeded(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, None, Some(seed), None)
    }

    /// [`ExecSession::run_seeded`] with streaming: every completion of a
    /// seeded path is handed to `sink` as a full embedding in
    /// query-vertex space. This is the incremental matcher's workhorse —
    /// dirty roots become a depth-1 seed and only their subtrees are
    /// re-expanded on the device.
    pub fn run_seeded_enumerate(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
        sink: MatchSink<'_>,
    ) -> Result<MatchResult, EngineError> {
        let plan = self.plan_for(query)?;
        self.run_inner(&plan, data, Some(sink), Some(seed), None)
    }

    /// Host-side replica of the level-0 root filter (Definition 5 degree
    /// dominance plus label compatibility) for `query`'s matching order.
    /// The signature prefilter is deliberately elided: it is
    /// pruning-sound (a vertex it rejects hosts no embeddings), so
    /// seeding such a vertex costs a fruitless expansion but never
    /// changes the match set. Used by the batch-dynamic path to decide
    /// which dirty vertices are worth re-seeding.
    pub fn root_passes(
        &self,
        data: &Graph,
        query: &Graph,
        v: VertexId,
    ) -> Result<bool, EngineError> {
        let plan = self.plan_for(query)?;
        let o = &plan.order;
        Ok(data.degree_dominates(v, o.q_out[0], o.q_in[0])
            && crate::order::label_ok(data, v, o.q_label[0]))
    }

    /// Materialises `dirty` (the subtrees uprooted by a batch of edge
    /// edits) on an arena chain and immediately releases it: the slabs
    /// the stale subtrees occupied return to the arena before their
    /// roots are re-expanded. Emits one `subtree_release` trie event
    /// carrying the entry and root counts; returns the entries released.
    pub fn release_subtrees(&self, dirty: &cuts_trie::HostTrie) -> Result<usize, EngineError> {
        let entries = dirty.len();
        if entries == 0 {
            return Ok(0);
        }
        let mut trie = self.acquire_trie()?;
        trie.load(dirty)?;
        drop(trie); // slabs return to the arena here
        self.device.trace().instant_with(
            EventKind::Trie,
            "subtree_release",
            &[
                ("entries", Arg::U64(entries as u64)),
                (
                    "roots",
                    Arg::U64(dirty.levels.first().map_or(0, |r| r.len()) as u64),
                ),
            ],
        );
        Ok(entries)
    }

    /// Former name of [`ExecSession::run_seeded`].
    ///
    /// Callers that deny deprecations fail to compile against it:
    ///
    /// ```compile_fail
    /// #![deny(deprecated)]
    /// use cuts_core::{EngineConfig, ExecSession};
    /// use cuts_gpu_sim::{Device, DeviceConfig};
    /// use cuts_graph::generators::clique;
    /// use cuts_trie::HostTrie;
    ///
    /// let device = Device::new(DeviceConfig::test_small());
    /// let session = ExecSession::new(&device, EngineConfig::default());
    /// let seed = HostTrie::from_flat_paths(&[vec![0]]);
    /// let _ = session.run_from_trie(&clique(4), &clique(3), &seed);
    /// ```
    #[deprecated(since = "0.5.0", note = "renamed to `run_seeded`")]
    pub fn run_from_trie(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        self.run_seeded(data, query, seed)
    }

    /// Runs one query over many data graphs, planning once. Results are in
    /// input order, one `Result` per data graph — a failure on one graph
    /// (say, a capacity exhaustion) does not discard the completed runs.
    /// The trie buffers and the plan are shared across the whole batch,
    /// so only the first element can trigger device allocation. When the
    /// query itself cannot be planned, every slot carries that error.
    pub fn run_batch(
        &self,
        datas: &[Graph],
        query: &Graph,
    ) -> Vec<Result<MatchResult, EngineError>> {
        let plan = match self.plan_for(query) {
            Ok(p) => p,
            Err(e) => return datas.iter().map(|_| Err(e.clone())).collect(),
        };
        datas
            .iter()
            .map(|data| self.run_inner(&plan, data, None, None, None))
            .collect()
    }

    /// §4 composition for disconnected query graphs: match each weakly
    /// connected component independently and multiply the counts (the
    /// paper's "cross product of individual solutions" — components may
    /// map to overlapping data vertices).
    ///
    /// The returned [`MatchResult`] aggregates the per-component runs:
    /// `num_matches` is the saturating product; `level_counts` and `order`
    /// are the component runs' vectors concatenated in component order
    /// (so `level_counts.len() == |V_Q|`), with `order` remapped to
    /// original query-vertex ids; counters and simulated times sum.
    pub fn run_disconnected(
        &self,
        data: &Graph,
        query: &Graph,
    ) -> Result<MatchResult, EngineError> {
        if query.num_vertices() == 0 {
            return Err(EngineError::EmptyQuery);
        }
        let comps = weakly_connected_components(query);
        let mut num_matches: u64 = 1;
        let mut level_counts = Vec::with_capacity(query.num_vertices());
        let mut order = Vec::with_capacity(query.num_vertices());
        let mut counters = Counters::default();
        let mut sim_millis = 0.0;
        let mut wall_millis = 0.0;
        let mut used_chunking = false;
        for c in 0..comps.num_components() as u32 {
            let (sub, members) = extract_component(query, &comps, c);
            let r = self.run(data, &sub)?;
            num_matches = num_matches.saturating_mul(r.num_matches);
            // Remap the component-local order back to original vertex ids.
            order.extend(r.order.iter().map(|&q| members[q as usize]));
            level_counts.extend(r.level_counts);
            counters += r.counters;
            sim_millis += r.sim_millis;
            wall_millis += r.wall_millis;
            used_chunking |= r.used_chunking;
        }
        Ok(MatchResult {
            num_matches,
            level_counts,
            counters,
            sim_millis,
            wall_millis,
            used_chunking,
            order,
        })
    }

    /// Expands seeded partial paths by exactly one level and returns the
    /// extended paths as a host trie (depth `seed.depth() + 1`). Used by
    /// the distributed worker's progressive deepening: a single heavy
    /// subtree becomes many donatable frontier slices. The seed must be
    /// shallower than the query.
    pub fn expand_seed_once(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<cuts_trie::HostTrie, EngineError> {
        let plan = self.plan_for(query)?;
        let depth = seed.levels.len();
        assert!(
            depth >= 1 && depth < plan.len(),
            "seed depth must be in 1..|V_Q|"
        );
        let mut trie = self.acquire_trie()?;
        let out = (|| {
            trie.load(seed)?;
            let frontier = trie.level(depth - 1);
            let vwarp = self.config.virtual_warp.width(data.avg_out_degree());
            let policy = self.resolve_policy(&plan, data);
            let params = ExpandParams {
                data,
                plan: &plan.order,
                pos: depth,
                vwarp,
                method: policy.method_at(depth),
                shared_words: self.class.shared_mem_words_per_block,
                placement: None,
                max_blocks: self.config.max_blocks,
            };
            expand_range(self.device, &trie, frontier, &params)?;
            trie.seal_level();
            Ok(trie.to_host())
        })();
        drop(trie); // slabs return to the arena here
        out
    }

    /// The session's trie arena, carved on first use. Geometry follows
    /// the paper's up-front allocation: `W = free_words × trie_fraction`
    /// device words give `E = W / 2` PA/CA entry pairs, split into
    /// power-of-two slabs of roughly `E / 32` entries — small enough that
    /// per-job chains track their §5 estimates closely, large enough that
    /// a full chain is a ~32-hop spine.
    fn trie_arena(&self) -> Result<&TrieArena, EngineError> {
        if let Some(t) = self.arena.get() {
            return Ok(t);
        }
        let _g = self.arena_init.lock().unwrap();
        if let Some(t) = self.arena.get() {
            return Ok(t);
        }
        let w = (self.device.free_words() as f64 * self.config.trie_fraction) as usize;
        let e = (w / 2).max(1);
        let floor_pow2 = 1usize << (usize::BITS - 1 - e.leading_zeros());
        let seg_entries = ((e / 32).max(1).next_power_of_two()).min(floor_pow2);
        let pairs = (e / seg_entries).max(1);
        let arena = Arena::new(
            self.device,
            &[ClassSpec {
                slab_words: seg_entries,
                slabs: 2 * pairs,
            }],
        )?;
        self.device.trace().instant_with(
            EventKind::Trie,
            "size",
            &[
                ("entries", Arg::U64((pairs * seg_entries) as u64)),
                ("seg_entries", Arg::U64(seg_entries as u64)),
                ("pairs", Arg::U64(pairs as u64)),
            ],
        );
        let _ = self.arena.set(TrieArena {
            arena,
            seg_entries,
            pairs,
        });
        Ok(self.arena.get().expect("arena initialised above"))
    }

    /// Forces the arena carve now (the scheduler does this before
    /// admission so its word budget matches the arena exactly).
    pub(crate) fn prepare_trie_arena(&self) -> Result<(), EngineError> {
        self.trie_arena().map(|_| ())
    }

    /// Total arena words available to trie chains — the scheduler's
    /// admission budget. Requires [`ExecSession::prepare_trie_arena`].
    pub(crate) fn trie_budget_words(&self) -> usize {
        let t = self.arena.get().expect("prepare_trie_arena first");
        2 * t.max_chain_entries()
    }

    /// Device words a chain sized for `entries` reserves (whole slabs,
    /// saturating at the full arena). The scheduler's admission ledger
    /// accounts in these units, so reservations sum to exactly what the
    /// arena can grant — a deterministic no-fit, never a surprise OOM.
    /// Requires [`ExecSession::prepare_trie_arena`].
    pub(crate) fn chain_words(&self, entries: usize) -> usize {
        self.arena
            .get()
            .expect("prepare_trie_arena first")
            .chain_words(entries)
    }

    /// Hands out a full-capacity trie chain (every slab pair the class
    /// holds). Warm-path cost is `O(pairs)` bitmap CASes — the device
    /// allocator is never involved after the first carve.
    fn acquire_trie(&self) -> Result<Trie, EngineError> {
        let t = self.trie_arena()?;
        let cap = t.max_chain_entries();
        let table = PairTable::chained_on_arena(&t.arena, 0, cap, cap)?;
        Ok(Trie::from_table(table))
    }

    /// A trie chain covering `entries` with no room to grow, bypassing
    /// the session-wide sizing (scheduler path; see
    /// [`ExecSession::run_with_plan_sized`]). Capacity is `entries`
    /// rounded up to whole slabs and clamped to the class — a
    /// deterministic function of `entries` and the device model alone,
    /// which keeps results independent of lane count and run history.
    fn acquire_trie_sized(&self, entries: usize) -> Result<Trie, EngineError> {
        let t = self.trie_arena()?;
        let entries = entries.clamp(1, t.max_chain_entries());
        let table = PairTable::chained_on_arena(&t.arena, 0, entries, entries)?;
        Ok(Trie::from_table(table))
    }

    /// A trie chain starting at `entries` whose spine can grow to
    /// `limit`. Used by the budgeted scheduler path.
    fn acquire_trie_budgeted(&self, entries: usize, limit: usize) -> Result<Trie, EngineError> {
        let t = self.trie_arena()?;
        let table = PairTable::chained_on_arena(&t.arena, 0, entries, limit)?;
        Ok(Trie::from_table(table))
    }

    fn run_inner(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        sink: Option<MatchSink<'_>>,
        seed: Option<&cuts_trie::HostTrie>,
        trie_entries: Option<usize>,
    ) -> Result<MatchResult, EngineError> {
        let trace = self.device.trace();
        let mut rspan = if trace.is_enabled() {
            let mut s = trace.span(EventKind::Run, "run");
            s.arg("query_n", Arg::U64(plan.len() as u64));
            s.arg("data_n", Arg::U64(data.num_vertices() as u64));
            Some(s)
        } else {
            None
        };
        let wall_start = Instant::now();
        let counter_sink = CounterSink::install();
        let mut trie = match trie_entries {
            Some(entries) => self.acquire_trie_sized(entries)?,
            None => self.acquire_trie()?,
        };
        let out = self.run_core(
            plan,
            data,
            &mut trie,
            sink,
            seed,
            wall_start,
            &counter_sink,
            None,
        );
        drop(trie); // slabs return to the arena here
        let out = out.map_err(|e| match e {
            BudgetedRunError::Engine(e) => e,
            BudgetedRunError::GrowthDenied { .. } => {
                unreachable!("growth denial without a ledger")
            }
        });
        if let Ok(r) = &out {
            self.runs.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &mut rspan {
                s.arg("matches", Arg::U64(r.num_matches));
                s.counters(r.counters.into());
            }
        }
        out
    }

    /// The scheduler's entry point: run `plan` over `data` on a trie
    /// chain that starts at `entries` and may grow **in place** (a pure
    /// slab append — no copy, no retry-from-scratch) up to
    /// `limit_entries`, with every growth step charged to `ledger`.
    /// Returns the result and the capacity (entries) the run settled on,
    /// so the caller can reconcile its reservation.
    ///
    /// When the ledger denies a step the run aborts with
    /// [`BudgetedRunError::GrowthDenied`]; the trie is dropped (its slabs
    /// and reservation return) before the caller re-reserves and reruns
    /// at the target — growers never deadlock each other.
    pub(crate) fn run_with_plan_budgeted(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        entries: usize,
        limit_entries: usize,
        ledger: &dyn GrowthLedger,
    ) -> Result<(MatchResult, usize), BudgetedRunError> {
        let max = self
            .trie_arena()
            .map_err(BudgetedRunError::Engine)?
            .max_chain_entries();
        let entries = entries.clamp(1, max);
        let limit = limit_entries.clamp(entries, max);
        let trace = self.device.trace();
        let mut rspan = if trace.is_enabled() {
            let mut s = trace.span(EventKind::Run, "run");
            s.arg("query_n", Arg::U64(plan.len() as u64));
            s.arg("data_n", Arg::U64(data.num_vertices() as u64));
            Some(s)
        } else {
            None
        };
        let wall_start = Instant::now();
        let counter_sink = CounterSink::install();
        let mut trie = self
            .acquire_trie_budgeted(entries, limit)
            .map_err(BudgetedRunError::Engine)?;
        let mut growth = GrowthState {
            cur_entries: entries,
            limit_entries: limit,
            ledger,
        };
        let out = self.run_core(
            plan,
            data,
            &mut trie,
            None,
            None,
            wall_start,
            &counter_sink,
            Some(&mut growth),
        );
        drop(trie); // slabs return to the arena here
        if let Ok(r) = &out {
            self.runs.fetch_add(1, Ordering::Relaxed);
            if let Some(s) = &mut rspan {
                s.arg("matches", Arg::U64(r.num_matches));
                s.counters(r.counters.into());
            }
        }
        out.map(|r| (r, growth.cur_entries))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        plan: &QueryPlan,
        data: &Graph,
        trie: &mut Trie,
        mut sink: Option<MatchSink<'_>>,
        seed: Option<&cuts_trie::HostTrie>,
        wall_start: Instant,
        counter_sink: &CounterSink,
        mut growth: Option<&mut GrowthState<'_>>,
    ) -> Result<MatchResult, BudgetedRunError> {
        let order = &plan.order;
        let n = order.len();
        let mut level_counts = vec![0u64; n];
        let vwarp = self.config.virtual_warp.width(data.avg_out_degree());
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let policy = self.resolve_policy(plan, data);
        let profile = data.profile();

        let (frontier0, start_pos) = match seed {
            None => {
                let pre = self.config.signature_prefilter.then(|| SigPrefilter {
                    sigs: &profile.signatures,
                    required: plan.required_root_signature(data.is_labeled()),
                });
                init_candidates(
                    self.device,
                    data,
                    order,
                    trie,
                    self.config.max_blocks,
                    pre.as_ref(),
                )?;
                let lvl0 = trie.seal_level();
                level_counts[0] = lvl0.len() as u64;
                (lvl0, 1)
            }
            Some(host) => {
                let depth = host.levels.len();
                assert!(depth >= 1 && depth <= n, "seed depth out of range");
                trie.load(host)?;
                for (l, r) in host.levels.iter().enumerate() {
                    level_counts[l] = r.len() as u64;
                }
                (trie.level(depth - 1), depth)
            }
        };

        let mut used_chunking = false;
        let mut frontier = frontier0;
        let mut pos = start_pos;
        let mut chunked_total: Option<u64> = None;

        let trace = self.device.trace();
        while pos < n && !frontier.is_empty() {
            let mut lspan = if trace.is_enabled() {
                let mut s = trace.span(EventKind::Level, &format!("level {pos}"));
                s.arg("pos", Arg::U64(pos as u64));
                s.arg("frontier", Arg::U64(frontier.len() as u64));
                Some(s)
            } else {
                None
            };
            let pre_len = trie.table().len();
            let placement = self.placement(&mut rng, &frontier);
            let params = ExpandParams {
                data,
                plan: order,
                pos,
                vwarp,
                method: policy.method_at(pos),
                shared_words: self.class.shared_mem_words_per_block,
                placement: placement.as_deref(),
                max_blocks: self.config.max_blocks,
            };
            match expand_range(self.device, trie, frontier.clone(), &params) {
                Ok(()) => {
                    let lvl = trie.seal_level();
                    level_counts[pos] += lvl.len() as u64;
                    if let Some(s) = &mut lspan {
                        s.arg("paths", Arg::U64(lvl.len() as u64));
                    }
                    frontier = lvl;
                    pos += 1;
                }
                Err(DeviceError::BufferOverflow { .. }) => {
                    trie.table().truncate(pre_len);
                    drop(lspan.take());
                    // A budgeted run grows the chain in place first —
                    // appending slabs is cheaper than spilling to the
                    // hybrid walk, and the expansion resumes exactly
                    // where it overflowed (counts are only committed on
                    // success, so the retry double-counts nothing).
                    if let Some(g) = growth.as_deref_mut() {
                        if g.cur_entries < g.limit_entries {
                            let (seg, cur_cap, max_e) = {
                                let t = trie.table();
                                (t.seg_entries(), t.capacity(), t.max_entries())
                            };
                            let cap_of = |e: usize| (e.div_ceil(seg) * seg).min(max_e);
                            // Double past the slab-rounded capacity we
                            // already have, so every step adds a segment.
                            let mut target = (g.cur_entries * 2).min(g.limit_entries);
                            while target < g.limit_entries && cap_of(target) <= cur_cap {
                                target = (target * 2).min(g.limit_entries);
                            }
                            let target_cap = cap_of(target);
                            let delta_words = 2 * target_cap.saturating_sub(cur_cap);
                            if delta_words == 0 {
                                // Even the limit adds no capacity: fall
                                // through to the hybrid walk below.
                                g.cur_entries = target;
                            } else if !g.ledger.try_grant(delta_words) {
                                return Err(BudgetedRunError::GrowthDenied {
                                    target_entries: target,
                                });
                            } else {
                                match trie.grow_to(target_cap) {
                                    Ok(new_cap) => {
                                        g.cur_entries = target;
                                        flight::record(
                                            FlightCode::ArenaGrow,
                                            pos as u64,
                                            new_cap as u64,
                                        );
                                        trace.instant_with(
                                            EventKind::Arena,
                                            "chain_grow",
                                            &[
                                                ("depth", Arg::U64(pos as u64)),
                                                ("capacity", Arg::U64(new_cap as u64)),
                                            ],
                                        );
                                        continue;
                                    }
                                    Err(_) => {
                                        // The ledger said yes but the
                                        // class could not serve — a
                                        // protocol breach somewhere; fall
                                        // back to chunking.
                                        g.ledger.refund(delta_words);
                                        debug_assert!(
                                            false,
                                            "ledger-granted chain growth must not fail"
                                        );
                                    }
                                }
                            }
                        }
                    }
                    // Hybrid BFS-DFS (§4.1.2): walk the remaining depths
                    // chunk by chunk inside the capacity we have.
                    used_chunking = true;
                    trace.instant_with(
                        EventKind::Trie,
                        "spill",
                        &[
                            ("depth", Arg::U64(pos as u64)),
                            ("frontier", Arg::U64(frontier.len() as u64)),
                        ],
                    );
                    let total = self.process_chunks(
                        data,
                        plan,
                        &policy,
                        trie,
                        pos,
                        frontier.clone(),
                        self.config.chunk_size,
                        vwarp,
                        &mut level_counts,
                        &mut sink,
                    )?;
                    chunked_total = Some(total);
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }

        let num_matches = match chunked_total {
            Some(t) => t,
            None if pos == n => {
                if let Some(sink) = sink.as_mut() {
                    self.emit_level(trie, order, frontier.clone(), sink);
                }
                level_counts[n - 1]
            }
            None => 0, // frontier drained before reaching full depth
        };

        let counters = counter_sink.snapshot();
        let sim_millis = CostModel::default().millis(&counters, self.device.config());
        Ok(MatchResult {
            num_matches,
            level_counts,
            counters,
            sim_millis,
            wall_millis: wall_start.elapsed().as_secs_f64() * 1e3,
            used_chunking,
            order: order.order.clone(),
        })
    }

    /// Computes the plan-time kernel policy for running `plan` over
    /// `data`, emitting one `policy` obs event per level (plus the
    /// prefilter verdict) when tracing is on.
    fn resolve_policy(&self, plan: &QueryPlan, data: &Graph) -> KernelPolicy {
        let policy = plan.kernel_policy(&data.profile());
        let trace = self.device.trace();
        if trace.is_enabled() {
            for d in &policy.levels {
                trace.instant_with(
                    EventKind::Policy,
                    d.method.name(),
                    &[
                        ("pos", Arg::U64(d.pos as u64)),
                        ("constraints", Arg::U64(d.constraints as u64)),
                        ("est_first_len", Arg::U64(d.est_first_len as u64)),
                    ],
                );
            }
            trace.instant_with(
                EventKind::Policy,
                if self.config.signature_prefilter {
                    "prefilter_on"
                } else {
                    "prefilter_off"
                },
                &[],
            );
        }
        policy
    }

    /// Shuffled frontier placement when configured (§4.1.2: randomising
    /// partial-path placement fixes id-order load imbalance).
    fn placement(&self, rng: &mut SmallRng, frontier: &Range<usize>) -> Option<Vec<u32>> {
        if !self.config.randomize_placement || frontier.len() < 2 {
            return None;
        }
        let mut p: Vec<u32> = frontier.clone().map(|i| i as u32).collect();
        p.shuffle(rng);
        Some(p)
    }

    /// Depth-first walk over frontier chunks: expand a chunk, recurse one
    /// level deeper, reclaim the chunk's scratch level, move on. Chunk
    /// sizes halve locally when even one chunk cannot fit.
    #[allow(clippy::too_many_arguments)]
    fn process_chunks(
        &self,
        data: &Graph,
        plan: &QueryPlan,
        policy: &KernelPolicy,
        trie: &mut Trie,
        pos: usize,
        frontier: Range<usize>,
        chunk_size: usize,
        vwarp: usize,
        level_counts: &mut [u64],
        sink: &mut Option<MatchSink<'_>>,
    ) -> Result<u64, EngineError> {
        let n = plan.len();
        if pos == n {
            if let Some(sink) = sink.as_mut() {
                self.emit_level(trie, &plan.order, frontier.clone(), sink);
            }
            return Ok(frontier.len() as u64);
        }
        let mut total = 0u64;
        for chunk in cuts_trie::Chunks::new(frontier, chunk_size) {
            let pre_len = trie.table().len();
            let params = ExpandParams {
                data,
                plan: &plan.order,
                pos,
                vwarp,
                method: policy.method_at(pos),
                shared_words: self.class.shared_mem_words_per_block,
                placement: None,
                max_blocks: self.config.max_blocks,
            };
            match expand_range(self.device, trie, chunk.clone(), &params) {
                Ok(()) => {
                    let lvl = trie.seal_level();
                    level_counts[pos] += lvl.len() as u64;
                    total += self.process_chunks(
                        data,
                        plan,
                        policy,
                        trie,
                        pos + 1,
                        lvl,
                        chunk_size,
                        vwarp,
                        level_counts,
                        sink,
                    )?;
                    trie.pop_levels(1);
                }
                Err(DeviceError::BufferOverflow { .. }) => {
                    trie.table().truncate(pre_len);
                    if chunk.len() == 1 {
                        return Err(EngineError::CapacityExhausted { depth: pos });
                    }
                    self.device.trace().instant_with(
                        EventKind::Trie,
                        "halve",
                        &[
                            ("depth", Arg::U64(pos as u64)),
                            ("chunk", Arg::U64(chunk.len() as u64)),
                        ],
                    );
                    // Halve locally and retry this chunk.
                    total += self.process_chunks(
                        data,
                        plan,
                        policy,
                        trie,
                        pos,
                        chunk.clone(),
                        (chunk.len() / 2).max(1),
                        vwarp,
                        level_counts,
                        sink,
                    )?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(total)
    }

    /// Streams the full embeddings ending at `level`'s entries, remapped
    /// from order space to query-vertex space.
    fn emit_level(
        &self,
        trie: &Trie,
        order: &crate::order::MatchOrder,
        level: Range<usize>,
        sink: MatchSink<'_>,
    ) {
        let n = order.len();
        let mut m = vec![0u32; n];
        for leaf in level {
            let path = trie.extract_path(leaf);
            debug_assert_eq!(path.len(), n);
            for (l, &v) in path.iter().enumerate() {
                m[order.order[l] as usize] = v;
            }
            sink(&m);
        }
    }
}

impl std::fmt::Debug for ExecSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSession")
            .field("device", &self.device.config().name)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{clique, erdos_renyi, mesh2d};

    #[test]
    fn warm_runs_reuse_buffers_and_plans() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let first = session.run(&clique(4), &clique(3)).unwrap();
        let allocs_after_first = device.alloc_calls();
        for _ in 0..3 {
            let r = session.run(&clique(4), &clique(3)).unwrap();
            assert_eq!(r.num_matches, first.num_matches);
            assert_eq!(r.level_counts, first.level_counts);
        }
        assert_eq!(
            device.alloc_calls(),
            allocs_after_first,
            "warm runs must not call the device allocator"
        );
        let s = session.stats();
        assert_eq!(s.runs, 4);
        assert_eq!(s.plans.hits, 3);
        assert_eq!(s.plans.misses, 1);
        let arena = s.arena.expect("arena carved at first run");
        assert_eq!(arena.device_allocs, 1, "one carve, ever");
        assert_eq!(arena.classes.len(), 1);
        assert_eq!(arena.classes[0].in_use, 0, "all slabs back after runs");
        assert_eq!(arena.classes[0].acquires, arena.classes[0].releases);
        assert!(arena.slab_acquires() > 0, "runs chained over the arena");
    }

    #[test]
    fn batch_runs_plan_once() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let datas = vec![clique(4), mesh2d(3, 3), erdos_renyi(30, 90, 7)];
        let batch = session.run_batch(&datas, &clique(3));
        assert_eq!(batch.len(), 3);
        for (data, r) in datas.iter().zip(&batch) {
            let r = r.as_ref().expect("per-job result is Ok");
            let fresh = ExecSession::new(&device, EngineConfig::default())
                .run(data, &clique(3))
                .unwrap();
            assert_eq!(r.num_matches, fresh.num_matches);
        }
        let s = session.stats();
        assert_eq!(s.plans.misses, 1, "one plan serves the whole batch");
        assert_eq!(s.arena.expect("arena carved").device_allocs, 1);
    }

    #[test]
    fn batch_with_unplannable_query_fails_per_job() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let datas = vec![clique(4), mesh2d(3, 3)];
        let disconnected = Graph::undirected(4, &[(0, 1), (2, 3)]);
        let batch = session.run_batch(&datas, &disconnected);
        assert_eq!(batch.len(), 2);
        for r in &batch {
            assert!(matches!(r, Err(EngineError::DisconnectedQuery)));
        }
    }

    #[test]
    fn sized_runs_match_default_runs() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = erdos_renyi(30, 90, 7);
        let query = clique(3);
        let baseline = session.run(&data, &query).unwrap();
        let plan = session.plan_for(&query).unwrap();
        // Any capacity large enough to avoid spilling gives identical
        // counts; a deliberately tiny one still matches via chunking.
        for entries in [256usize, 4096] {
            let r = session.run_with_plan_sized(&plan, &data, entries).unwrap();
            assert_eq!(r.num_matches, baseline.num_matches);
            assert_eq!(r.level_counts, baseline.level_counts);
        }
    }

    #[test]
    fn counters_are_per_run_despite_shared_device() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let a = session.run(&clique(4), &clique(3)).unwrap();
        let b = session.run(&clique(4), &clique(3)).unwrap();
        // Scoped accounting: each run sees only its own traffic, so two
        // identical runs report identical counters.
        assert_eq!(a.counters, b.counters);
        assert!(a.counters.kernel_launches > 0);
    }

    #[test]
    fn disconnected_returns_full_result() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = clique(4);
        let q = Graph::undirected(4, &[(0, 1), (2, 3)]);
        let r = session.run_disconnected(&data, &q).unwrap();
        assert_eq!(r.num_matches, 144);
        assert_eq!(r.level_counts.len(), 4, "one entry per query vertex");
        assert_eq!(r.level_counts, vec![4, 12, 4, 12]);
        // Order covers every original query vertex exactly once.
        let mut o = r.order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
        // Connected query passes straight through.
        let c = session.run_disconnected(&data, &clique(3)).unwrap();
        assert_eq!(c.num_matches, 24);
        assert_eq!(c.level_counts, vec![4, 12, 24]);
    }

    #[test]
    fn budgeted_run_grows_in_place_without_device_allocs() {
        // A small device keeps the slab size small enough that a chain
        // started at one entry genuinely overflows mid-run.
        let device = Device::new(DeviceConfig::test_small().with_global_mem_words(1 << 12));
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = erdos_renyi(30, 90, 7);
        let query = clique(3);
        let baseline = session.run(&data, &query).unwrap();
        let plan = session.plan_for(&query).unwrap();
        let allocs = device.alloc_calls();
        // Start absurdly small; the chain must grow (never chunk) up to
        // the limit and still produce identical counts.
        let (r, achieved) = session
            .run_with_plan_budgeted(&plan, &data, 1, 1 << 20, &GrantAll)
            .unwrap();
        assert_eq!(r.num_matches, baseline.num_matches);
        assert_eq!(r.level_counts, baseline.level_counts);
        assert!(achieved > 1, "an undersized chain must have grown");
        assert!(!r.used_chunking, "growth should pre-empt the hybrid walk");
        assert_eq!(
            device.alloc_calls(),
            allocs,
            "chain growth is allocator-free"
        );
    }

    #[test]
    fn budgeted_run_reports_denied_growth_target() {
        struct DenyAll;
        impl GrowthLedger for DenyAll {
            fn try_grant(&self, _words: usize) -> bool {
                false
            }
            fn refund(&self, _words: usize) {}
        }
        let device = Device::new(DeviceConfig::test_small().with_global_mem_words(1 << 12));
        let session = ExecSession::new(&device, EngineConfig::default());
        let data = erdos_renyi(30, 90, 7);
        let plan = session.plan_for(&clique(3)).unwrap();
        match session.run_with_plan_budgeted(&plan, &data, 1, 1 << 20, &DenyAll) {
            Err(BudgetedRunError::GrowthDenied { target_entries }) => {
                assert!(target_entries > 1, "target doubles past the start size");
            }
            other => panic!("expected GrowthDenied, got {other:?}"),
        }
        // The denied run released its chain: a normal run still works.
        assert!(session.run(&data, &clique(3)).is_ok());
    }

    #[test]
    fn sized_run_capacity_is_a_function_of_entries_alone() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        session.prepare_trie_arena().unwrap();
        let w256 = session.chain_words(256);
        // Whole-slab accounting: same slab count → same words; the full
        // arena is the saturation point.
        assert_eq!(w256, session.chain_words(1));
        assert_eq!(session.chain_words(usize::MAX), session.trie_budget_words());
        assert!(session.trie_budget_words() >= w256);
    }

    #[test]
    fn sessions_on_one_device_do_not_clobber_each_other() {
        let device = Device::new(DeviceConfig::test_small());
        let a = ExecSession::new(&device, EngineConfig::default());
        let b = ExecSession::new(&device, EngineConfig::default());
        let ra = a.run(&mesh2d(3, 3), &clique(3)).unwrap();
        let rb = b.run(&mesh2d(3, 3), &clique(3)).unwrap();
        assert_eq!(ra.num_matches, rb.num_matches);
        assert_eq!(ra.counters, rb.counters, "scoped counters, no resets");
    }
}
