//! The multi-tenant distributed serving tier: one entry point that
//! routes a stream of [`Job`]s across N simulated multi-GPU ranks.
//!
//! Everything below `serve` handles one scale axis at a time: the
//! [`crate::sched`] scheduler multiplexes many queries over the lanes of
//! one node, and `cuts-dist` scales one query across ranks with
//! Algorithm-3 chunk donation. [`ServeTier`] fuses them. Each rank hosts
//! its own [`ExecSession`]s, trie arena, and lane pool; a shared router
//! places every submitted job on the rank whose slab-unit memory ledger
//! has the most headroom; and the paper's donation protocol is
//! generalised from intra-query chunks to **whole-job migration**: an
//! idle rank claims the back half of the most-loaded peer's queue, with
//! every hand-off recorded as a [`WorkLedger`] transfer.
//!
//! Fault tolerance reuses the distributed runtime's machinery, now
//! hosted in this crate: jobs are registered in a [`WorkLedger`] before
//! any rank may run them, commits are idempotent, and a rank crash
//! (scheduled by a [`FaultPlan`], or a real panic caught at the lane
//! boundary) flips the [`AliveBoard`] so survivors re-admit the dead
//! rank's in-flight jobs. Because per-job trie sizing depends only on
//! the job and the device model (see [`crate::sched`]), a re-executed
//! job produces a byte-identical [`crate::MatchResult`] — a crash can
//! cost wall-clock time, never results. Priority, deadline, and SLO
//! accounting survive redistribution: the original submission timestamp
//! travels with the job, so a migrated or re-admitted job keeps its
//! dispatch score and its queue-latency histogram entry measures the
//! caller-visible wait.
//!
//! This module is the **only** public serving entry point:
//! [`ServeConfig::builder`] configures ranks × devices × lanes, the
//! fault plan, and trace/metrics sinks in one place, and
//! `cuts serve --ranks N` drives it from the CLI. The historical
//! `run_distributed{,_traced,_observed}` triplet in `cuts-dist` remains
//! only as deprecated shims.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, Counter, EventKind, Json, Registry, ToJson, Trace};

use crate::config::EngineConfig;
use crate::error::{ConfigError, CutsError, DistError, SchedError};
use crate::fault::{CrashKind, FaultInjector, FaultPlan};
use crate::ledger::{AliveBoard, WorkLedger};
use crate::plan::QueryPlan;
use crate::sched::{
    dispatch_score, job_entries_for, Job, JobId, JobOutcome, SloReport, StatsSink, Telemetry,
};
use crate::session::{BudgetedRunError, ExecSession, GrantAll, GrowthLedger};

/// A peer must hold at least this many queued jobs before an idle rank
/// migrates work away from it. Migration is only attempted by a lane
/// with nothing left to claim locally, so taking even a peer's single
/// queued job is pure work conservation — the peer is still executing
/// something, the requester would otherwise idle.
const MIGRATE_MIN_QUEUE: usize = 1;

// ---------------------------------------------------------------------
// Configuration.

/// Validated configuration of a [`ServeTier`] — the single knob surface
/// for the whole serving stack (devices × lanes × ranks, fault plan,
/// trace/metrics sinks). Built by [`ServeConfig::builder`].
#[derive(Clone)]
pub struct ServeConfig {
    ranks: usize,
    devices_per_rank: usize,
    lanes: usize,
    device: DeviceConfig,
    engine: EngineConfig,
    sigma: f64,
    pacing: f64,
    queue_capacity: usize,
    aging: Duration,
    plan_cache: usize,
    warm_plans: Vec<Arc<QueryPlan>>,
    fault_plan: FaultPlan,
    trace: Option<Trace>,
    telemetry: bool,
    stats_every: u64,
    stats_sink: Option<StatsSink>,
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("ranks", &self.ranks)
            .field("devices_per_rank", &self.devices_per_rank)
            .field("lanes", &self.lanes)
            .field("queue_capacity", &self.queue_capacity)
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

impl ServeConfig {
    /// A builder with serving defaults: one rank, one `v100_like` device,
    /// two lanes, queue capacity 64, 5 ms aging, σ = 0.25, no pacing, no
    /// faults, telemetry on.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            ranks: 1,
            devices_per_rank: 1,
            lanes: 2,
            device: DeviceConfig::v100_like(),
            engine: EngineConfig::default(),
            sigma: 0.25,
            pacing: 0.0,
            queue_capacity: 64,
            aging: Duration::from_millis(5),
            plan_cache: crate::session::DEFAULT_PLAN_CACHE_CAPACITY,
            warm_plans: Vec::new(),
            fault_plan: FaultPlan::default(),
            trace: None,
            telemetry: true,
            stats_every: 0,
            stats_sink: None,
        }
    }

    /// Number of simulated ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The validated engine configuration (watch-session plumbing).
    pub(crate) fn engine(&self) -> &EngineConfig {
        &self.engine
    }

    /// The configured fault plan (watch-session plumbing).
    pub(crate) fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Whether telemetry is on (watch-session plumbing).
    pub(crate) fn telemetry_enabled(&self) -> bool {
        self.telemetry
    }

    /// Rolling-stats cadence (watch-session plumbing).
    pub(crate) fn stats_every(&self) -> u64 {
        self.stats_every
    }

    /// A clone of the rolling-stats sink (watch-session plumbing).
    pub(crate) fn stats_sink(&self) -> Option<StatsSink> {
        self.stats_sink.clone()
    }
}

/// Builder for [`ServeConfig`]; validated at [`ServeConfigBuilder::build`].
#[derive(Clone)]
pub struct ServeConfigBuilder {
    ranks: usize,
    devices_per_rank: usize,
    lanes: usize,
    device: DeviceConfig,
    engine: EngineConfig,
    sigma: f64,
    pacing: f64,
    queue_capacity: usize,
    aging: Duration,
    plan_cache: usize,
    warm_plans: Vec<Arc<QueryPlan>>,
    fault_plan: FaultPlan,
    trace: Option<Trace>,
    telemetry: bool,
    stats_every: u64,
    stats_sink: Option<StatsSink>,
}

impl ServeConfigBuilder {
    /// Number of simulated multi-GPU ranks (≥ 1).
    pub fn ranks(mut self, n: usize) -> Self {
        self.ranks = n;
        self
    }

    /// Simulated devices hosted by each rank (≥ 1).
    pub fn devices_per_rank(mut self, n: usize) -> Self {
        self.devices_per_rank = n;
        self
    }

    /// Worker lanes per device (≥ 1).
    pub fn lanes(mut self, n: usize) -> Self {
        self.lanes = n;
        self
    }

    /// The simulated device model every device instance uses.
    pub fn device_config(mut self, c: DeviceConfig) -> Self {
        self.device = c;
        self
    }

    /// The engine configuration shared by every rank's sessions.
    pub fn engine_config(mut self, c: EngineConfig) -> Self {
        self.engine = c;
        self
    }

    /// §5 candidate-survival prior σ for space estimates (in `(0, 1]`).
    pub fn sigma(mut self, s: f64) -> Self {
        self.sigma = s;
        self
    }

    /// Host pacing factor: after each job, the executing lane sleeps
    /// `sim_millis × pacing` so the host timeline tracks the simulated
    /// device timeline.
    pub fn pacing(mut self, p: f64) -> Self {
        self.pacing = p;
        self
    }

    /// Bounded submission capacity (≥ 1) across the whole tier; a full
    /// queue makes [`ServeHandle::submit`] return [`SchedError::Busy`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Aging constant: one unit of dispatch score per `aging` waited.
    pub fn aging(mut self, d: Duration) -> Self {
        self.aging = d;
        self
    }

    /// Plan-cache capacity per device session.
    pub fn plan_cache(mut self, n: usize) -> Self {
        self.plan_cache = n;
        self
    }

    /// Pre-built plans (typically from a decoded [`crate::Snapshot`])
    /// seeded into every session's cache before the first job.
    pub fn warm_plans(mut self, plans: Vec<Arc<QueryPlan>>) -> Self {
        self.warm_plans = plans;
        self
    }

    /// Deterministic fault schedule: `crash:R@C` / `panic:R@C` clauses
    /// kill rank R at its C-th job-commit boundary mid-stream (see
    /// [`FaultPlan`]). Message drop/delay clauses are accepted but inert
    /// here — the tier's hand-offs are in-process ledger transfers, not
    /// wire messages.
    pub fn fault_plan(mut self, p: FaultPlan) -> Self {
        self.fault_plan = p;
        self
    }

    /// Attaches a trace: devices emit kernel/run spans and the tier
    /// emits job lifecycle, migration, and rank-failure events into it.
    pub fn trace(mut self, t: Trace) -> Self {
        self.trace = Some(t);
        self
    }

    /// Always-on serving telemetry switch (default **on**); see
    /// [`crate::sched::SchedulerBuilder::telemetry`].
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Emits a rolling stats-snapshot JSON line to the stats sink every
    /// `n` finished jobs (0, the default, disables emission).
    pub fn stats_every(mut self, n: u64) -> Self {
        self.stats_every = n;
        self
    }

    /// The callback receiving rolling-snapshot lines (one JSON object
    /// per call, no trailing newline).
    pub fn stats_sink(mut self, sink: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.stats_sink = Some(StatsSink(Arc::new(sink)));
        self
    }

    /// Validates and builds the configuration.
    pub fn build(self) -> Result<ServeConfig, CutsError> {
        let invalid = |field: &'static str, reason: &'static str| {
            CutsError::from(ConfigError::Invalid { field, reason })
        };
        if self.ranks == 0 {
            return Err(invalid("ranks", "must be at least 1"));
        }
        if self.devices_per_rank == 0 {
            return Err(invalid("devices_per_rank", "must be at least 1"));
        }
        if self.lanes == 0 {
            return Err(invalid("lanes", "must be at least 1"));
        }
        if self.queue_capacity == 0 {
            return Err(invalid("queue_capacity", "must be at least 1"));
        }
        if !(self.sigma > 0.0 && self.sigma <= 1.0) {
            return Err(invalid("sigma", "must be in (0, 1]"));
        }
        if self.aging.is_zero() {
            return Err(invalid("aging", "must be positive"));
        }
        if self.pacing.is_nan() || self.pacing < 0.0 {
            return Err(invalid("pacing", "must be non-negative"));
        }
        self.fault_plan.check_ranks(self.ranks)?;
        if self.fault_plan.resolve(self.ranks).distinct_victims() >= self.ranks {
            return Err(invalid(
                "fault_plan",
                "crashes every rank; no survivor could finish the stream",
            ));
        }
        // The engine config must survive its own validation, including
        // the trie budget against this device model.
        let engine = {
            let mut b = EngineConfig::builder()
                .chunk_size(self.engine.chunk_size)
                .trie_fraction(self.engine.trie_fraction)
                .intersect(self.engine.intersect)
                .randomize_placement(self.engine.randomize_placement)
                .order_policy(self.engine.order_policy)
                .virtual_warp(self.engine.virtual_warp)
                .max_blocks(self.engine.max_blocks)
                .seed(self.engine.seed);
            b = b.for_device_words(self.device.global_mem_words);
            b.build()?
        };
        Ok(ServeConfig {
            ranks: self.ranks,
            devices_per_rank: self.devices_per_rank,
            lanes: self.lanes,
            device: self.device,
            engine,
            sigma: self.sigma,
            pacing: self.pacing,
            queue_capacity: self.queue_capacity,
            aging: self.aging,
            plan_cache: self.plan_cache.max(self.warm_plans.len()),
            warm_plans: self.warm_plans,
            fault_plan: self.fault_plan,
            trace: self.trace,
            telemetry: self.telemetry,
            stats_every: self.stats_every,
            stats_sink: self.stats_sink,
        })
    }
}

// ---------------------------------------------------------------------
// Reports.

/// Aggregate counters for one [`ServeTier::run`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs accepted into the tier.
    pub submitted: u64,
    /// Jobs that finished with `Ok`.
    pub completed: u64,
    /// Jobs that finished with `Err`.
    pub failed: u64,
    /// Whole-job migrations between ranks (Algorithm-3 donation,
    /// generalised).
    pub migrated: u64,
    /// Jobs re-admitted from a dead rank's ledger entries.
    pub readmitted: u64,
    /// Ranks that died mid-stream.
    pub lost_ranks: Vec<usize>,
    /// Jobs committed by each rank.
    pub per_rank_jobs: Vec<u64>,
    /// Sum of committed match counts across the stream.
    pub total_matches: u64,
    /// Peak reserved trie words per device (global device index:
    /// `rank * devices_per_rank + device`).
    pub peak_reserved_words: Vec<usize>,
    /// Per-device trie-memory budget the admission check enforced.
    pub budget_words: Vec<usize>,
}

impl ToJson for ServeStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("submitted", Json::U64(self.submitted)),
            ("completed", Json::U64(self.completed)),
            ("failed", Json::U64(self.failed)),
            ("migrated", Json::U64(self.migrated)),
            ("readmitted", Json::U64(self.readmitted)),
            (
                "lost_ranks",
                Json::arr(self.lost_ranks.iter().map(|&r| r as u64)),
            ),
            (
                "per_rank_jobs",
                Json::arr(self.per_rank_jobs.iter().copied()),
            ),
            ("total_matches", Json::U64(self.total_matches)),
            (
                "peak_reserved_words",
                Json::arr(self.peak_reserved_words.iter().map(|&w| w as u64)),
            ),
            (
                "budget_words",
                Json::arr(self.budget_words.iter().map(|&w| w as u64)),
            ),
        ])
    }
}

/// The result of draining one job stream through the tier.
#[derive(Debug)]
pub struct ServeReport {
    /// One outcome per submitted job, in submission order. The outcome's
    /// `device` is the global device index
    /// (`rank * devices_per_rank + device`), so the executing rank is
    /// `device / devices_per_rank`.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock duration of the whole run, milliseconds.
    pub wall_millis: f64,
    /// Aggregate counters.
    pub stats: ServeStats,
    /// Per-class SLO accounting (queue/exec quantiles, deadline rates);
    /// queue waits are measured from the *original* submission, so they
    /// survive migration and re-admission.
    pub slo: SloReport,
    /// The run's always-on metrics registry; feed its snapshot to the
    /// Prometheus exporter. Disabled (empty) with `.telemetry(false)`.
    pub telemetry: Registry,
    /// Path of the flight-recorder post-mortem written when the first
    /// job failed or rank died, if any did.
    pub postmortem: Option<String>,
}

impl ServeReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_millis <= 0.0 {
            return 0.0;
        }
        self.stats.completed as f64 / (self.wall_millis / 1e3)
    }
}

impl ToJson for ServeReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("wall_millis", Json::F64(self.wall_millis)),
            ("jobs_per_sec", Json::F64(self.jobs_per_sec())),
            ("stats", self.stats.to_json()),
            ("slo", self.slo.to_json()),
            (
                "postmortem",
                self.postmortem.clone().map_or(Json::Null, Json::Str),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// Internal run-time state.

/// The recoverable copy of a job the ledger holds: the job itself plus
/// its original submission instant, so priority/deadline scores and SLO
/// queue-wait accounting survive migration and re-admission.
#[derive(Clone)]
struct Seed {
    job: Job,
    submitted_at: Instant,
}

/// One queued unit in a rank's inbox.
struct Queued {
    id: u64,
    seed: Seed,
    /// Slab-unit reservation estimate used by the placement ledger.
    words: usize,
    /// Whether this entry still holds a slot in the global submission
    /// gate (fresh submissions do; re-admitted work re-enters for free —
    /// its slot was released when it was first claimed or its rank
    /// died).
    counted: bool,
}

struct ServeDev<'e> {
    session: &'e ExecSession<'e>,
    budget_words: usize,
    reserved: AtomicUsize,
    peak_reserved: AtomicUsize,
}

impl ServeDev<'_> {
    /// Atomically reserves `words` iff the budget still has room (same
    /// CAS ledger as the scheduler's `DevState`).
    fn try_reserve(&self, words: usize) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            if cur + words > self.budget_words {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                cur,
                cur + words,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_reserved.fetch_max(cur + words, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Charges in-place trie growth to the owning device's ledger.
struct ServeLaneLedger<'a, 'e> {
    dev: &'a ServeDev<'e>,
    granted: AtomicUsize,
}

impl GrowthLedger for ServeLaneLedger<'_, '_> {
    fn try_grant(&self, words: usize) -> bool {
        if self.dev.try_reserve(words) {
            self.granted.fetch_add(words, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn refund(&self, words: usize) {
        self.dev.reserved.fetch_sub(words, Ordering::AcqRel);
        self.granted.fetch_sub(words, Ordering::Relaxed);
    }
}

struct RankState<'e> {
    devs: Vec<ServeDev<'e>>,
    inbox: Mutex<Vec<Queued>>,
    work: Condvar,
    /// Words queued in the inbox — the placement ledger's estimate of
    /// load not yet reflected in the devices' `reserved` counters.
    queued_words: AtomicUsize,
    jobs_done: AtomicUsize,
    dead: AtomicBool,
}

struct Gate {
    queued: usize,
    closed: bool,
}

struct ServeShared<'e, 't> {
    cfg: &'t ServeConfig,
    trace: &'t Trace,
    ranks: Vec<RankState<'e>>,
    ledger: WorkLedger<Seed>,
    alive: AliveBoard,
    injector: Option<FaultInjector>,
    gate: Mutex<Gate>,
    space: Condvar,
    outcomes: Mutex<Vec<JobOutcome>>,
    submitted: AtomicU64,
    first_failure: Mutex<Option<DistError>>,
    /// Reservation estimates keyed by (data graph identity, query key):
    /// admission is serial, so the graph walk behind the estimate runs
    /// once per distinct pair, not once per job.
    sizing_memo: Mutex<HashMap<(usize, u64), usize>>,
    telem: Telemetry,
    migrations: Counter,
    readmissions: Counter,
    ranks_lost: Counter,
}

impl<'e> ServeShared<'e, '_> {
    /// A live session usable for placement sizing (identical engine and
    /// device model on every rank, so any one gives the same answer).
    fn sizing_session(&self) -> Option<&'e ExecSession<'e>> {
        self.ranks
            .iter()
            .enumerate()
            .find(|(r, _)| self.alive.is_alive(*r))
            .map(|(_, rank)| rank.devs[0].session)
    }

    /// Slab-word reservation estimate for `job` (0 when unplannable —
    /// the failure surfaces as a per-job outcome at execution). The §5
    /// estimate walks the data graph, and submissions are admitted one
    /// at a time, so repeated (data, query) pairs — the common case in
    /// a job stream — are memoised to keep the submit path off the
    /// scaling-critical path.
    fn sizing_words(&self, job: &Job) -> usize {
        let Some(session) = self.sizing_session() else {
            return 0;
        };
        match session.plan_for(&job.query) {
            Ok(plan) => {
                let key = (Arc::as_ptr(&job.data) as usize, plan.key.query);
                if let Some(&words) = self.sizing_memo.lock().unwrap().get(&key) {
                    return words;
                }
                let entries = job_entries_for(&plan, &job.data, self.cfg.sigma);
                let words = session.chain_words(entries);
                self.sizing_memo.lock().unwrap().insert(key, words);
                words
            }
            Err(_) => 0,
        }
    }

    /// The alive rank whose memory ledger (device reservations plus
    /// queued-but-unclaimed words) has the most headroom.
    fn place(&self) -> usize {
        let mut choice = (0usize, usize::MAX);
        for (r, rank) in self.ranks.iter().enumerate() {
            if !self.alive.is_alive(r) {
                continue;
            }
            let load: usize = rank.queued_words.load(Ordering::Relaxed)
                + rank
                    .devs
                    .iter()
                    .map(|d| d.reserved.load(Ordering::Relaxed))
                    .sum::<usize>();
            if load < choice.1 {
                choice = (r, load);
            }
        }
        choice.0
    }

    fn enqueue_to(&self, r: usize, q: Queued) {
        let rank = &self.ranks[r];
        let mut inbox = rank.inbox.lock().unwrap();
        rank.queued_words.fetch_add(q.words, Ordering::Relaxed);
        inbox.push(q);
        rank.work.notify_all();
    }

    /// Registers and places one fresh submission (gate slot already
    /// taken by the caller).
    fn admit_submission(&self, job: Job) -> JobId {
        let id = self.ledger.new_id();
        let seed = Seed {
            job,
            submitted_at: Instant::now(),
        };
        let r = self.place();
        self.ledger.register(id, r, &seed);
        let words = self.sizing_words(&seed.job);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        flight::record(FlightCode::JobSubmit, id, r as u64);
        self.trace.instant_with(
            EventKind::Job,
            "submit",
            &[("job", Arg::U64(id)), ("rank", Arg::U64(r as u64))],
        );
        self.enqueue_to(
            r,
            Queued {
                id,
                seed,
                words,
                counted: true,
            },
        );
        JobId(id)
    }

    /// Releases one gate slot (a counted inbox entry was claimed or
    /// discarded).
    fn release_slot(&self) {
        let mut g = self.gate.lock().unwrap();
        g.queued = g.queued.saturating_sub(1);
        drop(g);
        self.space.notify_all();
    }

    fn closed_and_complete(&self) -> bool {
        self.gate.lock().unwrap().closed && self.ledger.all_completed()
    }

    /// Marks `r` dead exactly once: flips the boards, drains its inbox
    /// (releasing gate slots so submitters do not wedge on work that
    /// will be re-registered by reclaim), records telemetry, and wakes
    /// every lane so survivors start re-admission sweeps.
    fn mark_rank_dead(&self, r: usize, cause: DistError) {
        let rank = &self.ranks[r];
        if rank.dead.swap(true, Ordering::AcqRel) {
            return;
        }
        self.alive.set_dead(r);
        self.ledger.note_loss();
        {
            let mut f = self.first_failure.lock().unwrap();
            if f.is_none() {
                *f = Some(cause);
            }
        }
        let drained: Vec<Queued> = {
            let mut inbox = rank.inbox.lock().unwrap();
            rank.queued_words.store(0, Ordering::Relaxed);
            inbox.drain(..).collect()
        };
        for q in &drained {
            if q.counted {
                self.release_slot();
            }
        }
        self.ranks_lost.inc();
        flight::record_rank(
            r as u32,
            FlightCode::RankDead,
            rank.jobs_done.load(Ordering::Relaxed) as u64,
            0,
        );
        self.trace.instant_with(
            EventKind::Fault,
            "rank_dead",
            &[
                ("rank", Arg::U64(r as u64)),
                (
                    "jobs_done",
                    Arg::U64(rank.jobs_done.load(Ordering::Relaxed) as u64),
                ),
            ],
        );
        self.telem.dump_once("rank_death");
        for peer in &self.ranks {
            let _inbox = peer.inbox.lock().unwrap();
            peer.work.notify_all();
        }
        self.space.notify_all();
    }

    /// Whole-job migration (Algorithm-3 donation generalised): an idle
    /// rank claims the back half (rounded up, so even a single queued
    /// job moves — keeping the tier work-conserving through the stream
    /// tail) of the most-loaded alive peer's inbox, re-homing each job
    /// in the ledger. Returns whether anything moved.
    fn try_migrate(&self, me: usize) -> bool {
        let victim = self
            .ranks
            .iter()
            .enumerate()
            .filter(|&(r, rank)| {
                r != me && self.alive.is_alive(r) && !rank.dead.load(Ordering::Acquire)
            })
            .map(|(r, rank)| (r, rank.inbox.lock().unwrap().len()))
            .filter(|&(_, len)| len >= MIGRATE_MIN_QUEUE)
            .max_by_key(|&(_, len)| len);
        let Some((v, _)) = victim else {
            return false;
        };
        let moved: Vec<Queued> = {
            let mut inbox = self.ranks[v].inbox.lock().unwrap();
            if inbox.len() < MIGRATE_MIN_QUEUE {
                return false; // raced with the victim draining
            }
            let keep = inbox.len() / 2;
            let moved: Vec<Queued> = inbox.drain(keep..).collect();
            let words: usize = moved.iter().map(|q| q.words).sum();
            self.ranks[v].queued_words.fetch_sub(
                words.min(self.ranks[v].queued_words.load(Ordering::Relaxed)),
                Ordering::Relaxed,
            );
            moved
        };
        let mut any = false;
        for q in moved {
            // A commit may have raced the hand-off; the ledger transfer
            // is the authoritative dedup, exactly as in chunk donation.
            if !self.ledger.transfer(q.id, me) {
                if q.counted {
                    self.release_slot();
                }
                continue;
            }
            any = true;
            self.migrations.inc();
            flight::record(FlightCode::JobMigrate, q.id, me as u64);
            self.trace.instant_with(
                EventKind::Donation,
                "migrate",
                &[
                    ("job", Arg::U64(q.id)),
                    ("from", Arg::U64(v as u64)),
                    ("to", Arg::U64(me as u64)),
                ],
            );
            self.enqueue_to(me, q);
        }
        any
    }

    /// Re-admits pending jobs owned by dead ranks into `me`'s inbox.
    fn try_readmit(&self, me: usize) -> bool {
        if self.alive.live_count() == self.ranks.len() {
            return false;
        }
        let claimed = self
            .ledger
            .reclaim_foreign(me, |owner| !self.alive.is_alive(owner));
        if claimed.is_empty() {
            return false;
        }
        for (id, seed) in claimed {
            self.readmissions.inc();
            flight::record(FlightCode::JobReadmit, id, me as u64);
            self.trace.instant_with(
                EventKind::Job,
                "readmit",
                &[("job", Arg::U64(id)), ("rank", Arg::U64(me as u64))],
            );
            let words = self.sizing_words(&seed.job);
            self.enqueue_to(
                me,
                Queued {
                    id,
                    seed,
                    words,
                    counted: false,
                },
            );
        }
        true
    }

    /// Records one finished job if its commit was the first (duplicate
    /// executions after a crash are dropped here, exactly like duplicate
    /// chunk commits).
    fn finish(&self, r: usize, q: &Queued, outcome: JobOutcome) {
        let matches = outcome.result.as_ref().map(|m| m.num_matches).unwrap_or(0);
        if !self.ledger.commit(q.id, matches) {
            return;
        }
        self.ranks[r].jobs_done.fetch_add(1, Ordering::AcqRel);
        self.trace.instant_with(
            EventKind::Job,
            "complete",
            &[
                ("job", Arg::U64(q.id)),
                ("rank", Arg::U64(r as u64)),
                ("ok", Arg::U64(outcome.result.is_ok() as u64)),
            ],
        );
        self.telem.on_finish(
            Telemetry::class_of(&q.seed.job),
            q.seed.job.deadline,
            &outcome,
        );
        let finished = {
            let mut o = self.outcomes.lock().unwrap();
            o.push(outcome);
            o.len() as u64
        };
        self.telem.maybe_emit(finished);
    }
}

// ---------------------------------------------------------------------
// Submission handle.

/// Submission side of a running tier, passed to the closure given to
/// [`ServeTier::run`].
pub struct ServeHandle<'s, 'e, 't> {
    shared: &'s ServeShared<'e, 't>,
}

impl ServeHandle<'_, '_, '_> {
    /// Submits a job. Returns [`SchedError::Busy`] when the tier-wide
    /// bounded queue is full — the caller decides whether to retry,
    /// drop, or shed load.
    pub fn submit(&self, job: Job) -> Result<JobId, SchedError> {
        {
            let mut g = self.shared.gate.lock().unwrap();
            if g.closed {
                return Err(SchedError::Closed);
            }
            if g.queued >= self.shared.cfg.queue_capacity {
                return Err(SchedError::Busy {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            g.queued += 1;
        }
        Ok(self.shared.admit_submission(job))
    }

    /// Submits a job, blocking while the queue is full.
    pub fn submit_wait(&self, job: Job) -> JobId {
        {
            let mut g = self.shared.gate.lock().unwrap();
            while g.queued >= self.shared.cfg.queue_capacity && !g.closed {
                g = self.shared.space.wait(g).unwrap();
            }
            g.queued += 1;
        }
        self.shared.admit_submission(job)
    }

    /// Submits a job, blocking at most `timeout` for queue space; the
    /// deadline-aware variant of [`ServeHandle::submit_wait`]. Returns
    /// [`SchedError::Timeout`] when the queue never drained.
    pub fn submit_wait_timeout(&self, job: Job, timeout: Duration) -> Result<JobId, SchedError> {
        let deadline = Instant::now() + timeout;
        {
            let mut g = self.shared.gate.lock().unwrap();
            while g.queued >= self.shared.cfg.queue_capacity && !g.closed {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SchedError::Timeout {
                        waited_millis: timeout.as_millis() as u64,
                    });
                }
                g = self.shared.space.wait_timeout(g, deadline - now).unwrap().0;
            }
            if g.closed {
                return Err(SchedError::Closed);
            }
            g.queued += 1;
        }
        Ok(self.shared.admit_submission(job))
    }

    /// Jobs currently admitted and not yet claimed by a lane.
    pub fn pending(&self) -> usize {
        self.shared.gate.lock().unwrap().queued
    }

    /// Ranks still alive.
    pub fn live_ranks(&self) -> usize {
        self.shared.alive.live_count()
    }
}

// ---------------------------------------------------------------------
// The tier.

/// The multi-tenant serving tier (see module docs).
///
/// ```
/// use std::sync::Arc;
/// use cuts_core::serve::{ServeConfig, ServeTier};
/// use cuts_core::sched::Job;
/// use cuts_graph::generators::{clique, mesh2d};
///
/// let tier = ServeTier::new(
///     ServeConfig::builder().ranks(2).lanes(1).build().unwrap(),
/// );
/// let data = Arc::new(mesh2d(4, 4));
/// let query = Arc::new(clique(2));
/// let report = tier
///     .run(|h| {
///         for _ in 0..4 {
///             h.submit_wait(Job::new(data.clone(), query.clone()));
///         }
///         Ok(())
///     })
///     .unwrap();
/// assert_eq!(report.stats.completed, 4);
/// ```
pub struct ServeTier {
    config: ServeConfig,
    /// `rank_devices[r][d]` is rank `r`'s `d`-th simulated device.
    rank_devices: Vec<Vec<Device>>,
    trace: Trace,
    kernel_reg: Registry,
}

impl std::fmt::Debug for ServeTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTier")
            .field("ranks", &self.config.ranks)
            .field("devices_per_rank", &self.config.devices_per_rank)
            .field("lanes", &self.config.lanes)
            .finish()
    }
}

impl ServeTier {
    /// Builds the tier: `ranks × devices_per_rank` simulated devices,
    /// each wired to the config's trace and a tier-lifetime kernel
    /// telemetry registry.
    pub fn new(config: ServeConfig) -> ServeTier {
        let trace = config.trace.clone().unwrap_or_else(Trace::disabled);
        let kernel_reg = Registry::with_enabled(config.telemetry);
        let rank_devices = (0..config.ranks)
            .map(|r| {
                (0..config.devices_per_rank)
                    .map(|_| {
                        let mut d = Device::new(config.device.clone());
                        d.set_trace(trace.with_rank(r));
                        d.set_registry(kernel_reg.clone());
                        d
                    })
                    .collect()
            })
            .collect();
        ServeTier {
            config,
            rank_devices,
            trace,
            kernel_reg,
        }
    }

    /// Number of simulated ranks.
    pub fn ranks(&self) -> usize {
        self.config.ranks
    }

    /// The tier's configuration (watch-session plumbing).
    pub(crate) fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The per-rank device matrix (watch-session plumbing).
    pub(crate) fn rank_devices(&self) -> &[Vec<Device>] {
        &self.rank_devices
    }

    /// The tier's resolved trace (watch-session plumbing).
    pub(crate) fn serve_trace(&self) -> &Trace {
        &self.trace
    }

    /// The tier-lifetime registry devices record per-kernel wall
    /// histograms into; merge its snapshot with the per-run
    /// [`ServeReport::telemetry`] for one Prometheus exposition.
    pub fn kernel_telemetry(&self) -> &Registry {
        &self.kernel_reg
    }

    /// Runs one stream: `submit` receives a handle, submits jobs (and
    /// may interleave its own logic); when it returns, the stream is
    /// closed and `run` blocks until every registered job has committed
    /// — including jobs re-admitted from ranks that died mid-stream.
    ///
    /// Errors only when the submit closure errors or the stream is
    /// genuinely unfinishable (every rank died); per-job failures are
    /// outcomes, not run errors.
    pub fn run<F>(&self, submit: F) -> Result<ServeReport, CutsError>
    where
        F: FnOnce(&ServeHandle<'_, '_, '_>) -> Result<(), CutsError>,
    {
        let cfg = &self.config;
        let mut sessions: Vec<Vec<ExecSession<'_>>> = Vec::with_capacity(cfg.ranks);
        for rank_devs in &self.rank_devices {
            let mut per_rank = Vec::with_capacity(cfg.devices_per_rank);
            for d in rank_devs {
                let s = ExecSession::with_cache_capacity(d, cfg.engine.clone(), cfg.plan_cache);
                s.seed_plans(&cfg.warm_plans);
                s.prepare_trie_arena().map_err(CutsError::from)?;
                per_rank.push(s);
            }
            sessions.push(per_rank);
        }
        let ranks: Vec<RankState<'_>> = sessions
            .iter()
            .map(|per_rank| RankState {
                devs: per_rank
                    .iter()
                    .map(|session| ServeDev {
                        session,
                        budget_words: session.trie_budget_words(),
                        reserved: AtomicUsize::new(0),
                        peak_reserved: AtomicUsize::new(0),
                    })
                    .collect(),
                inbox: Mutex::new(Vec::new()),
                work: Condvar::new(),
                queued_words: AtomicUsize::new(0),
                jobs_done: AtomicUsize::new(0),
                dead: AtomicBool::new(false),
            })
            .collect();
        let resolved = cfg.fault_plan.resolve(cfg.ranks);
        let telem = Telemetry::with(cfg.telemetry, cfg.stats_every, cfg.stats_sink.clone());
        let migrations = telem.reg.counter(
            "cuts_serve_migrations_total",
            &[],
            "Whole-job migrations between ranks",
        );
        let readmissions = telem.reg.counter(
            "cuts_serve_readmissions_total",
            &[],
            "Jobs re-admitted from dead ranks",
        );
        let ranks_lost = telem.reg.counter(
            "cuts_serve_ranks_lost_total",
            &[],
            "Ranks that died mid-stream",
        );
        let shared = ServeShared {
            cfg,
            trace: &self.trace,
            ranks,
            ledger: WorkLedger::new(),
            alive: AliveBoard::new(cfg.ranks),
            injector: if resolved.is_empty() {
                None
            } else {
                Some(FaultInjector::new(resolved, cfg.ranks))
            },
            gate: Mutex::new(Gate {
                queued: 0,
                closed: false,
            }),
            space: Condvar::new(),
            outcomes: Mutex::new(Vec::new()),
            submitted: AtomicU64::new(0),
            first_failure: Mutex::new(None),
            sizing_memo: Mutex::new(HashMap::new()),
            telem,
            migrations,
            readmissions,
            ranks_lost,
        };
        flight::record(FlightCode::RunStart, cfg.ranks as u64, cfg.lanes as u64);
        let start = Instant::now();
        let submit_result = std::thread::scope(|scope| {
            for r in 0..cfg.ranks {
                for d in 0..cfg.devices_per_rank {
                    for lane in 0..cfg.lanes {
                        let shared = &shared;
                        scope.spawn(move || {
                            // A panicking lane — injected `panic:R@C`
                            // or a genuine bug — kills its whole rank,
                            // never the tier: the unwind is caught here
                            // and survivors re-admit the rank's jobs.
                            let out = catch_unwind(AssertUnwindSafe(|| {
                                lane_loop(shared, r, d, lane);
                            }));
                            if out.is_err() {
                                shared.mark_rank_dead(r, DistError::Panicked { rank: r });
                            }
                        });
                    }
                }
            }
            let handle = ServeHandle { shared: &shared };
            let r = submit(&handle);
            {
                let mut g = shared.gate.lock().unwrap();
                g.closed = true;
            }
            shared.space.notify_all();
            for rank in &shared.ranks {
                let _inbox = rank.inbox.lock().unwrap();
                rank.work.notify_all();
            }
            r
            // Scope exit joins every lane of every rank.
        });
        submit_result?;
        let wall_millis = start.elapsed().as_secs_f64() * 1e3;
        flight::record(FlightCode::RunEnd, wall_millis as u64, 0);

        if !shared.ledger.all_completed() {
            // Only possible when every rank died (a survivable plan is
            // enforced at build time, but real panics are not a plan).
            let cause = shared
                .first_failure
                .lock()
                .unwrap()
                .take()
                .unwrap_or(DistError::Panicked { rank: 0 });
            return Err(cause.into());
        }

        for (r, rank) in shared.ranks.iter().enumerate() {
            let rs = r.to_string();
            for (d, dev) in rank.devs.iter().enumerate() {
                let ds = (r * cfg.devices_per_rank + d).to_string();
                let l = [("rank", rs.as_str()), ("device", ds.as_str())];
                shared
                    .telem
                    .reg
                    .gauge(
                        "cuts_serve_peak_reserved_words",
                        &l,
                        "Peak reserved trie words per device (admission watermark)",
                    )
                    .set(dev.peak_reserved.load(Ordering::Relaxed) as f64);
            }
            shared
                .telem
                .reg
                .gauge(
                    "cuts_serve_rank_jobs",
                    &[("rank", rs.as_str())],
                    "Jobs committed by each rank",
                )
                .set(rank.jobs_done.load(Ordering::Relaxed) as f64);
        }

        let mut outcomes = shared.outcomes.into_inner().unwrap();
        outcomes.sort_by_key(|o: &JobOutcome| o.id);
        let completed = outcomes.iter().filter(|o| o.result.is_ok()).count() as u64;
        let failed = outcomes.len() as u64 - completed;
        let stats = ServeStats {
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed,
            failed,
            migrated: shared.migrations.get(),
            readmitted: shared.readmissions.get(),
            lost_ranks: (0..cfg.ranks)
                .filter(|&r| !shared.alive.is_alive(r))
                .collect(),
            per_rank_jobs: shared
                .ranks
                .iter()
                .map(|r| r.jobs_done.load(Ordering::Relaxed) as u64)
                .collect(),
            total_matches: shared.ledger.total_matches(),
            peak_reserved_words: shared
                .ranks
                .iter()
                .flat_map(|r| r.devs.iter())
                .map(|d| d.peak_reserved.load(Ordering::Relaxed))
                .collect(),
            budget_words: shared
                .ranks
                .iter()
                .flat_map(|r| r.devs.iter())
                .map(|d| d.budget_words)
                .collect(),
        };
        let slo = shared.telem.slo();
        let postmortem = shared.telem.postmortem.lock().unwrap().take();
        Ok(ServeReport {
            outcomes,
            wall_millis,
            stats,
            slo,
            telemetry: shared.telem.reg.clone(),
            postmortem,
        })
    }

    /// Convenience wrapper: submits `jobs` in order (blocking on
    /// backpressure) and drains the stream.
    pub fn run_stream(&self, jobs: &[Job]) -> Result<ServeReport, CutsError> {
        self.run(|h| {
            for job in jobs {
                h.submit_wait(job.clone());
            }
            Ok(())
        })
    }

    /// The tier's semantic baseline: the same jobs, one at a time, in
    /// submission order, on rank 0's first device, with identical
    /// per-job trie sizing and pacing. [`ServeTier::run`] must produce
    /// byte-identical [`crate::MatchResult::canonical_bytes`] per job at
    /// any ranks × lanes.
    pub fn run_serial(&self, jobs: &[Job]) -> Result<ServeReport, CutsError> {
        let cfg = &self.config;
        let session = ExecSession::with_cache_capacity(
            &self.rank_devices[0][0],
            cfg.engine.clone(),
            cfg.plan_cache,
        );
        session.seed_plans(&cfg.warm_plans);
        session.prepare_trie_arena().map_err(CutsError::from)?;
        let telem = Telemetry::with(cfg.telemetry, cfg.stats_every, cfg.stats_sink.clone());
        flight::record(FlightCode::RunStart, 1, 1);
        let start = Instant::now();
        let mut outcomes = Vec::with_capacity(jobs.len());
        let (mut completed, mut failed) = (0u64, 0u64);
        let mut total_matches = 0u64;
        for (i, job) in jobs.iter().enumerate() {
            let queued = start.elapsed().as_secs_f64() * 1e3;
            let exec_start = Instant::now();
            let result = session
                .plan_for(&job.query)
                .map_err(CutsError::from)
                .and_then(|plan| {
                    let entries = job_entries_for(&plan, &job.data, cfg.sigma);
                    let budget = plan.trie_entries_budget.max(1);
                    match session
                        .run_with_plan_budgeted(&plan, &job.data, entries, budget, &GrantAll)
                    {
                        Ok(ok) => Ok(ok),
                        Err(BudgetedRunError::Engine(e)) => Err(CutsError::from(e)),
                        Err(BudgetedRunError::GrowthDenied { .. }) => {
                            unreachable!("GrantAll never denies growth")
                        }
                    }
                });
            let (result, entries) = match result {
                Ok((r, e)) => {
                    if cfg.pacing > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(
                            r.sim_millis * cfg.pacing / 1e3,
                        ));
                    }
                    completed += 1;
                    total_matches += r.num_matches;
                    (Ok(r), e)
                }
                Err(e) => {
                    failed += 1;
                    (Err(e), 0)
                }
            };
            let outcome = JobOutcome {
                id: JobId(i as u64),
                name: job.name.clone(),
                device: 0,
                lane: 0,
                queue_millis: queued,
                exec_millis: exec_start.elapsed().as_secs_f64() * 1e3,
                trie_entries: entries,
                stolen: false,
                result,
            };
            telem.on_finish(Telemetry::class_of(job), job.deadline, &outcome);
            telem.maybe_emit(i as u64 + 1);
            outcomes.push(outcome);
        }
        let wall_millis = start.elapsed().as_secs_f64() * 1e3;
        flight::record(FlightCode::RunEnd, wall_millis as u64, 0);
        let slo = telem.slo();
        let postmortem = telem.postmortem.lock().unwrap().take();
        Ok(ServeReport {
            outcomes,
            wall_millis,
            stats: ServeStats {
                submitted: jobs.len() as u64,
                completed,
                failed,
                per_rank_jobs: vec![completed + failed],
                total_matches,
                peak_reserved_words: vec![0],
                budget_words: vec![session.trie_budget_words()],
                ..Default::default()
            },
            slo,
            telemetry: telem.reg,
            postmortem,
        })
    }
}

// ---------------------------------------------------------------------
// Lane execution.

/// Claims the best-scored inbox entry whose reservation fits `dev`'s
/// remaining budget right now.
fn claim(shared: &ServeShared<'_, '_>, r: usize, dev: &ServeDev<'_>) -> Option<Queued> {
    let rank = &shared.ranks[r];
    let now = Instant::now();
    let mut inbox = rank.inbox.lock().unwrap();
    let reserved = dev.reserved.load(Ordering::Relaxed);
    let mut best: Option<(usize, f64)> = None;
    for (i, q) in inbox.iter().enumerate() {
        if reserved + q.words > dev.budget_words {
            continue;
        }
        let s = dispatch_score(
            q.seed.job.priority,
            q.seed.job.deadline,
            q.seed.submitted_at,
            now,
            shared.cfg.aging,
        );
        if best.is_none_or(|(_, bs)| s > bs) {
            best = Some((i, s));
        }
    }
    let (i, _) = best?;
    let q = inbox.swap_remove(i);
    rank.queued_words.fetch_sub(
        q.words.min(rank.queued_words.load(Ordering::Relaxed)),
        Ordering::Relaxed,
    );
    Some(q)
}

fn lane_loop(shared: &ServeShared<'_, '_>, r: usize, d: usize, lane: usize) {
    let cfg = shared.cfg;
    let rank = &shared.ranks[r];
    let dev = &rank.devs[d];
    let global_device = r * cfg.devices_per_rank + d;
    loop {
        if rank.dead.load(Ordering::Acquire) {
            return;
        }
        // Scheduled crashes fire at job-claim boundaries, mirroring the
        // distributed worker's chunk-boundary checks: the rank's commit
        // count is its crash clock. The `at least` form matters here —
        // sibling lanes can push the count past the scheduled value
        // between two boundary checks.
        if let Some(inj) = &shared.injector {
            if let Some(kind) = inj.should_crash_by(r, rank.jobs_done.load(Ordering::Acquire)) {
                flight::record_rank(
                    r as u32,
                    FlightCode::Fault,
                    rank.jobs_done.load(Ordering::Relaxed) as u64,
                    matches!(kind, CrashKind::Error) as u64,
                );
                shared.mark_rank_dead(
                    r,
                    DistError::InjectedCrash {
                        rank: r,
                        after_chunks: rank.jobs_done.load(Ordering::Relaxed),
                    },
                );
                if kind == CrashKind::Panic {
                    panic!("injected fault: rank {r} panics mid-stream");
                }
                return;
            }
        }
        let Some(q) = claim(shared, r, dev) else {
            if shared.closed_and_complete() {
                return;
            }
            // Idle: first try whole-job migration from a loaded peer,
            // then re-admission of a dead rank's jobs, then sleep.
            if shared.try_migrate(r) || shared.try_readmit(r) {
                continue;
            }
            let inbox = rank.inbox.lock().unwrap();
            if inbox.is_empty() && !rank.dead.load(Ordering::Acquire) {
                let _ = rank
                    .work
                    .wait_timeout(inbox, Duration::from_millis(1))
                    .unwrap();
            }
            continue;
        };
        if q.counted {
            shared.release_slot();
        }
        let queue_millis = q.seed.submitted_at.elapsed().as_secs_f64() * 1e3;
        let exec_start = Instant::now();
        let job = &q.seed.job;
        let outcome_result;
        let mut trie_entries = 0usize;
        match dev.session.plan_for(&job.query) {
            Err(e) => {
                outcome_result = Err(CutsError::from(e));
            }
            Ok(plan) => {
                let mut entries = job_entries_for(&plan, &job.data, cfg.sigma);
                let budget_entries = plan.trie_entries_budget.max(1);
                let mut reserve_words = dev.session.chain_words(entries);
                // `claim` checked the fit against a racy snapshot; wait
                // out any in-place growth that beat us to the ledger.
                while !dev.try_reserve(reserve_words) {
                    std::thread::sleep(Duration::from_micros(100));
                }
                flight::record(FlightCode::JobAdmit, q.id, global_device as u64);
                // The same growth-on-undershoot sequence the scheduler's
                // lanes take, so per-job results stay byte-identical at
                // any ranks × lanes (see `crate::sched::lane_loop`).
                let result = loop {
                    let ledger = ServeLaneLedger {
                        dev,
                        granted: AtomicUsize::new(0),
                    };
                    let run = dev.session.run_with_plan_budgeted(
                        &plan,
                        &job.data,
                        entries,
                        budget_entries,
                        &ledger,
                    );
                    let granted = ledger.granted.load(Ordering::Relaxed);
                    match run {
                        Ok((result, achieved)) => {
                            entries = achieved;
                            reserve_words += granted;
                            break Ok(result);
                        }
                        Err(BudgetedRunError::GrowthDenied { target_entries }) => {
                            entries = target_entries;
                            shared.telem.growth_denials.inc();
                            flight::record(FlightCode::GrowthDenied, q.id, target_entries as u64);
                            dev.reserved
                                .fetch_sub(reserve_words + granted, Ordering::AcqRel);
                            let grown_words = dev.session.chain_words(entries);
                            while !dev.try_reserve(grown_words) {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            reserve_words = grown_words;
                        }
                        Err(BudgetedRunError::Engine(e)) => {
                            reserve_words += granted;
                            break Err(CutsError::from(e));
                        }
                    }
                };
                if let Ok(result) = &result {
                    if cfg.pacing > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(
                            result.sim_millis * cfg.pacing / 1e3,
                        ));
                    }
                    trie_entries = entries;
                }
                dev.reserved.fetch_sub(reserve_words, Ordering::AcqRel);
                outcome_result = result;
            }
        }
        let outcome = JobOutcome {
            id: JobId(q.id),
            name: job.name.clone(),
            device: global_device,
            lane,
            queue_millis,
            exec_millis: exec_start.elapsed().as_secs_f64() * 1e3,
            trie_entries,
            stolen: false,
            result: outcome_result,
        };
        shared.finish(r, &q, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_graph::generators::{clique, erdos_renyi, mesh2d};

    fn small_tier(ranks: usize, lanes: usize) -> ServeTier {
        ServeTier::new(
            ServeConfig::builder()
                .ranks(ranks)
                .lanes(lanes)
                .device_config(DeviceConfig::test_small())
                .build()
                .unwrap(),
        )
    }

    fn demo_jobs() -> Vec<Job> {
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let mesh = Arc::new(mesh2d(4, 4));
        let q3 = Arc::new(clique(3));
        let q2 = Arc::new(clique(2));
        let mut jobs = Vec::new();
        for i in 0..8 {
            let (d, q) = if i % 2 == 0 {
                (data.clone(), q3.clone())
            } else {
                (mesh.clone(), q2.clone())
            };
            jobs.push(
                Job::new(d, q)
                    .with_priority(i % 3)
                    .with_class(if i % 2 == 0 { "gold" } else { "best_effort" }),
            );
        }
        jobs
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(ServeConfig::builder().ranks(0).build().is_err());
        assert!(ServeConfig::builder().lanes(0).build().is_err());
        assert!(ServeConfig::builder().devices_per_rank(0).build().is_err());
        assert!(ServeConfig::builder().sigma(0.0).build().is_err());
        assert!(ServeConfig::builder().queue_capacity(0).build().is_err());
    }

    #[test]
    fn fault_plan_must_leave_a_survivor() {
        let plan = FaultPlan::parse("crash:0@0, crash:1@0").unwrap();
        let err = ServeConfig::builder().ranks(2).fault_plan(plan).build();
        assert!(err.is_err(), "a plan killing every rank must be rejected");
        // Out-of-range clauses are typed errors, not silent no-ops.
        let plan = FaultPlan::parse("crash:5@0").unwrap();
        assert!(ServeConfig::builder()
            .ranks(2)
            .fault_plan(plan)
            .build()
            .is_err());
    }

    #[test]
    fn multi_rank_matches_serial_per_job() {
        let jobs = demo_jobs();
        let tier = small_tier(2, 2);
        let serial = tier.run_serial(&jobs).unwrap();
        let served = tier.run_stream(&jobs).unwrap();
        assert_eq!(served.stats.completed, jobs.len() as u64);
        assert_eq!(served.outcomes.len(), serial.outcomes.len());
        for (s, p) in serial.outcomes.iter().zip(served.outcomes.iter()) {
            assert_eq!(s.id, p.id);
            let (a, b) = (s.result.as_ref().unwrap(), p.result.as_ref().unwrap());
            assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        }
    }

    /// Regression: the throughput bench used to build the rank sweep with
    /// `.telemetry(false)`, so `serve_ranks` SLO classes reported
    /// `completed: 0` and all-zero quantiles despite 16 completed jobs.
    /// A default-configured multi-rank tier must account every job into
    /// its class with real quantiles.
    #[test]
    fn multi_rank_slo_reports_completed_and_quantiles() {
        let jobs = demo_jobs();
        let report = small_tier(2, 2).run_stream(&jobs).unwrap();
        assert_eq!(report.stats.completed, jobs.len() as u64);
        let accounted: u64 = report.slo.classes.iter().map(|c| c.completed).sum();
        assert_eq!(accounted, jobs.len() as u64, "every job lands in a class");
        assert!(report.slo.classes.len() >= 2, "demo jobs span two classes");
        for c in &report.slo.classes {
            assert!(c.completed > 0, "class {} reported empty", c.class);
            assert!(
                c.exec_us[2] > 0,
                "class {} has zero exec quantiles",
                c.class
            );
            assert!(c.queue_us[0] <= c.queue_us[2]);
        }
    }

    #[test]
    fn rank_crash_loses_no_jobs() {
        let jobs = demo_jobs();
        let tier = ServeTier::new(
            ServeConfig::builder()
                .ranks(2)
                .lanes(1)
                .device_config(DeviceConfig::test_small())
                // Keep each job on-device for a few milliseconds so the
                // victim reaches its crash trigger (one completed job)
                // before its peer can drain the whole stream.
                .pacing(50.0)
                .fault_plan(FaultPlan::parse("crash:1@1").unwrap())
                .build()
                .unwrap(),
        );
        let clean = small_tier(2, 1).run_stream(&jobs).unwrap();
        let faulted = tier.run_stream(&jobs).unwrap();
        assert_eq!(faulted.stats.completed, jobs.len() as u64);
        assert_eq!(faulted.stats.lost_ranks, vec![1]);
        assert_eq!(faulted.stats.total_matches, clean.stats.total_matches);
        for (a, b) in clean.outcomes.iter().zip(faulted.outcomes.iter()) {
            assert_eq!(
                a.result.as_ref().unwrap().canonical_bytes(),
                b.result.as_ref().unwrap().canonical_bytes()
            );
        }
    }

    #[test]
    fn submit_timeout_is_typed() {
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let query = Arc::new(clique(3));
        let tier = ServeTier::new(
            ServeConfig::builder()
                .ranks(1)
                .lanes(1)
                .device_config(DeviceConfig::test_small())
                .queue_capacity(1)
                .pacing(200.0)
                .build()
                .unwrap(),
        );
        let report = tier
            .run(|h| {
                h.submit_wait(Job::new(data.clone(), query.clone()));
                h.submit_wait(Job::new(data.clone(), query.clone()));
                // Lane busy with job 1 (paced), job 2 queued: the gate
                // is full, so a bounded wait must time out, typed.
                match h.submit_wait_timeout(
                    Job::new(data.clone(), query.clone()),
                    Duration::from_millis(1),
                ) {
                    Err(SchedError::Timeout { .. }) => {}
                    other => panic!("expected Timeout, got {other:?}"),
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.completed, 2);
    }
}
