//! Run results and statistics.

use cuts_gpu_sim::Counters;
use cuts_obs::{Json, ToJson};
use cuts_trie::space::LevelCounts;

/// Outcome of a successful matching run.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Number of embeddings (injective, edge-preserving mappings) found.
    pub num_matches: u64,
    /// Total partial paths per depth (`|P_1| … |P_{|V_Q|}|`), accumulated
    /// across chunks in hybrid mode — the inputs to the Table 1 space
    /// accounting.
    pub level_counts: Vec<u64>,
    /// Device hardware counters for the run.
    pub counters: Counters,
    /// Roofline-model simulated kernel time in milliseconds.
    pub sim_millis: f64,
    /// Host wall time of the simulation (measures the simulator, not the
    /// modelled device; reported for completeness only).
    pub wall_millis: f64,
    /// Whether the run had to fall back to hybrid BFS-DFS chunking.
    pub used_chunking: bool,
    /// The matching order used (query vertex per depth).
    pub order: Vec<u32>,
}

impl MatchResult {
    /// Space accounting view of the per-depth path counts.
    pub fn space(&self) -> LevelCounts {
        LevelCounts(self.level_counts.clone())
    }

    /// Peak naive-storage words the same run would have needed (Table 1's
    /// first column for this workload).
    pub fn naive_words(&self) -> u64 {
        self.space().naive_words(self.level_counts.len())
    }

    /// Trie words this run needed.
    pub fn cuts_words(&self) -> u64 {
        self.space().cuts_words(self.level_counts.len())
    }

    /// A canonical byte encoding of the run's *semantic* outcome: the
    /// match count, per-level path counts, and matching order. Timing
    /// fields, hardware counters, and the chunking flag are excluded —
    /// they legitimately differ between executions that are semantically
    /// identical (e.g. a serial loop vs. the scheduler, which sizes trie
    /// capacity per job). Two runs are equivalent iff these bytes match.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * (2 + self.level_counts.len()) + 4 * self.order.len());
        out.extend_from_slice(&self.num_matches.to_le_bytes());
        out.extend_from_slice(&(self.level_counts.len() as u64).to_le_bytes());
        for &c in &self.level_counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for &q in &self.order {
            out.extend_from_slice(&q.to_le_bytes());
        }
        out
    }
}

impl ToJson for MatchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("num_matches", Json::U64(self.num_matches)),
            (
                "level_counts",
                Json::Arr(self.level_counts.iter().map(|&c| Json::U64(c)).collect()),
            ),
            (
                "order",
                Json::Arr(self.order.iter().map(|&q| Json::U64(q as u64)).collect()),
            ),
            ("used_chunking", Json::Bool(self.used_chunking)),
            ("sim_millis", Json::F64(self.sim_millis)),
            ("wall_millis", Json::F64(self.wall_millis)),
            ("naive_words", Json::U64(self.naive_words())),
            ("cuts_words", Json::U64(self.cuts_words())),
            ("counters", self.counters.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_views() {
        let r = MatchResult {
            num_matches: 3,
            level_counts: vec![4, 3],
            counters: Counters::default(),
            sim_millis: 0.0,
            wall_millis: 0.0,
            used_chunking: false,
            order: vec![0, 1],
        };
        assert_eq!(r.naive_words(), 4 + 2 * 3);
        assert_eq!(r.cuts_words(), 2 * (4 + 3));
    }
}
