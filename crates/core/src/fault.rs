//! Deterministic fault injection for the distributed runtime and the
//! serving tier.
//!
//! A [`FaultPlan`] is a *schedule*, not a probability: it names exactly
//! which rank crashes at which work boundary and which point-to-point
//! messages are dropped or delayed (by per-edge send ordinal). Running
//! the same plan twice injects exactly the same faults, which is what
//! lets the recovery test suite assert bit-identical match counts.
//!
//! Plans come from three places: the compact text schema parsed by
//! [`FaultPlan::parse`] (the CLI's `--fault-plan`), the seeded generator
//! [`FaultPlan::seeded`] (property-style sweeps), or literal
//! construction in tests. The [`FaultInjector`] is the runtime half:
//! one shared instance per universe, consulted by the simulated
//! transport on every send and by workers at every work boundary —
//! chunk commits in the distributed runtime (`cuts-dist`), job commits
//! in [`crate::serve`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::error::DistError;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How an injected process failure manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Worker returns an error (clean fail-stop).
    Error,
    /// Worker thread panics (tests the unwind/join recovery path).
    Panic,
}

/// A scheduled rank failure at a chunk boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// Rank that fails.
    pub rank: usize,
    /// Boundary at which it fails: just before processing its
    /// `(after_chunks + 1)`-th chunk (0 = before any work).
    pub after_chunks: usize,
    /// Failure mode.
    pub kind: CrashKind,
}

/// A scheduled message drop: the `nth` message (1-based) sent from
/// `from` to `to` vanishes in transit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropFault {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// 1-based ordinal among all messages `from` sends to `to`.
    pub nth: u64,
}

/// A scheduled message delay: the `nth` message from `from` to `to` is
/// delivered `millis` late.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayFault {
    /// Sending rank.
    pub from: usize,
    /// Receiving rank.
    pub to: usize,
    /// 1-based ordinal among all messages `from` sends to `to`.
    pub nth: u64,
    /// Added latency in milliseconds.
    pub millis: u64,
}

/// A deterministic schedule of injected faults.
///
/// Text schema (comma-separated clauses, parsed by [`FaultPlan::parse`]):
///
/// ```text
/// crash:R@C        rank R fails (error) before its (C+1)-th chunk
/// panic:R@C        rank R panics before its (C+1)-th chunk
/// drop:A->B@N      the N-th message from rank A to rank B is dropped
/// delay:A->B@N+MS  the N-th message from A to B arrives MS ms late
/// seed:S           shorthand: merge in FaultPlan::seeded(S, ranks)
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Scheduled rank failures.
    pub crashes: Vec<CrashFault>,
    /// Scheduled message drops.
    pub drops: Vec<DropFault>,
    /// Scheduled message delays.
    pub delays: Vec<DelayFault>,
    /// Seed recorded when the plan came from [`FaultPlan::seeded`] or a
    /// `seed:` clause (resolved against the actual rank count at run
    /// start; purely informational otherwise).
    pub seed: Option<u64>,
}

impl FaultPlan {
    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.drops.is_empty()
            && self.delays.is_empty()
            && self.seed.is_none()
    }

    /// Parses the text schema (see type docs). Whitespace around clauses
    /// is ignored; an empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, DistError> {
        let bad = |clause: &str, reason: &'static str| DistError::FaultSpec {
            clause: clause.to_string(),
            reason,
        };
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| bad(clause, "missing `:`"))?;
            match kind {
                "crash" | "panic" => {
                    let (r, c) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected R@C"))?;
                    plan.crashes.push(CrashFault {
                        rank: parse_num(r, clause)?,
                        after_chunks: parse_num(c, clause)?,
                        kind: if kind == "crash" {
                            CrashKind::Error
                        } else {
                            CrashKind::Panic
                        },
                    });
                }
                "drop" => {
                    let (edge, n) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected A->B@N"))?;
                    let (a, b) = parse_edge(edge, clause)?;
                    plan.drops.push(DropFault {
                        from: a,
                        to: b,
                        nth: parse_num(n, clause)?,
                    });
                }
                "delay" => {
                    let (edge, tail) = rest
                        .split_once('@')
                        .ok_or_else(|| bad(clause, "expected A->B@N+MS"))?;
                    let (a, b) = parse_edge(edge, clause)?;
                    let (n, ms) = tail
                        .split_once('+')
                        .ok_or_else(|| bad(clause, "expected N+MS after @"))?;
                    plan.delays.push(DelayFault {
                        from: a,
                        to: b,
                        nth: parse_num(n, clause)?,
                        millis: parse_num(ms, clause)?,
                    });
                }
                "seed" => plan.seed = Some(parse_num(rest, clause)?),
                _ => return Err(bad(clause, "unknown fault kind")),
            }
        }
        Ok(plan)
    }

    /// Deterministic pseudo-random plan for `ranks` ranks: between one
    /// and `ranks - 1` non-overlapping crash victims (never rank-count
    /// many, so a survivor always exists), plus a handful of early drops
    /// and delays. Same `(seed, ranks)` ⇒ identical plan.
    pub fn seeded(seed: u64, ranks: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_1A17);
        let mut plan = FaultPlan {
            seed: Some(seed),
            ..Default::default()
        };
        if ranks < 2 {
            return plan; // nothing survivable to inject
        }
        let victims = rng.random_range(1..ranks);
        let mut ranks_left: Vec<usize> = (0..ranks).collect();
        for _ in 0..victims {
            let i = rng.random_range(0..ranks_left.len());
            plan.crashes.push(CrashFault {
                rank: ranks_left.swap_remove(i),
                after_chunks: rng.random_range(0..4usize),
                kind: if rng.random_bool(0.25) {
                    CrashKind::Panic
                } else {
                    CrashKind::Error
                },
            });
        }
        for _ in 0..rng.random_range(0..4usize) {
            let from = rng.random_range(0..ranks);
            let mut to = rng.random_range(0..ranks);
            if to == from {
                to = (to + 1) % ranks;
            }
            plan.drops.push(DropFault {
                from,
                to,
                nth: rng.random_range(1..6u64),
            });
        }
        for _ in 0..rng.random_range(0..3usize) {
            let from = rng.random_range(0..ranks);
            let mut to = rng.random_range(0..ranks);
            if to == from {
                to = (to + 1) % ranks;
            }
            plan.delays.push(DelayFault {
                from,
                to,
                nth: rng.random_range(1..4u64),
                millis: rng.random_range(5..25u64),
            });
        }
        plan
    }

    /// Resolves `seed:` shorthand against the actual rank count and
    /// drops faults referencing out-of-range ranks.
    pub fn resolve(&self, ranks: usize) -> FaultPlan {
        let mut plan = self.clone();
        if let Some(seed) = plan.seed {
            let generated = FaultPlan::seeded(seed, ranks);
            plan.crashes.extend(generated.crashes);
            plan.drops.extend(generated.drops);
            plan.delays.extend(generated.delays);
        }
        plan.crashes.retain(|c| c.rank < ranks);
        plan.drops.retain(|d| d.from < ranks && d.to < ranks);
        plan.delays.retain(|d| d.from < ranks && d.to < ranks);
        plan
    }

    /// Errors if any explicit clause references a rank outside
    /// `0..ranks` — a typo'd rank would otherwise make the clause a
    /// silent no-op (see [`FaultPlan::resolve`]). Seeded clauses are
    /// generated in-range and need no check.
    pub fn check_ranks(&self, ranks: usize) -> Result<(), DistError> {
        let bad = |r: usize| r >= ranks;
        for c in &self.crashes {
            if bad(c.rank) {
                return Err(DistError::RankOutOfRange {
                    rank: c.rank,
                    ranks,
                });
            }
        }
        for (from, to) in self
            .drops
            .iter()
            .map(|d| (d.from, d.to))
            .chain(self.delays.iter().map(|d| (d.from, d.to)))
        {
            if bad(from) || bad(to) {
                let rank = if bad(from) { from } else { to };
                return Err(DistError::RankOutOfRange { rank, ranks });
            }
        }
        Ok(())
    }

    /// Number of distinct ranks this plan crashes.
    pub fn distinct_victims(&self) -> usize {
        let mut ranks: Vec<usize> = self.crashes.iter().map(|c| c.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks.len()
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, clause: &str) -> Result<T, DistError> {
    s.trim().parse().map_err(|_| DistError::FaultSpec {
        clause: clause.to_string(),
        reason: "bad number",
    })
}

fn parse_edge(s: &str, clause: &str) -> Result<(usize, usize), DistError> {
    let (a, b) = s.split_once("->").ok_or_else(|| DistError::FaultSpec {
        clause: clause.to_string(),
        reason: "expected A->B",
    })?;
    Ok((parse_num(a, clause)?, parse_num(b, clause)?))
}

/// What the injector decides about one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendFate {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver after the added latency.
    Delay(Duration),
}

/// Runtime state of a fault plan: per-edge send ordinals plus injected
/// fault counters. One shared instance per universe.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    ranks: usize,
    /// `ranks × ranks` matrix of messages sent per directed edge.
    sent: Vec<AtomicU64>,
    /// Per-sender counts of injector-dropped messages.
    dropped: Vec<AtomicU64>,
    /// Per-sender counts of injector-delayed messages.
    delayed: Vec<AtomicU64>,
}

impl FaultInjector {
    /// Builds the injector for a resolved plan over `ranks` ranks.
    pub fn new(plan: FaultPlan, ranks: usize) -> Self {
        let plan = plan.resolve(ranks);
        FaultInjector {
            plan,
            ranks,
            sent: (0..ranks * ranks).map(|_| AtomicU64::new(0)).collect(),
            dropped: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
            delayed: (0..ranks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The resolved plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of the next `from → to` message and advances the
    /// edge ordinal. Deterministic given the send sequence.
    pub fn on_send(&self, from: usize, to: usize) -> SendFate {
        let nth = self.sent[from * self.ranks + to].fetch_add(1, Ordering::Relaxed) + 1;
        if self
            .plan
            .drops
            .iter()
            .any(|d| d.from == from && d.to == to && d.nth == nth)
        {
            self.dropped[from].fetch_add(1, Ordering::Relaxed);
            return SendFate::Drop;
        }
        if let Some(d) = self
            .plan
            .delays
            .iter()
            .find(|d| d.from == from && d.to == to && d.nth == nth)
        {
            self.delayed[from].fetch_add(1, Ordering::Relaxed);
            return SendFate::Delay(Duration::from_millis(d.millis));
        }
        SendFate::Deliver
    }

    /// Whether `rank` is scheduled to fail at the boundary where it has
    /// completed `chunks_done` chunks.
    pub fn should_crash(&self, rank: usize, chunks_done: usize) -> Option<CrashKind> {
        self.plan
            .crashes
            .iter()
            .find(|c| c.rank == rank && c.after_chunks == chunks_done)
            .map(|c| c.kind)
    }

    /// Like [`Self::should_crash`], but fires once `rank` has completed
    /// *at least* the scheduled count. A rank whose boundary checks and
    /// completions happen on different threads (the serving tier runs
    /// several lanes per rank) can skip past the exact count between two
    /// checks; the `<=` form cannot miss its trigger.
    pub fn should_crash_by(&self, rank: usize, chunks_done: usize) -> Option<CrashKind> {
        self.plan
            .crashes
            .iter()
            .find(|c| c.rank == rank && c.after_chunks <= chunks_done)
            .map(|c| c.kind)
    }

    /// Messages from `rank` the injector has dropped so far.
    pub fn messages_dropped(&self, rank: usize) -> u64 {
        self.dropped[rank].load(Ordering::Relaxed)
    }

    /// Messages from `rank` the injector has delayed so far.
    pub fn messages_delayed(&self, rank: usize) -> u64 {
        self.delayed[rank].load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_schema() {
        let p = FaultPlan::parse("crash:1@2, panic:0@0, drop:0->2@5, delay:2->1@1+20").unwrap();
        assert_eq!(
            p.crashes,
            vec![
                CrashFault {
                    rank: 1,
                    after_chunks: 2,
                    kind: CrashKind::Error
                },
                CrashFault {
                    rank: 0,
                    after_chunks: 0,
                    kind: CrashKind::Panic
                },
            ]
        );
        assert_eq!(
            p.drops,
            vec![DropFault {
                from: 0,
                to: 2,
                nth: 5
            }]
        );
        assert_eq!(
            p.delays,
            vec![DelayFault {
                from: 2,
                to: 1,
                nth: 1,
                millis: 20
            }]
        );
        assert!(p.seed.is_none());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "crash:1",
            "drop:0-2@5",
            "delay:0->1@3",
            "warp:1@1",
            "crash:x@1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(matches!(
            FaultPlan::parse("warp:1@1").unwrap_err(),
            DistError::FaultSpec {
                reason: "unknown fault kind",
                ..
            }
        ));
        assert!(matches!(
            FaultPlan::parse("crash:x@1").unwrap_err(),
            DistError::FaultSpec {
                reason: "bad number",
                ..
            }
        ));
    }

    #[test]
    fn check_ranks_is_typed() {
        let p = FaultPlan::parse("crash:3@0").unwrap();
        assert!(p.check_ranks(4).is_ok());
        assert_eq!(
            p.check_ranks(2).unwrap_err(),
            DistError::RankOutOfRange { rank: 3, ranks: 2 }
        );
        let p = FaultPlan::parse("drop:0->5@1").unwrap();
        assert_eq!(
            p.check_ranks(2).unwrap_err(),
            DistError::RankOutOfRange { rank: 5, ranks: 2 }
        );
    }

    #[test]
    fn seeded_is_deterministic_and_survivable() {
        for seed in 0..50 {
            for ranks in [2usize, 4, 8] {
                let a = FaultPlan::seeded(seed, ranks);
                let b = FaultPlan::seeded(seed, ranks);
                assert_eq!(a, b);
                assert!(a.distinct_victims() < ranks, "seed {seed} ranks {ranks}");
            }
        }
    }

    #[test]
    fn seed_clause_resolves() {
        let p = FaultPlan::parse("seed:7").unwrap();
        assert!(p.crashes.is_empty());
        let resolved = p.resolve(4);
        assert_eq!(resolved.crashes, FaultPlan::seeded(7, 4).crashes);
    }

    #[test]
    fn resolve_discards_out_of_range() {
        let p = FaultPlan::parse("crash:9@0, drop:0->9@1, delay:9->0@1+5").unwrap();
        let r = p.resolve(2);
        assert!(r.crashes.is_empty() && r.drops.is_empty() && r.delays.is_empty());
    }

    #[test]
    fn injector_fires_on_exact_ordinal() {
        let inj = FaultInjector::new(FaultPlan::parse("drop:0->1@2, delay:0->1@3+10").unwrap(), 2);
        assert_eq!(inj.on_send(0, 1), SendFate::Deliver);
        assert_eq!(inj.on_send(0, 1), SendFate::Drop);
        assert_eq!(
            inj.on_send(0, 1),
            SendFate::Delay(Duration::from_millis(10))
        );
        assert_eq!(inj.on_send(0, 1), SendFate::Deliver);
        // Other edges unaffected.
        assert_eq!(inj.on_send(1, 0), SendFate::Deliver);
        assert_eq!(inj.messages_dropped(0), 1);
        assert_eq!(inj.messages_delayed(0), 1);
    }

    #[test]
    fn crash_boundary_lookup() {
        let inj = FaultInjector::new(FaultPlan::parse("crash:1@2, panic:0@0").unwrap(), 2);
        assert_eq!(inj.should_crash(1, 2), Some(CrashKind::Error));
        assert_eq!(inj.should_crash(0, 0), Some(CrashKind::Panic));
        assert_eq!(inj.should_crash(1, 1), None);
        assert_eq!(inj.should_crash(0, 1), None);
    }
}
