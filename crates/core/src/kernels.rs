//! The two device kernels: level-0 candidate filtering and the search
//! kernel of Algorithm 1.

use std::ops::Range;

use cuts_gpu_sim::{Device, DeviceError};
use cuts_graph::{Graph, VertexId};
use cuts_trie::{Trie, NO_PARENT};

use crate::intersect::{
    b_intersection, c_intersection, choose, constraint_list, p_intersection, Method,
};
use crate::order::{label_ok, MatchOrder};
use crate::policy::LevelMethod;
use cuts_graph::profile::sig_dominates;

/// Level-0 signature prefilter inputs: the data graph's per-vertex
/// signature index and the (already label-masked) query-root signature
/// every candidate must dominate.
pub struct SigPrefilter<'a> {
    /// `sigs[v]` = packed neighbourhood signature of data vertex `v`
    /// (from [`cuts_graph::DataProfile`]).
    pub sigs: &'a [u64],
    /// Required signature (see `QueryPlan::required_root_signature`).
    pub required: u64,
}

/// Level-0 kernel: scan all data vertices and keep those passing the
/// Definition 5 degree filter for the root query vertex (Algorithm 1,
/// lines 8-11). Appends `(NO_PARENT, v)` entries to the trie.
pub fn init_candidates(
    device: &Device,
    data: &Graph,
    plan: &MatchOrder,
    trie: &Trie,
    max_blocks: usize,
    prefilter: Option<&SigPrefilter<'_>>,
) -> Result<(), DeviceError> {
    let n = data.num_vertices();
    let q_out = plan.q_out[0];
    let q_in = plan.q_in[0];
    let q_label = plan.q_label[0];
    let blocks = max_blocks.min(n).max(1);
    device.launch_named("init_candidates", blocks, |ctx| {
        let mut local: Vec<VertexId> = Vec::new();
        let mut v = ctx.block_id;
        while v < n {
            // GSI-style signature prefilter: one coalesced 64-bit read
            // (two device words) rejects most non-candidates before the
            // CSR degree probes are ever issued.
            let sig_ok = match prefilter {
                Some(f) => {
                    ctx.counters.dram_read_coalesced(2);
                    ctx.counters.alu(1);
                    sig_dominates(f.sigs[v], f.required)
                }
                None => true,
            };
            if sig_ok {
                // Degree test reads two CSR offset words per side.
                ctx.counters.dram_read_coalesced(2);
                ctx.counters.alu(2);
                if data.degree_dominates(v as VertexId, q_out, q_in)
                    && label_ok(data, v as VertexId, q_label)
                {
                    local.push(v as VertexId);
                }
            }
            v += ctx.num_blocks;
        }
        if !local.is_empty() {
            // One atomic claims the block's whole output range.
            ctx.counters.atomic();
            let r = trie.table().reserve(local.len())?;
            for (i, &c) in local.iter().enumerate() {
                r.write(i, NO_PARENT, c);
            }
            ctx.counters.dram_write(2 * local.len());
        }
        Ok(())
    })
}

/// Parameters of one search-kernel launch.
pub struct ExpandParams<'a> {
    /// Data graph.
    pub data: &'a Graph,
    /// Matching plan.
    pub plan: &'a MatchOrder,
    /// Query position being matched (`1 ..= |V_Q| - 1`).
    pub pos: usize,
    /// Virtual warp width.
    pub vwarp: usize,
    /// Plan-time micro-kernel decision for this level.
    pub method: LevelMethod,
    /// Shared-memory words per block (the budget the c/bitmap arms must
    /// fit; per-path choice consults it too).
    pub shared_words: usize,
    /// Optional randomised placement: a permutation of the frontier's
    /// absolute entry indices (§4.1.2 load-balance randomisation).
    pub placement: Option<&'a [u32]>,
    /// Grid-size cap.
    pub max_blocks: usize,
}

/// The search kernel (Algorithm 1, lines 15-35): extends every partial
/// path in `frontier` by one query vertex, appending surviving children to
/// the trie. Fails with [`DeviceError::BufferOverflow`] when the trie
/// fills; the caller rolls back and switches to chunked processing.
pub fn expand_range(
    device: &Device,
    trie: &Trie,
    frontier: Range<usize>,
    p: &ExpandParams<'_>,
) -> Result<(), DeviceError> {
    debug_assert!(p.pos >= 1 && p.pos < p.plan.len());
    let back = &p.plan.back_edges[p.pos];
    debug_assert!(!back.is_empty(), "connected order guarantees a constraint");
    let q_out = p.plan.q_out[p.pos];
    let q_in = p.plan.q_in[p.pos];
    let q_label = p.plan.q_label[p.pos];
    let total = frontier.len();
    let blocks = p.max_blocks.min(total).max(1);

    device.launch_named(p.method.kernel_name(), blocks, |ctx| {
        // Workhorse scratch, reused across this block's paths.
        let mut path: Vec<VertexId> = Vec::with_capacity(p.pos);
        let mut lists: Vec<&[VertexId]> = Vec::with_capacity(back.len());
        let mut cands: Vec<VertexId> = Vec::new();
        let mut keep: Vec<VertexId> = Vec::new();

        let mut i = ctx.block_id;
        while i < total {
            let entry = match p.placement {
                Some(perm) => perm[i] as usize,
                None => frontier.start + i,
            };

            // Walk the parent chain once, caching the path in shared
            // memory (two random words per ancestor: PA + CA).
            path.clear();
            let mut e = entry as u32;
            for _ in 0..p.pos {
                ctx.counters.dram_read_random(2);
                path.push(trie.candidate(e as usize));
                e = trie.parent(e as usize);
            }
            path.reverse(); // path[l] = data vertex matched at depth l
            debug_assert_eq!(e, NO_PARENT);
            ctx.counters.shmem_write(p.pos);

            // Resolve constraint adjacency lists; smallest first keeps the
            // running buffer minimal for either micro-kernel.
            lists.clear();
            for be in back {
                lists.push(constraint_list(p.data, path[be.pos], be.dir));
            }
            lists.sort_unstable_by_key(|l| l.len());
            ctx.counters.alu(back.len());

            let method = match p.method {
                LevelMethod::Fixed(m) => m,
                LevelMethod::PerPath => choose(&lists, p.shared_words),
            };
            match method {
                Method::C => c_intersection(&lists, p.vwarp, &mut ctx.counters, &mut cands),
                Method::P => p_intersection(&lists, p.vwarp, &mut ctx.counters, &mut cands),
                Method::B => b_intersection(
                    &lists,
                    p.vwarp,
                    p.shared_words,
                    &mut ctx.counters,
                    &mut cands,
                ),
            }

            // Degree filter + injectivity against the cached path.
            keep.clear();
            for &c in &cands {
                ctx.counters.dram_read_coalesced(2);
                ctx.counters.alu(2);
                if !p.data.degree_dominates(c, q_out, q_in) {
                    continue;
                }
                if q_label.is_some() {
                    ctx.counters.dram_read_random(1);
                    if !label_ok(p.data, c, q_label) {
                        continue;
                    }
                }
                ctx.counters.shmem_read(p.pos);
                if path.contains(&c) {
                    continue;
                }
                keep.push(c);
            }

            if !keep.is_empty() {
                // One atomic finds the write location for this path's
                // children (§4.1.1).
                ctx.counters.atomic();
                let r = trie.table().reserve(keep.len())?;
                for (k, &c) in keep.iter().enumerate() {
                    r.write(k, entry as u32, c);
                }
                ctx.counters.dram_write(2 * keep.len());
            }

            i += ctx.num_blocks;
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VirtualWarpPolicy;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{chain, clique, mesh2d};

    fn setup(_data: &Graph, query: &Graph) -> (Device, MatchOrder) {
        let device = Device::new(DeviceConfig::test_small());
        let plan = MatchOrder::compute(query).unwrap();
        (device, plan)
    }

    #[test]
    fn init_candidates_mesh_chain() {
        // Figure 2: chain query on 4x4 mesh — every mesh vertex has degree
        // >= 1 (chain root is an interior vertex with degree 2); mesh has
        // 4 corner vertices of degree 2 and others >= 2, so all 16 pass.
        let data = mesh2d(4, 4);
        let query = chain(4);
        let (device, plan) = setup(&data, &query);
        let mut trie = Trie::on_device(&device, 4096).unwrap();
        init_candidates(&device, &data, &plan, &trie, 8, None).unwrap();
        let lvl = trie.seal_level();
        assert_eq!(lvl.len(), 16);
        let c = device.counters();
        assert!(c.dram_reads >= 32); // 2 words per vertex
        assert!(c.atomics >= 1);
    }

    #[test]
    fn expand_counts_figure2() {
        // Figure 2(C): 16 candidates at depth 1, 48 at depth 2 (one per
        // arc), 96 at depth 3, 192 at depth 4 — for the chain query with
        // injectivity *not* pruning on a mesh of this size? The paper's
        // counts allow revisits only forbidden for repeated vertices; our
        // injective counts at depth 3 exclude going back, giving 96 - 16
        // ... measured against the reference matcher in engine tests. Here
        // we check depth 2 = 48 exactly (no pruning possible yet).
        let data = mesh2d(4, 4);
        let query = chain(4);
        let (device, plan) = setup(&data, &query);
        let mut trie = Trie::on_device(&device, 8192).unwrap();
        init_candidates(&device, &data, &plan, &trie, 8, None).unwrap();
        let lvl0 = trie.seal_level();
        let params = ExpandParams {
            data: &data,
            plan: &plan,
            pos: 1,
            vwarp: VirtualWarpPolicy::AvgDegree.width(data.avg_out_degree()),
            method: LevelMethod::PerPath,
            shared_words: 4096,
            placement: None,
            max_blocks: 8,
        };
        expand_range(&device, &trie, lvl0, &params).unwrap();
        let lvl1 = trie.seal_level();
        assert_eq!(lvl1.len(), 48);
    }

    #[test]
    fn expand_triangle_on_clique() {
        // Triangles in K4: 4·3·2 = 24 ordered embeddings.
        let data = clique(4);
        let query = clique(3);
        let (device, plan) = setup(&data, &query);
        let mut trie = Trie::on_device(&device, 8192).unwrap();
        init_candidates(&device, &data, &plan, &trie, 4, None).unwrap();
        let mut frontier = trie.seal_level();
        for pos in 1..3 {
            let params = ExpandParams {
                data: &data,
                plan: &plan,
                pos,
                vwarp: 4,
                method: LevelMethod::Fixed(Method::C),
                shared_words: 4096,
                placement: None,
                max_blocks: 4,
            };
            expand_range(&device, &trie, frontier, &params).unwrap();
            frontier = trie.seal_level();
        }
        assert_eq!(frontier.len(), 24);
    }

    #[test]
    fn overflow_surfaces() {
        let data = clique(8);
        let query = clique(3);
        let (device, plan) = setup(&data, &query);
        let mut trie = Trie::on_device(&device, 16).unwrap(); // tiny
        init_candidates(&device, &data, &plan, &trie, 4, None).unwrap();
        let lvl0 = trie.seal_level();
        assert_eq!(lvl0.len(), 8);
        let params = ExpandParams {
            data: &data,
            plan: &plan,
            pos: 1,
            vwarp: 8,
            method: LevelMethod::PerPath,
            shared_words: 4096,
            placement: None,
            max_blocks: 2,
        };
        let err = expand_range(&device, &trie, lvl0, &params);
        assert!(matches!(err, Err(DeviceError::BufferOverflow { .. })));
    }

    #[test]
    fn placement_permutation_equivalent() {
        let data = mesh2d(3, 3);
        let query = chain(3);
        let (device, plan) = setup(&data, &query);
        let run = |placement: Option<Vec<u32>>| -> usize {
            let mut trie = Trie::on_device(&device, 4096).unwrap();
            init_candidates(&device, &data, &plan, &trie, 4, None).unwrap();
            let lvl0 = trie.seal_level();
            let perm = placement;
            let params = ExpandParams {
                data: &data,
                plan: &plan,
                pos: 1,
                vwarp: 4,
                method: LevelMethod::PerPath,
                shared_words: 4096,
                placement: perm.as_deref(),
                max_blocks: 4,
            };
            expand_range(&device, &trie, lvl0, &params).unwrap();
            trie.seal_level().len()
        };
        let straight = run(None);
        let shuffled: Vec<u32> = (0..9u32).rev().collect();
        let permuted = run(Some(shuffled));
        assert_eq!(straight, permuted);
    }

    #[test]
    fn signature_prefilter_prunes_without_losing_candidates() {
        use cuts_graph::generators::star;
        // K3's root needs two neighbours of degree ≥ 2. No star vertex
        // has that (spokes see one hub; the hub sees only degree-1
        // spokes), so the prefilter empties level 0 — and the degree
        // test alone would have kept the hub only to kill it later.
        let data = star(8);
        let query = clique(3);
        let (device, plan) = setup(&data, &query);
        let profile = data.profile();
        let dplan = crate::plan::QueryPlan::build(
            &query,
            &crate::config::EngineConfig::default(),
            &crate::plan::DeviceClass::of(&DeviceConfig::test_small()),
        )
        .unwrap();
        let pre = SigPrefilter {
            sigs: &profile.signatures,
            required: dplan.required_root_signature(data.is_labeled()),
        };
        let mut trie = Trie::on_device(&device, 4096).unwrap();
        init_candidates(&device, &data, &plan, &trie, 4, Some(&pre)).unwrap();
        assert_eq!(trie.seal_level().len(), 0);

        // On a graph where K3 does embed, the prefilter must keep every
        // vertex the unfiltered kernel keeps (it can only remove
        // vertices that cannot host the root).
        let data = clique(4);
        let profile = data.profile();
        let pre = SigPrefilter {
            sigs: &profile.signatures,
            required: dplan.required_root_signature(data.is_labeled()),
        };
        let count = |pf: Option<&SigPrefilter<'_>>| {
            let mut trie = Trie::on_device(&device, 4096).unwrap();
            init_candidates(&device, &data, &plan, &trie, 4, pf).unwrap();
            trie.seal_level().len()
        };
        assert_eq!(count(Some(&pre)), count(None));
    }
}
