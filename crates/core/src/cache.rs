//! Keyed LRU cache of built [`QueryPlan`]s.
//!
//! Serving workloads repeat queries: the same pattern arrives against many
//! data graphs (or many chunks of one). Re-deriving the matching order and
//! schedule each time is pure overhead, so the session keeps recently
//! built plans keyed by [`PlanKey`] and reuses them on repeat. Plans are
//! shared via `Arc` — a cached plan can be executing while a newer query
//! evicts it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cuts_graph::Graph;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::plan::{DeviceClass, PlanKey, QueryPlan};

/// Cumulative cache statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a fresh plan.
    pub misses: u64,
    /// Plans evicted to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently resident.
    pub len: usize,
}

impl PlanCacheStats {
    /// Fraction of lookups served from cache.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// An LRU map from [`PlanKey`] to [`QueryPlan`], bounded by entry count.
///
/// Capacity 0 disables caching: every lookup builds (and counts a miss),
/// nothing is retained — useful for ablating the cache's effect.
pub struct PlanCache {
    capacity: usize,
    // Most-recently-used at the back. Linear scans are fine: the cache
    // holds tens of plans, and a plan build dwarfs a scan.
    entries: Mutex<VecDeque<(PlanKey, Arc<QueryPlan>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache retaining at most `capacity` plans.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<QueryPlan>> {
        let mut entries = self.entries.lock().unwrap();
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            let (k, plan) = entries.remove(i).expect("position just found");
            entries.push_back((k, Arc::clone(&plan)));
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(plan)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts a plan under its own key, evicting the least recently used
    /// entry if full. No-op at capacity 0.
    pub fn insert(&self, plan: Arc<QueryPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        if let Some(i) = entries.iter().position(|(k, _)| *k == plan.key) {
            entries.remove(i);
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let key = plan.key;
        entries.push_back((key, plan));
    }

    /// Returns the cached plan for (query, config, class), building and
    /// caching it on a miss.
    pub fn get_or_build(
        &self,
        query: &Graph,
        config: &EngineConfig,
        class: &DeviceClass,
    ) -> Result<Arc<QueryPlan>, EngineError> {
        let key = PlanKey::new(query, config, class);
        if let Some(plan) = self.get(&key) {
            return Ok(plan);
        }
        let plan = Arc::new(QueryPlan::build(query, config, class)?);
        self.insert(Arc::clone(&plan));
        Ok(plan)
    }

    /// The resident plans, least recently used first. This is what a
    /// snapshot persists: every plan the session has built and retained,
    /// ready to seed a future session's cache without a rebuild.
    pub fn plans(&self) -> Vec<Arc<QueryPlan>> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|(_, p)| Arc::clone(p))
            .collect()
    }

    /// Snapshot of the cache statistics.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.entries.lock().unwrap().len(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{chain, clique};

    fn class() -> DeviceClass {
        DeviceClass::of(&DeviceConfig::test_small())
    }

    #[test]
    fn build_once_hit_thereafter() {
        let cache = PlanCache::new(4);
        let cfg = EngineConfig::default();
        let q = clique(3);
        let a = cache.get_or_build(&q, &cfg, &class()).unwrap();
        let b = cache.get_or_build(&q, &cfg, &class()).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the plan");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let cache = PlanCache::new(2);
        let cfg = EngineConfig::default();
        let (c3, c4, p4) = (clique(3), clique(4), chain(4));
        let first = cache.get_or_build(&c3, &cfg, &class()).unwrap();
        cache.get_or_build(&c4, &cfg, &class()).unwrap();
        // Touch c3 so c4 becomes least recent, then insert a third.
        cache.get_or_build(&c3, &cfg, &class()).unwrap();
        cache.get_or_build(&p4, &cfg, &class()).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        // c3 survived (it was refreshed), c4 did not.
        let again = cache.get_or_build(&c3, &cfg, &class()).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let s_before = cache.stats().misses;
        cache.get_or_build(&c4, &cfg, &class()).unwrap();
        assert_eq!(cache.stats().misses, s_before + 1, "c4 was evicted");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        let cfg = EngineConfig::default();
        let q = clique(3);
        cache.get_or_build(&q, &cfg, &class()).unwrap();
        cache.get_or_build(&q, &cfg, &class()).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 2, 0));
    }

    #[test]
    fn build_errors_propagate_and_cache_nothing() {
        let cache = PlanCache::new(4);
        let cfg = EngineConfig::default();
        let disconnected = cuts_graph::Graph::undirected(4, &[(0, 1), (2, 3)]);
        assert!(cache.get_or_build(&disconnected, &cfg, &class()).is_err());
        assert_eq!(cache.stats().len, 0);
    }
}
