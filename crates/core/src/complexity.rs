//! The §5 time-complexity model: closed-form work estimates for the
//! sequential, single-GPU, and multi-GPU settings, parameterised exactly
//! as the paper's Equation 6 and the paragraphs that follow it.
//!
//! The model's inputs are measurable graph quantities — `|V_D|`, the
//! maximum degree `δ`, the per-level survival ratio `σ` — so tests can
//! fit `σ` from a real run's level counts and check that the model
//! brackets the measured work.

/// Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComplexityModel {
    /// Data-graph vertices `|V_D|`.
    pub data_vertices: f64,
    /// Query-graph vertices `|V_Q|`.
    pub query_vertices: usize,
    /// Maximum out-degree of the data graph (the paper's δ).
    pub max_degree: f64,
    /// Ratio of valid paths to total candidate paths per level (σ ≤ 1).
    pub sigma: f64,
}

impl ComplexityModel {
    /// Estimated partial paths at depth `l ≥ 1`:
    /// `|P_l| = |V_D| · σ₀ · (δσ)^{l-1}` with `σ₀` folded into σ.
    pub fn paths_at_depth(&self, l: usize) -> f64 {
        assert!(l >= 1);
        self.data_vertices * self.sigma * (self.max_degree * self.sigma).powi(l as i32 - 1)
    }

    /// Equation 2 anchored at a *measured* `|P_1|` (separating the paper's
    /// σ₀ — the root filter rate — from the per-level σ):
    /// `|P_l| = |P_1| · (δσ)^{l-1}`.
    pub fn paths_at_depth_from(&self, p1: f64, l: usize) -> f64 {
        assert!(l >= 1);
        p1 * (self.max_degree * self.sigma).powi(l as i32 - 1)
    }

    /// Equation 6, summed exactly: sequential work
    /// `O(|V_D|) + O(|P_1|·δ) + Σ_{l=3}^{|V_Q|} O(|P_{l-1}|·(l−1)·δ)`.
    pub fn sequential_work(&self) -> f64 {
        let n = self.query_vertices;
        let mut work = self.data_vertices; // level-0 scan
        if n >= 2 {
            work += self.paths_at_depth(1) * self.max_degree;
        }
        for l in 3..=n {
            work += self.paths_at_depth(l - 1) * (l as f64 - 1.0) * self.max_degree;
        }
        work
    }

    /// The paper's simplified closed form:
    /// `O(|V_D| · |V_Q| · δ^{|V_Q|})` (dominant term, σ ≤ 1 dropped).
    pub fn sequential_work_simplified(&self) -> f64 {
        self.data_vertices
            * self.query_vertices as f64
            * self.max_degree.powi(self.query_vertices as i32)
    }

    /// Single-GPU work: sequential work divided by the SM parallelism
    /// (`p_complexity = s_complexity / n_SMP`), assuming the scheduler
    /// balances thread blocks across SMs.
    pub fn single_gpu_work(&self, num_sms: usize) -> f64 {
        self.sequential_work() / num_sms as f64
    }

    /// Multi-GPU work under the worst-case donation bound the paper
    /// derives: every GPU first does `W_min`, then half of the remaining
    /// spread is recovered: `O(W_min + (W_max − W_min)/2)`.
    pub fn multi_gpu_work_bound(w_min: f64, w_max: f64) -> f64 {
        assert!(w_max >= w_min);
        w_min + (w_max - w_min) / 2.0
    }

    /// Perfectly-balanced multi-GPU work:
    /// `m_complexity = p_complexity / n_GPU`.
    pub fn multi_gpu_work(&self, num_sms: usize, num_gpus: usize) -> f64 {
        self.single_gpu_work(num_sms) / num_gpus as f64
    }

    /// Communication bound: `O(S_max)` words, where `S_max` is the
    /// largest per-node trie (Equation 5's space bound, exact sum).
    pub fn communication_bound(&self) -> f64 {
        let ds = self.max_degree * self.sigma;
        let p1 = self.paths_at_depth(1);
        if (ds - 1.0).abs() < 1e-12 {
            p1 * self.query_vertices as f64
        } else {
            p1 * (ds.powi(self.query_vertices as i32) - 1.0) / (ds - 1.0)
        }
    }

    /// Fits σ from measured per-level path counts (least-squares over the
    /// per-level growth ratios `|P_{l+1}| / (|P_l| · δ)`), the way the
    /// model-validation tests calibrate themselves.
    pub fn fit_sigma(level_counts: &[u64], max_degree: f64) -> f64 {
        let ratios: Vec<f64> = level_counts
            .windows(2)
            .filter(|w| w[0] > 0)
            .map(|w| w[1] as f64 / (w[0] as f64 * max_degree))
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        (ratios.iter().sum::<f64>() / ratios.len() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ComplexityModel {
        ComplexityModel {
            data_vertices: 1000.0,
            query_vertices: 5,
            max_degree: 8.0,
            sigma: 0.5,
        }
    }

    #[test]
    fn paths_growth_geometric() {
        let m = model();
        // |P_1| = 500, growth factor δσ = 4.
        assert!((m.paths_at_depth(1) - 500.0).abs() < 1e-9);
        assert!((m.paths_at_depth(2) - 2000.0).abs() < 1e-9);
        assert!((m.paths_at_depth(4) / m.paths_at_depth(3) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sequential_work_dominated_by_last_level() {
        let m = model();
        let full = m.sequential_work();
        let last = m.paths_at_depth(4) * 4.0 * 8.0;
        assert!(
            last / full > 0.5,
            "deepest level dominates: {last} of {full}"
        );
        // The simplified bound is an over-estimate (σ dropped).
        assert!(m.sequential_work_simplified() >= full);
    }

    #[test]
    fn parallel_scalings_divide() {
        let m = model();
        let seq = m.sequential_work();
        assert!((m.single_gpu_work(84) - seq / 84.0).abs() < 1e-9);
        assert!((m.multi_gpu_work(84, 4) - seq / 336.0).abs() < 1e-9);
    }

    #[test]
    fn donation_bound_between_extremes() {
        let b = ComplexityModel::multi_gpu_work_bound(10.0, 30.0);
        assert!((b - 20.0).abs() < 1e-12);
        assert_eq!(ComplexityModel::multi_gpu_work_bound(5.0, 5.0), 5.0);
    }

    #[test]
    fn fit_sigma_recovers_synthetic() {
        // Counts generated with δ = 10, σ = 0.3.
        let counts = [300u64, 900, 2700, 8100];
        let s = ComplexityModel::fit_sigma(&counts, 10.0);
        assert!((s - 0.3).abs() < 1e-9);
        assert_eq!(ComplexityModel::fit_sigma(&[], 10.0), 1.0);
    }

    #[test]
    fn model_brackets_measured_run() {
        // Calibrate on a real engine run and check the model predicts the
        // work within an order of magnitude.
        use cuts_graph::generators::erdos_renyi;
        let data = erdos_renyi(300, 1800, 5);
        let query = cuts_graph::generators::clique(4);
        let device = cuts_gpu_sim::Device::new(cuts_gpu_sim::DeviceConfig::test_small());
        let r = crate::CutsEngine::new(&device).run(&data, &query).unwrap();
        let delta = data.max_out_degree() as f64;
        let sigma = ComplexityModel::fit_sigma(&r.level_counts, delta);
        let m = ComplexityModel {
            data_vertices: data.num_vertices() as f64,
            query_vertices: 4,
            max_degree: delta,
            sigma,
        };
        // Total generated paths is the natural "work" proxy.
        let measured: f64 = r.level_counts.iter().map(|&c| c as f64).sum();
        let predicted: f64 = (1..=4).map(|l| m.paths_at_depth(l)).sum();
        let ratio = predicted / measured;
        assert!(
            (0.1..10.0).contains(&ratio),
            "model off by more than 10x: {ratio}"
        );
    }

    #[test]
    fn communication_bound_is_space_bound() {
        let m = model();
        // Equation 5's exact geometric sum with p1 = 500, ds = 4, l = 5.
        let expect = 500.0 * (4f64.powi(5) - 1.0) / 3.0;
        assert!((m.communication_bound() - expect).abs() < 1e-6);
    }
}
