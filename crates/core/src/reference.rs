//! Sequential CPU reference matcher (Ullmann-style backtracking).
//!
//! Ground truth for the engine: same semantics — injective mappings, every
//! query edge mapped to a data edge — implemented with none of the machinery
//! under test. Unlike the engine it also handles disconnected queries with
//! *global* injectivity (the paper instead composes components by cross
//! product, which permits overlaps; tests compare like with like).

use cuts_graph::{Graph, VertexId};

/// Counts all embeddings of `query` in `data`.
pub fn count_embeddings(data: &Graph, query: &Graph) -> u64 {
    let mut count = 0u64;
    enumerate_embeddings(data, query, &mut |_| count += 1);
    count
}

/// Enumerates all embeddings; `sink` receives a slice indexed by query
/// vertex id.
pub fn enumerate_embeddings(data: &Graph, query: &Graph, sink: &mut dyn FnMut(&[u32])) {
    let nq = query.num_vertices();
    if nq == 0 {
        return;
    }
    let order = matching_order(query);
    let mut assign = vec![u32::MAX; nq];
    let mut used = vec![false; data.num_vertices()];
    rec(data, query, &order, 0, &mut assign, &mut used, sink);
}

/// Connected-first, max-degree-greedy order (tolerates disconnection).
fn matching_order(query: &Graph) -> Vec<VertexId> {
    let n = query.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        // Prefer unplaced vertices adjacent to the prefix; fall back to the
        // global max degree (starts each component).
        let candidate = (0..n as VertexId)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let connected = query
                    .out_neighbors(v)
                    .iter()
                    .chain(query.in_neighbors(v))
                    .any(|&w| placed[w as usize]);
                (connected, query.out_degree(v), std::cmp::Reverse(v))
            })
            .expect("vertices remain");
        placed[candidate as usize] = true;
        order.push(candidate);
    }
    order
}

fn rec(
    data: &Graph,
    query: &Graph,
    order: &[VertexId],
    pos: usize,
    assign: &mut Vec<u32>,
    used: &mut Vec<bool>,
    sink: &mut dyn FnMut(&[u32]),
) {
    if pos == order.len() {
        sink(assign);
        return;
    }
    let q = order[pos];
    let q_out = query.out_degree(q);
    let q_in = query.in_degree(q);

    // Pick the tightest adjacency constraint among already-matched
    // neighbours; fall back to scanning every data vertex.
    let mut best: Option<&[VertexId]> = None;
    for &w in query.out_neighbors(q) {
        let m = assign[w as usize];
        if m != u32::MAX {
            // Edge (q, w): candidate must point at m, i.e. be an
            // in-neighbour of m.
            let list = data.in_neighbors(m);
            if best.is_none_or(|b| list.len() < b.len()) {
                best = Some(list);
            }
        }
    }
    for &w in query.in_neighbors(q) {
        let m = assign[w as usize];
        if m != u32::MAX {
            let list = data.out_neighbors(m);
            if best.is_none_or(|b| list.len() < b.len()) {
                best = Some(list);
            }
        }
    }

    let try_candidate =
        |c: VertexId, assign: &mut Vec<u32>, used: &mut Vec<bool>, sink: &mut dyn FnMut(&[u32])| {
            if used[c as usize] {
                return;
            }
            if data.out_degree(c) < q_out || data.in_degree(c) < q_in {
                return;
            }
            if !data.label_compatible(c, query, q) {
                return;
            }
            // Every query edge to an already-matched vertex must be present.
            for &w in query.out_neighbors(q) {
                let m = assign[w as usize];
                if m != u32::MAX && !data.has_edge(c, m) {
                    return;
                }
            }
            for &w in query.in_neighbors(q) {
                let m = assign[w as usize];
                if m != u32::MAX && !data.has_edge(m, c) {
                    return;
                }
            }
            assign[q as usize] = c;
            used[c as usize] = true;
            rec(data, query, order, pos + 1, assign, used, sink);
            used[c as usize] = false;
            assign[q as usize] = u32::MAX;
        };

    match best {
        Some(list) => {
            for &c in list {
                try_candidate(c, assign, used, sink);
            }
        }
        None => {
            for c in 0..data.num_vertices() as VertexId {
                try_candidate(c, assign, used, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_graph::canonical::automorphism_count;
    use cuts_graph::generators::{chain, clique, cycle, mesh2d, star};

    #[test]
    fn triangles_in_cliques() {
        // Ordered triangles in K_n: n(n-1)(n-2).
        assert_eq!(count_embeddings(&clique(4), &clique(3)), 24);
        assert_eq!(count_embeddings(&clique(5), &clique(3)), 60);
        // K4 in K5: 5·4·3·2.
        assert_eq!(count_embeddings(&clique(5), &clique(4)), 120);
    }

    #[test]
    fn chains_in_mesh() {
        // Length-1 chains: every arc = 48 in the 4x4 mesh; automorphism
        // factor 2 already included (embeddings are ordered).
        assert_eq!(count_embeddings(&mesh2d(4, 4), &chain(2)), 48);
    }

    #[test]
    fn squares_in_mesh() {
        // 3x3 mesh has 4 unit squares; C4 has 8 automorphisms.
        assert_eq!(automorphism_count(&cycle(4)), 8);
        assert_eq!(count_embeddings(&mesh2d(3, 3), &cycle(4)), 32);
    }

    #[test]
    fn stars_counted() {
        // Star K_{1,3} in star K_{1,4}: hub must map to hub: 4·3·2 = 24
        // leaf arrangements.
        assert_eq!(count_embeddings(&star(5), &star(4)), 24);
    }

    #[test]
    fn disconnected_query_global_injectivity() {
        // Two disjoint edges in K4, injective: 12 choices for the first
        // edge × ordered pairs from remaining 2 vertices (2) = 24.
        let q = Graph::undirected(4, &[(0, 1), (2, 3)]);
        assert_eq!(count_embeddings(&clique(4), &q), 24);
    }

    #[test]
    fn directed_edges_respected() {
        let data = Graph::directed(3, &[(0, 1), (1, 2)]);
        let q = Graph::directed(2, &[(0, 1)]);
        assert_eq!(count_embeddings(&data, &q), 2);
        let q_rev = Graph::directed(2, &[(1, 0)]);
        assert_eq!(count_embeddings(&data, &q_rev), 2);
    }

    #[test]
    fn enumeration_valid() {
        let data = mesh2d(3, 3);
        let q = chain(3);
        let mut n = 0u64;
        enumerate_embeddings(&data, &q, &mut |m| {
            n += 1;
            for (u, v) in q.edges() {
                assert!(data.has_edge(m[u as usize], m[v as usize]));
            }
        });
        assert_eq!(n, count_embeddings(&data, &q));
    }

    #[test]
    fn empty_query_yields_nothing() {
        let data = clique(3);
        let q = Graph::undirected(0, &[]);
        assert_eq!(count_embeddings(&data, &q), 0);
    }
}
