//! The workspace error hierarchy.
//!
//! [`EngineError`] stays the narrow per-run failure type; everything a
//! caller can see across the workspace converges on [`CutsError`], the
//! single `#[non_exhaustive]` top-level error with `From` conversions
//! from every layer (device, engine, wire, distributed runtime,
//! configuration, scheduler, graph parsing). No public API in the
//! workspace returns `String` or `Box<dyn Error>`.

use cuts_gpu_sim::DeviceError;
use cuts_graph::edgelist::ParseError;
use cuts_trie::serial::WireError;

/// Failures of a matching run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Device allocation or capacity failure — the paper's "-" entries.
    Device(DeviceError),
    /// The query has no vertices.
    EmptyQuery,
    /// The query is not (weakly) connected; split into components first
    /// (§4 gives the composition rule, implemented by
    /// [`crate::engine::CutsEngine::run_disconnected`]).
    DisconnectedQuery,
    /// Even a single partial path's expansion cannot fit in the remaining
    /// trie space: the instance is genuinely too large for this device.
    CapacityExhausted {
        /// Query depth reached before giving up.
        depth: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Device(e) => write!(f, "device error: {e}"),
            EngineError::EmptyQuery => write!(f, "query graph has no vertices"),
            EngineError::DisconnectedQuery => {
                write!(f, "query graph is disconnected; split components first")
            }
            EngineError::CapacityExhausted { depth } => {
                write!(
                    f,
                    "trie capacity exhausted at depth {depth} even with chunk size 1"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        EngineError::Device(e)
    }
}

/// A configuration rejected at build time by one of the validating
/// builders ([`crate::EngineConfig::builder`], `DistConfig::builder`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field value is out of its legal range.
    Invalid {
        /// The offending builder field.
        field: &'static str,
        /// Why the value is rejected.
        reason: &'static str,
    },
    /// The trie budget implied by the configuration does not fit the
    /// device's global memory.
    Budget {
        /// Words the configuration would need.
        required_words: usize,
        /// Words the device actually has.
        device_words: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Invalid { field, reason } => {
                write!(f, "invalid config field `{field}`: {reason}")
            }
            ConfigError::Budget {
                required_words,
                device_words,
            } => write!(
                f,
                "config requires {required_words} words but the device has {device_words}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Failures surfaced by the multi-query scheduler ([`crate::sched`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The bounded submission queue is full — backpressure. Retry after
    /// draining some completions.
    Busy {
        /// Configured submission-queue capacity.
        capacity: usize,
    },
    /// The scheduler has stopped accepting jobs (its run scope ended).
    Closed,
    /// A deadline-bounded submission waited its whole budget without the
    /// queue draining (see `SubmitHandle::submit_wait_timeout`). Distinct
    /// from [`SchedError::Busy`] — the caller *did* wait — so load-shed
    /// policies and CLI exit codes can react differently.
    Timeout {
        /// How long the submission waited, in milliseconds.
        waited_millis: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Busy { capacity } => {
                write!(f, "submission queue full (capacity {capacity})")
            }
            SchedError::Closed => write!(f, "scheduler is closed to new jobs"),
            SchedError::Timeout { waited_millis } => {
                write!(
                    f,
                    "submission timed out after {waited_millis} ms of backpressure"
                )
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Failures of the distributed runtime. Defined here (rather than in
/// `cuts-dist`) so the whole hierarchy converges on [`CutsError`]
/// without a dependency cycle; `cuts-dist` re-exports it as its worker
/// error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A rank's local engine failed.
    Engine(EngineError),
    /// A serialized trie payload failed to decode.
    Wire(WireError),
    /// An injected crash fault fired (fault-plan testing).
    InjectedCrash {
        /// The rank that crashed.
        rank: usize,
        /// Chunks the rank completed before crashing.
        after_chunks: usize,
    },
    /// A rank's thread panicked.
    Panicked {
        /// The rank whose worker panicked.
        rank: usize,
    },
    /// A fault-plan spec string failed to parse.
    FaultSpec {
        /// The offending clause, verbatim.
        clause: String,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// A fault-plan clause names a rank outside the run's world size.
    RankOutOfRange {
        /// The out-of-range rank.
        rank: usize,
        /// World size of the run.
        ranks: usize,
    },
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Engine(e) => write!(f, "engine error: {e}"),
            DistError::Wire(e) => write!(f, "wire error: {e}"),
            DistError::InjectedCrash { rank, after_chunks } => {
                write!(
                    f,
                    "injected crash on rank {rank} after {after_chunks} chunks"
                )
            }
            DistError::Panicked { rank } => write!(f, "rank {rank} panicked"),
            DistError::FaultSpec { clause, reason } => {
                write!(f, "bad fault clause `{clause}`: {reason}")
            }
            DistError::RankOutOfRange { rank, ranks } => {
                write!(
                    f,
                    "fault plan names rank {rank}, but the run has {ranks} rank(s)"
                )
            }
        }
    }
}

impl std::error::Error for DistError {}

impl From<EngineError> for DistError {
    fn from(e: EngineError) -> Self {
        DistError::Engine(e)
    }
}

impl From<WireError> for DistError {
    fn from(e: WireError) -> Self {
        DistError::Wire(e)
    }
}

/// Failures of the snapshot container format ([`crate::snapshot`]).
/// Every decoder in that module returns one of these typed variants —
/// corrupt or hostile bytes must never panic or decode silently wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file does not start with the `CUTSNAP\0` magic.
    BadMagic,
    /// The container's format version is newer than this build reads.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The payload ends before its headers say it should.
    Truncated,
    /// The section table's CRC-32 does not match its contents.
    TableChecksum,
    /// One section's CRC-32 does not match its payload.
    SectionChecksum {
        /// Four-byte ASCII tag of the failing section.
        section: [u8; 4],
    },
    /// A required section is absent from the table.
    MissingSection {
        /// Four-byte ASCII tag of the missing section.
        section: [u8; 4],
    },
    /// Section contents are internally inconsistent.
    Corrupt(&'static str),
    /// The snapshot was captured from a different graph state than the
    /// live graph it is being validated against (see
    /// `Snapshot::validate_for`) — its warm artifacts would silently
    /// describe stale data.
    StaleGraph {
        /// Fingerprint of the graph inside the snapshot.
        snapshot: u64,
        /// Fingerprint of the live graph.
        live: u64,
    },
}

/// Renders a section tag for error messages; non-ASCII bytes escaped.
fn tag_display(tag: &[u8; 4]) -> String {
    tag.iter()
        .flat_map(|&b| (b as char).escape_default())
        .collect()
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a cuts snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::TableChecksum => write!(f, "snapshot section table checksum mismatch"),
            SnapshotError::SectionChecksum { section } => {
                write!(
                    f,
                    "snapshot section `{}` checksum mismatch",
                    tag_display(section)
                )
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot section `{}` missing", tag_display(section))
            }
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapshotError::StaleGraph { snapshot, live } => write!(
                f,
                "snapshot is stale: captured from graph {snapshot:#018x}, live graph is {live:#018x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => SnapshotError::Truncated,
            WireError::Corrupt(what) => SnapshotError::Corrupt(what),
        }
    }
}

/// The unified top-level error: every fallible public operation in the
/// workspace converges here via `From`. Marked `#[non_exhaustive]` so
/// new failure classes can be added without a breaking release.
#[derive(Debug)]
#[non_exhaustive]
pub enum CutsError {
    /// A matching run failed.
    Engine(EngineError),
    /// A device operation failed outside an engine run.
    Device(DeviceError),
    /// A serialized payload failed to decode.
    Wire(WireError),
    /// The distributed runtime failed.
    Dist(DistError),
    /// A configuration was rejected at build time.
    Config(ConfigError),
    /// The scheduler rejected or abandoned a job.
    Sched(SchedError),
    /// An edge-list input failed to parse.
    Parse(ParseError),
    /// A snapshot container failed to decode.
    Snapshot(SnapshotError),
    /// A host-side I/O operation failed.
    Io {
        /// The path involved, when known.
        path: String,
        /// The underlying OS error, rendered.
        message: String,
    },
    /// A user-supplied value (CLI flag, manifest field, query spec) is
    /// not acceptable.
    Invalid {
        /// What kind of value was being parsed.
        what: &'static str,
        /// The value as given.
        given: String,
    },
    /// An engine cannot represent the instance at all — e.g. the Gunrock
    /// baseline's base-`|V_D|` path encoding overflowing 64 bits (§3).
    Unsupported {
        /// The mechanism that cannot cope.
        what: &'static str,
        /// Which limit the instance exceeds.
        detail: String,
    },
}

impl std::fmt::Display for CutsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CutsError::Engine(e) => write!(f, "{e}"),
            CutsError::Device(e) => write!(f, "device error: {e}"),
            CutsError::Wire(e) => write!(f, "wire error: {e}"),
            CutsError::Dist(e) => write!(f, "{e}"),
            CutsError::Config(e) => write!(f, "{e}"),
            CutsError::Sched(e) => write!(f, "{e}"),
            CutsError::Parse(e) => write!(f, "{e}"),
            CutsError::Snapshot(e) => write!(f, "{e}"),
            CutsError::Io { path, message } => {
                if path.is_empty() {
                    write!(f, "i/o error: {message}")
                } else {
                    write!(f, "i/o error on {path}: {message}")
                }
            }
            CutsError::Invalid { what, given } => write!(f, "invalid {what}: `{given}`"),
            CutsError::Unsupported { what, detail } => {
                write!(f, "{what} cannot represent this instance: {detail}")
            }
        }
    }
}

impl std::error::Error for CutsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CutsError::Engine(e) => Some(e),
            CutsError::Device(e) => Some(e),
            CutsError::Wire(e) => Some(e),
            CutsError::Dist(e) => Some(e),
            CutsError::Config(e) => Some(e),
            CutsError::Sched(e) => Some(e),
            CutsError::Parse(e) => Some(e),
            CutsError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CutsError {
    fn from(e: EngineError) -> Self {
        CutsError::Engine(e)
    }
}

impl From<DeviceError> for CutsError {
    fn from(e: DeviceError) -> Self {
        CutsError::Device(e)
    }
}

impl From<WireError> for CutsError {
    fn from(e: WireError) -> Self {
        CutsError::Wire(e)
    }
}

impl From<DistError> for CutsError {
    fn from(e: DistError) -> Self {
        CutsError::Dist(e)
    }
}

impl From<ConfigError> for CutsError {
    fn from(e: ConfigError) -> Self {
        CutsError::Config(e)
    }
}

impl From<SchedError> for CutsError {
    fn from(e: SchedError) -> Self {
        CutsError::Sched(e)
    }
}

impl From<ParseError> for CutsError {
    fn from(e: ParseError) -> Self {
        CutsError::Parse(e)
    }
}

impl From<SnapshotError> for CutsError {
    fn from(e: SnapshotError) -> Self {
        CutsError::Snapshot(e)
    }
}

impl From<std::io::Error> for CutsError {
    fn from(e: std::io::Error) -> Self {
        CutsError::Io {
            path: String::new(),
            message: e.to_string(),
        }
    }
}

impl CutsError {
    /// An [`CutsError::Io`] annotated with the path involved.
    pub fn io(path: impl Into<String>, e: std::io::Error) -> Self {
        CutsError::Io {
            path: path.into(),
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuts_error_from_every_layer() {
        let device = DeviceError::OutOfMemory {
            requested: 8,
            available: 0,
        };
        let cases: Vec<CutsError> = vec![
            EngineError::EmptyQuery.into(),
            device.into(),
            WireError::Truncated.into(),
            DistError::Panicked { rank: 2 }.into(),
            ConfigError::Invalid {
                field: "ranks",
                reason: "must be at least 1",
            }
            .into(),
            SchedError::Busy { capacity: 4 }.into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(matches!(
            cases[3],
            CutsError::Dist(DistError::Panicked { rank: 2 })
        ));
        let io = CutsError::io("graph.txt", std::io::Error::other("boom"));
        assert!(io.to_string().contains("graph.txt"));
    }

    #[test]
    fn snapshot_error_display_and_from() {
        let cases = [
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion { found: 9 },
            SnapshotError::Truncated,
            SnapshotError::TableChecksum,
            SnapshotError::SectionChecksum { section: *b"PROF" },
            SnapshotError::MissingSection { section: *b"GRPH" },
            SnapshotError::Corrupt("bad plan"),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
            let top: CutsError = e.clone().into();
            assert!(matches!(top, CutsError::Snapshot(_)));
        }
        assert!(cases[4].to_string().contains("PROF"));
        assert_eq!(
            SnapshotError::from(WireError::Truncated),
            SnapshotError::Truncated
        );
        assert_eq!(
            SnapshotError::from(WireError::Corrupt("x")),
            SnapshotError::Corrupt("x")
        );
    }

    #[test]
    fn dist_error_display_and_from() {
        let e: DistError = EngineError::EmptyQuery.into();
        assert!(e.to_string().contains("engine error"));
        let e: DistError = WireError::Truncated.into();
        assert!(e.to_string().contains("wire error"));
        assert!(DistError::RankOutOfRange { rank: 5, ranks: 2 }
            .to_string()
            .contains("rank 5"));
        assert!(DistError::FaultSpec {
            clause: "bogus".into(),
            reason: "unknown kind",
        }
        .to_string()
        .contains("bogus"));
    }

    #[test]
    fn config_and_sched_display() {
        assert!(ConfigError::Budget {
            required_words: 100,
            device_words: 10,
        }
        .to_string()
        .contains("100"));
        assert!(SchedError::Busy { capacity: 7 }.to_string().contains("7"));
        assert!(SchedError::Closed.to_string().contains("closed"));
    }

    #[test]
    fn display_and_from() {
        let e: EngineError = DeviceError::OutOfMemory {
            requested: 1,
            available: 0,
        }
        .into();
        assert!(e.to_string().contains("device error"));
        assert!(EngineError::CapacityExhausted { depth: 3 }
            .to_string()
            .contains("depth 3"));
    }
}
