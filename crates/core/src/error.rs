//! Engine errors.

use cuts_gpu_sim::DeviceError;

/// Failures of a matching run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Device allocation or capacity failure — the paper's "-" entries.
    Device(DeviceError),
    /// The query has no vertices.
    EmptyQuery,
    /// The query is not (weakly) connected; split into components first
    /// (§4 gives the composition rule, implemented by
    /// [`crate::engine::CutsEngine::run_disconnected`]).
    DisconnectedQuery,
    /// Even a single partial path's expansion cannot fit in the remaining
    /// trie space: the instance is genuinely too large for this device.
    CapacityExhausted {
        /// Query depth reached before giving up.
        depth: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Device(e) => write!(f, "device error: {e}"),
            EngineError::EmptyQuery => write!(f, "query graph has no vertices"),
            EngineError::DisconnectedQuery => {
                write!(f, "query graph is disconnected; split components first")
            }
            EngineError::CapacityExhausted { depth } => {
                write!(
                    f,
                    "trie capacity exhausted at depth {depth} even with chunk size 1"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        EngineError::Device(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: EngineError = DeviceError::OutOfMemory {
            requested: 1,
            available: 0,
        }
        .into();
        assert!(e.to_string().contains("device error"));
        assert!(EngineError::CapacityExhausted { depth: 3 }
            .to_string()
            .contains("depth 3"));
    }
}
