//! The cuTS engine facade: the original one-shot API, now a thin shim
//! over the plan/execute split.
//!
//! [`CutsEngine`] owns a private [`ExecSession`], so code written against
//! the old API transparently gains arena-backed trie reuse and plan caching across
//! repeated calls on the same engine value. New code that wants explicit
//! control over plan reuse, batching, or session statistics should use
//! [`ExecSession`] directly.

use cuts_gpu_sim::Device;
use cuts_graph::Graph;

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::result::MatchResult;
use crate::session::ExecSession;

pub use crate::session::MatchSink;

/// Subgraph-isomorphism engine bound to a simulated device.
///
/// ```
/// use cuts_core::CutsEngine;
/// use cuts_gpu_sim::{Device, DeviceConfig};
/// use cuts_graph::generators::{clique, mesh2d};
///
/// let device = Device::new(DeviceConfig::test_small());
/// let engine = CutsEngine::new(&device);
/// // Triangles in K4: 4 x 3 x 2 ordered embeddings.
/// let r = engine.run(&clique(4), &clique(3)).unwrap();
/// assert_eq!(r.num_matches, 24);
/// assert_eq!(r.level_counts, vec![4, 12, 24]);
/// ```
pub struct CutsEngine<'d> {
    session: ExecSession<'d>,
}

impl<'d> CutsEngine<'d> {
    /// Engine with default configuration.
    pub fn new(device: &'d Device) -> Self {
        Self::with_config(device, EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(device: &'d Device, config: EngineConfig) -> Self {
        CutsEngine {
            session: ExecSession::new(device, config),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        self.session.config()
    }

    /// The device this engine runs on.
    pub fn device(&self) -> &'d Device {
        self.session.device()
    }

    /// The execution session backing this engine.
    pub fn session(&self) -> &ExecSession<'d> {
        &self.session
    }

    /// Consumes the engine, yielding its session.
    pub fn into_session(self) -> ExecSession<'d> {
        self.session
    }

    /// Counts all embeddings of `query` in `data`. The query must be
    /// (weakly) connected — see [`CutsEngine::run_disconnected`] otherwise.
    pub fn run(&self, data: &Graph, query: &Graph) -> Result<MatchResult, EngineError> {
        self.session.run(data, query)
    }

    /// Like [`CutsEngine::run`], additionally streaming every embedding to
    /// `sink` (no materialisation of the full result set).
    pub fn run_enumerate(
        &self,
        data: &Graph,
        query: &Graph,
        sink: MatchSink<'_>,
    ) -> Result<MatchResult, EngineError> {
        self.session.run_enumerate(data, query, sink)
    }

    /// Resumes matching from already-built partial paths: the receiving
    /// side of a §4.2 work donation. See [`ExecSession::run_seeded`].
    pub fn run_seeded(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        self.session.run_seeded(data, query, seed)
    }

    /// Former name of [`CutsEngine::run_seeded`].
    ///
    /// Callers that deny deprecations fail to compile against it:
    ///
    /// ```compile_fail
    /// #![deny(deprecated)]
    /// use cuts_core::CutsEngine;
    /// use cuts_gpu_sim::{Device, DeviceConfig};
    /// use cuts_graph::generators::clique;
    /// use cuts_trie::HostTrie;
    ///
    /// let device = Device::new(DeviceConfig::test_small());
    /// let engine = CutsEngine::new(&device);
    /// let seed = HostTrie::from_flat_paths(&[vec![0]]);
    /// let _ = engine.run_from_trie(&clique(4), &clique(3), &seed);
    /// ```
    #[deprecated(since = "0.5.0", note = "renamed to `run_seeded`")]
    pub fn run_from_trie(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<MatchResult, EngineError> {
        self.session.run_seeded(data, query, seed)
    }

    /// §4 composition for disconnected query graphs. See
    /// [`ExecSession::run_disconnected`] for the aggregate's shape.
    pub fn run_disconnected(
        &self,
        data: &Graph,
        query: &Graph,
    ) -> Result<MatchResult, EngineError> {
        self.session.run_disconnected(data, query)
    }

    /// Expands seeded partial paths by exactly one level. See
    /// [`ExecSession::expand_seed_once`].
    pub fn expand_seed_once(
        &self,
        data: &Graph,
        query: &Graph,
        seed: &cuts_trie::HostTrie,
    ) -> Result<cuts_trie::HostTrie, EngineError> {
        self.session.expand_seed_once(data, query, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IntersectStrategy;
    use crate::reference;
    use cuts_gpu_sim::DeviceConfig;
    use cuts_graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d, star};

    fn check_against_reference(data: &Graph, query: &Graph) {
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let got = engine.run(data, query).unwrap();
        let want = reference::count_embeddings(data, query);
        assert_eq!(got.num_matches, want, "engine vs reference");
    }

    #[test]
    fn triangles_in_k4() {
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let r = engine.run(&clique(4), &clique(3)).unwrap();
        assert_eq!(r.num_matches, 24);
        assert!(!r.used_chunking);
        assert_eq!(r.level_counts, vec![4, 12, 24]);
    }

    #[test]
    fn matches_reference_on_varied_pairs() {
        let mesh = mesh2d(4, 4);
        let er = erdos_renyi(40, 120, 3);
        for query in [chain(3), chain(4), clique(3), clique(4), cycle(4), star(4)] {
            check_against_reference(&mesh, &query);
            check_against_reference(&er, &query);
        }
    }

    #[test]
    fn strategies_agree() {
        let data = erdos_renyi(60, 240, 9);
        let query = cycle(4);
        let device = Device::new(DeviceConfig::test_small());
        let mut counts = Vec::new();
        for s in [
            IntersectStrategy::Auto,
            IntersectStrategy::Bitmap,
            IntersectStrategy::CIntersection,
            IntersectStrategy::PIntersection,
        ] {
            let engine =
                CutsEngine::with_config(&device, EngineConfig::default().with_intersect(s));
            counts.push(engine.run(&data, &query).unwrap().num_matches);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
    }

    #[test]
    fn chunking_triggered_and_correct() {
        // Tiny trie forces the hybrid path; count must be unchanged.
        let data = erdos_renyi(50, 250, 5);
        let query = chain(4);
        let big = Device::new(DeviceConfig::test_small());
        let expect = CutsEngine::new(&big).run(&data, &query).unwrap();
        assert!(!expect.used_chunking);

        let small = Device::new(DeviceConfig::test_small().with_global_mem_words(2048));
        let engine = CutsEngine::with_config(
            &small,
            EngineConfig::default()
                .with_chunk_size(8)
                .with_trie_fraction(0.9),
        );
        let got = engine.run(&data, &query).unwrap();
        assert!(got.used_chunking, "expected hybrid fallback");
        assert_eq!(got.num_matches, expect.num_matches);
        assert_eq!(got.level_counts, expect.level_counts);
    }

    #[test]
    fn enumeration_yields_valid_embeddings() {
        let data = mesh2d(3, 3);
        let query = cycle(4);
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let mut seen = Vec::new();
        let r = engine
            .run_enumerate(&data, &query, &mut |m| seen.push(m.to_vec()))
            .unwrap();
        assert_eq!(seen.len() as u64, r.num_matches);
        for m in &seen {
            // Injective.
            let mut s = m.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), m.len());
            // Edge-preserving.
            for (u, v) in query.edges() {
                assert!(data.has_edge(m[u as usize], m[v as usize]));
            }
        }
        // 4-cycles in a 3x3 mesh: 4 squares × 8 automorphic orderings.
        assert_eq!(r.num_matches, 32);
    }

    #[test]
    fn enumeration_consistent_under_chunking() {
        let data = erdos_renyi(40, 160, 11);
        let query = chain(4);
        let big = Device::new(DeviceConfig::test_small());
        let mut a = Vec::new();
        CutsEngine::new(&big)
            .run_enumerate(&data, &query, &mut |m| a.push(m.to_vec()))
            .unwrap();
        let small = Device::new(DeviceConfig::test_small().with_global_mem_words(2048));
        let mut b = Vec::new();
        CutsEngine::with_config(&small, EngineConfig::default().with_chunk_size(4))
            .run_enumerate(&data, &query, &mut |m| b.push(m.to_vec()))
            .unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn no_match_is_zero() {
        // K5 cannot embed in a mesh (max degree 4 < 4 required... actually
        // K5 needs degree 4; mesh interior has 4). Use K6: needs degree 5.
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let r = engine.run(&mesh2d(4, 4), &clique(6)).unwrap();
        assert_eq!(r.num_matches, 0);
    }

    #[test]
    fn single_vertex_query() {
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let g = Graph::undirected(5, &[(0, 1), (1, 2)]);
        let q = Graph::undirected(1, &[]);
        // Every vertex matches a degree-0 query vertex.
        let r = engine.run(&g, &q).unwrap();
        assert_eq!(r.num_matches, 5);
    }

    #[test]
    fn disconnected_query_composition() {
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let data = clique(4);
        // Two disjoint edges as query: each edge has 12 embeddings in K4;
        // paper semantics: cross product = 144.
        let q = Graph::undirected(4, &[(0, 1), (2, 3)]);
        let r = engine.run_disconnected(&data, &q).unwrap();
        assert_eq!(r.num_matches, 144);
        assert_eq!(r.level_counts.len(), 4);
        // Connected query passes straight through.
        let c = engine.run_disconnected(&data, &clique(3)).unwrap();
        assert_eq!(c.num_matches, 24);
    }

    #[test]
    fn randomization_does_not_change_counts() {
        let data = erdos_renyi(50, 200, 21);
        let query = clique(3);
        let device = Device::new(DeviceConfig::test_small());
        let on = CutsEngine::with_config(
            &device,
            EngineConfig::default().with_randomize_placement(true),
        )
        .run(&data, &query)
        .unwrap();
        let off = CutsEngine::with_config(
            &device,
            EngineConfig::default().with_randomize_placement(false),
        )
        .run(&data, &query)
        .unwrap();
        assert_eq!(on.num_matches, off.num_matches);
    }

    #[test]
    fn capacity_exhausted_when_hopeless() {
        // Device so small even chunk size 1 cannot expand.
        let device = Device::new(DeviceConfig::test_small().with_global_mem_words(40));
        let engine = CutsEngine::new(&device);
        let data = clique(8);
        let err = engine.run(&data, &clique(4));
        match err {
            Err(EngineError::CapacityExhausted { .. }) | Err(EngineError::Device(_)) => {}
            other => panic!("expected capacity failure, got {other:?}"),
        }
    }

    #[test]
    fn seeded_runs_partition_the_count() {
        // Splitting the root-candidate set across seeded runs must
        // partition the total count (the §4.2 distribution invariant).
        let data = erdos_renyi(40, 160, 2);
        let query = clique(3);
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let full = engine.run(&data, &query).unwrap();

        let plan = crate::order::MatchOrder::compute(&query).unwrap();
        let roots: Vec<Vec<u32>> = (0..data.num_vertices() as u32)
            .filter(|&v| data.degree_dominates(v, plan.q_out[0], plan.q_in[0]))
            .map(|v| vec![v])
            .collect();
        assert_eq!(roots.len() as u64, full.level_counts[0]);
        let mid = roots.len() / 2;
        let a = cuts_trie::HostTrie::from_flat_paths(&roots[..mid]);
        let b = cuts_trie::HostTrie::from_flat_paths(&roots[mid..]);
        let ca = engine.run_seeded(&data, &query, &a).unwrap();
        let cb = engine.run_seeded(&data, &query, &b).unwrap();
        assert_eq!(ca.num_matches + cb.num_matches, full.num_matches);
    }

    #[test]
    fn seeded_run_with_deeper_paths() {
        // Seed with depth-2 partial paths extracted from a real run and
        // re-rooted; completion count must match.
        let data = mesh2d(3, 3);
        let query = chain(4);
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let full = engine.run(&data, &query).unwrap();
        // Rebuild depth-2 frontier on the host via a fresh partial "run":
        // simplest faithful source is the reference of all depth-2 paths,
        // i.e. (root candidate, extension) pairs the engine itself found.
        // Use a 2-vertex prefix query matching the first two order slots.
        let plan = crate::order::MatchOrder::compute(&query).unwrap();
        let mut prefix_paths = Vec::new();
        for v in 0..data.num_vertices() as u32 {
            if !data.degree_dominates(v, plan.q_out[0], plan.q_in[0]) {
                continue;
            }
            for &w in data.out_neighbors(v) {
                if data.degree_dominates(w, plan.q_out[1], plan.q_in[1]) && w != v {
                    prefix_paths.push(vec![v, w]);
                }
            }
        }
        let seed = cuts_trie::HostTrie::from_flat_paths(&prefix_paths);
        let seeded = engine.run_seeded(&data, &query, &seed).unwrap();
        assert_eq!(seeded.num_matches, full.num_matches);
        assert_eq!(seeded.level_counts, full.level_counts);
    }

    #[test]
    fn expand_seed_once_matches_full_run_levels() {
        let data = erdos_renyi(40, 160, 2);
        let query = clique(3);
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        let full = engine.run(&data, &query).unwrap();
        // Seed with all roots, expand once: level-2 count must match.
        let plan = crate::order::MatchOrder::compute(&query).unwrap();
        let roots: Vec<Vec<u32>> = (0..data.num_vertices() as u32)
            .filter(|&v| data.degree_dominates(v, plan.q_out[0], plan.q_in[0]))
            .map(|v| vec![v])
            .collect();
        let seed = cuts_trie::HostTrie::from_flat_paths(&roots);
        let expanded = engine.expand_seed_once(&data, &query, &seed).unwrap();
        assert_eq!(expanded.levels.len(), 2);
        assert_eq!(
            expanded.levels[1].len() as u64,
            full.level_counts[1],
            "one-level expansion disagrees with the full run"
        );
        // Completing the expanded seed reproduces the full count.
        let done = engine.run_seeded(&data, &query, &expanded).unwrap();
        assert_eq!(done.num_matches, full.num_matches);
    }

    #[test]
    fn directed_semantics() {
        // Directed triangle query in a directed 6-cycle: none.
        let data = Graph::directed(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tri = Graph::directed(3, &[(0, 1), (1, 2), (2, 0)]);
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        assert_eq!(engine.run(&data, &tri).unwrap().num_matches, 0);
        // Directed 3-cycle data: 3 rotations match.
        let d3 = Graph::directed(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(engine.run(&d3, &tri).unwrap().num_matches, 3);
    }

    #[test]
    fn shim_shares_one_session() {
        // Repeated calls through the old API reuse the backing session's
        // arena slabs and cached plan.
        let device = Device::new(DeviceConfig::test_small());
        let engine = CutsEngine::new(&device);
        engine.run(&clique(4), &clique(3)).unwrap();
        let allocs = device.alloc_calls();
        engine.run(&clique(4), &clique(3)).unwrap();
        assert_eq!(device.alloc_calls(), allocs);
        assert_eq!(engine.session().stats().plans.hits, 1);
    }
}
