//! Multi-query throughput scheduler with memory-aware admission.
//!
//! Every earlier layer of this workspace executes *one* query at a time;
//! a serving system has to multiplex a stream of (data graph, query)
//! jobs over the simulated devices. [`Scheduler`] is that layer:
//!
//! * **Worker lanes with stealing.** Each device runs `lanes` worker
//!   threads over one shared [`ExecSession`] (plan cache and trie arena
//!   amortise across the whole stream). Each lane owns a deque; an
//!   idle lane steals from the back of its longest sibling deque.
//! * **Memory-aware admission.** A job is dispatched to a device only
//!   when its §5 space estimate ([`QueryPlan::space_estimate`], the
//!   paper's `budget_check`) fits the device's remaining trie-memory
//!   budget under a reservation ledger. Reservations are accounted in
//!   the session arena's **slab-class units** (whole PA/CA segments), so
//!   the ledger's arithmetic matches exactly what the arena can grant: a
//!   no-fit is deterministic, never a surprise device OOM. Oversized
//!   jobs are *deferred* with exponential backoff — they wait for the
//!   device to drain and then run alone against the full budget; they
//!   never fail admission.
//! * **Priorities, deadlines, aging.** Dispatch order is by score:
//!   static priority, plus waited-time over the aging constant (so
//!   starvation is bounded — any job's score eventually dominates), plus
//!   an urgency boost as a deadline approaches. A job that has waited
//!   more than four aging periods blocks lower-scored jobs from
//!   bypassing it.
//! * **Backpressure.** The submission queue is bounded;
//!   [`SubmitHandle::submit`] returns the typed
//!   [`SchedError::Busy`] when it is full (use
//!   [`SubmitHandle::submit_wait`] to block instead).
//!
//! Determinism: each job's trie capacity is derived from its *own* space
//! estimate clamped to the device-level budget — never from lane count
//! or arena history — so per-job [`MatchResult`]s are identical whether
//! the stream runs on 1, 2, or 4 lanes, or through
//! [`Scheduler::run_serial`].

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::{generators, Graph};
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, Counter, EventKind, Json, Registry, ToJson, Trace};

use crate::config::EngineConfig;
use crate::error::{ConfigError, CutsError, SchedError};
use crate::plan::QueryPlan;
use crate::result::MatchResult;
use crate::session::{BudgetedRunError, ExecSession, GrantAll, GrowthLedger};

/// Smallest trie capacity (entries) a job is ever given.
pub(crate) const MIN_TRIE_ENTRIES: usize = 256;
/// Defer backoff bounds.
const BACKOFF_FIRST: Duration = Duration::from_micros(500);
const BACKOFF_MAX: Duration = Duration::from_millis(8);
/// A job that has waited this many aging periods blocks bypass.
const AGED_HEAD_FACTOR: u32 = 4;

/// Checked f64 → entries conversion for the §5 admission estimate.
///
/// `estimated_paths`/`estimated_cuts_space` are geometric in `ds^l` and
/// overflow f64 range (→ `inf`) or usize range for deep queries on
/// high-degree graphs. A bare `as usize` cast saturates to `usize::MAX`,
/// and `next_power_of_two` on any value above `1 << 63` panics in debug
/// builds / wraps to 0 in release — so the old code could request a
/// zero-entry or absurdly oversized trie *before* the clamp ran. This
/// routes every non-finite, negative, or over-budget estimate straight
/// to the budget and only rounds genuinely small values up to a power
/// of two.
fn saturating_entries(est: f64, budget: usize) -> usize {
    let budget = budget.max(1);
    if !est.is_finite() || est >= budget as f64 {
        return budget;
    }
    let e = if est < 1.0 { 1 } else { est as usize };
    // e < budget ≤ usize::MAX here, but guard the pow2 overflow edge
    // anyway (budget could itself be usize::MAX).
    if e > (usize::MAX >> 1) + 1 {
        budget
    } else {
        e.next_power_of_two().min(budget)
    }
}

/// Checked f64 milliseconds → u64 microseconds for SLO accounting.
///
/// Wall-clock deltas from `Instant` are finite, but latencies also reach
/// here from derived arithmetic (batch fan-out, re-admission credit)
/// where a poisoned input must not land in a histogram: `max(0.0)`
/// passes `+inf` through and `inf as u64` saturates to `u64::MAX` µs,
/// pinning every quantile of the class at the top bucket for the rest
/// of the run. Non-finite and negative inputs record as zero; genuinely
/// huge finite values still saturate at the cast.
pub(crate) fn saturating_micros(millis: f64) -> u64 {
    let us = millis * 1e3;
    if !us.is_finite() || us < 0.0 {
        return 0;
    }
    us as u64
}

/// The per-job trie capacity (entries) for `plan` over `data`: the §5
/// space estimate, rounded up to a power of two so repeat jobs share
/// chain shapes, clamped into `[MIN, budget]`. Depends only on the job
/// and the device model — never on lane count, rank count, or what ran
/// before — which is what makes scheduler *and* serving-tier results
/// bit-identical to a serial loop. Shared with [`crate::serve`].
pub(crate) fn job_entries_for(plan: &QueryPlan, data: &Graph, sigma: f64) -> usize {
    let est = plan.space_estimate(data, sigma).ceil();
    let budget = plan.trie_entries_budget.max(1);
    saturating_entries(est, budget).clamp(MIN_TRIE_ENTRIES.min(budget), budget)
}

/// One unit of work: match `query` in `data`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Optional display name (reports, traces).
    pub name: Option<String>,
    /// SLO accounting class. Jobs of the same class share one queue-wait
    /// and one exec-time histogram in the run's telemetry [`Registry`];
    /// unset jobs fall back to their display name, then to `"default"`.
    pub class: Option<String>,
    /// The data graph. `Arc` so many jobs can share one graph.
    pub data: Arc<Graph>,
    /// The query graph. Jobs with the same query share a cached plan.
    pub query: Arc<Graph>,
    /// Static priority; higher dispatches first at equal wait time.
    pub priority: i32,
    /// Soft deadline measured from submission. Approaching it boosts the
    /// job's dispatch score; it is never killed for missing it (but the
    /// miss is counted against its class's SLO).
    pub deadline: Option<Duration>,
}

impl Job {
    /// A default-priority job.
    pub fn new(data: Arc<Graph>, query: Arc<Graph>) -> Self {
        Job {
            name: None,
            class: None,
            data,
            query,
            priority: 0,
            deadline: None,
        }
    }

    /// Sets the SLO accounting class.
    pub fn with_class(mut self, class: impl Into<String>) -> Self {
        self.class = Some(class.into());
        self
    }

    /// Sets the static priority.
    pub fn with_priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Sets the soft deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }
}

/// Identifier handed back by submit; indexes the report's outcome list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// What happened to one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's id (also its index in [`SchedReport::outcomes`]).
    pub id: JobId,
    /// Display name, if the job had one.
    pub name: Option<String>,
    /// Device the job ran on.
    pub device: usize,
    /// Lane that executed it (0 when the job failed at planning).
    pub lane: usize,
    /// Milliseconds between submission and execution start.
    pub queue_millis: f64,
    /// Milliseconds spent executing (including pacing sleep).
    pub exec_millis: f64,
    /// Trie entry capacity the job was sized to.
    pub trie_entries: usize,
    /// Whether the job was stolen from another lane's deque.
    pub stolen: bool,
    /// The run result, or the typed failure.
    pub result: Result<MatchResult, CutsError>,
}

/// Aggregate counters for one [`Scheduler::run`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs accepted into the submission queue.
    pub submitted: u64,
    /// Jobs that finished with `Ok`.
    pub completed: u64,
    /// Jobs that finished with `Err`.
    pub failed: u64,
    /// Jobs executed from a stolen deque entry.
    pub stolen: u64,
    /// Dispatch passes that deferred a job for lack of memory.
    pub deferred: u64,
    /// `submit` calls rejected with [`SchedError::Busy`].
    pub busy_rejections: u64,
    /// Plan-cache hits summed over the device sessions.
    pub plan_hits: u64,
    /// Plan-cache misses summed over the device sessions.
    pub plan_misses: u64,
    /// Peak reserved trie words per device (admission watermark).
    pub peak_reserved_words: Vec<usize>,
    /// Per-device trie-memory budget the admission check enforced.
    pub budget_words: Vec<usize>,
}

impl ToJson for SchedStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("submitted", Json::U64(self.submitted)),
            ("completed", Json::U64(self.completed)),
            ("failed", Json::U64(self.failed)),
            ("stolen", Json::U64(self.stolen)),
            ("deferred", Json::U64(self.deferred)),
            ("busy_rejections", Json::U64(self.busy_rejections)),
            ("plan_hits", Json::U64(self.plan_hits)),
            ("plan_misses", Json::U64(self.plan_misses)),
            (
                "peak_reserved_words",
                Json::arr(self.peak_reserved_words.iter().map(|&w| w as u64)),
            ),
            (
                "budget_words",
                Json::arr(self.budget_words.iter().map(|&w| w as u64)),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// SLO accounting.

/// Metric/help strings shared by the recording sites, the Prometheus
/// export, and [`SloReport::from_registry`], so all three read the same
/// histogram families.
const M_QUEUE: (&str, &str) = (
    "cuts_job_queue_us",
    "Queue wait per job class, microseconds",
);
const M_EXEC: (&str, &str) = (
    "cuts_job_exec_us",
    "Execution time per job class, microseconds",
);
const M_COMPLETED: (&str, &str) = ("cuts_jobs_completed_total", "Jobs finished Ok, per class");
const M_FAILED: (&str, &str) = ("cuts_jobs_failed_total", "Jobs finished Err, per class");
const M_DL_HIT: (&str, &str) = (
    "cuts_deadline_hits_total",
    "Jobs whose queue+exec latency met their deadline, per class",
);
const M_DL_MISS: (&str, &str) = (
    "cuts_deadline_misses_total",
    "Jobs whose queue+exec latency missed their deadline, per class",
);

/// One job class's serving-level figures, distilled from the run's
/// telemetry registry. Quantiles are log2-sub-bucket upper bounds
/// (≤ 25% relative error, conservative — never below the true value).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassSlo {
    /// The accounting class (see [`Job::class`]).
    pub class: String,
    /// Jobs of this class that finished `Ok`.
    pub completed: u64,
    /// Jobs of this class that finished `Err`.
    pub failed: u64,
    /// Queue-wait p50/p95/p99, microseconds (0 when nothing recorded).
    pub queue_us: [u64; 3],
    /// Exec-time p50/p95/p99, microseconds (0 when nothing recorded).
    pub exec_us: [u64; 3],
    /// Deadlined jobs that met their deadline (queue + exec within it).
    pub deadline_hits: u64,
    /// Deadlined jobs that blew their deadline.
    pub deadline_misses: u64,
}

impl ToJson for ClassSlo {
    fn to_json(&self) -> Json {
        Json::obj([
            ("class", Json::Str(self.class.clone())),
            ("completed", Json::U64(self.completed)),
            ("failed", Json::U64(self.failed)),
            ("queue_p50_us", Json::U64(self.queue_us[0])),
            ("queue_p95_us", Json::U64(self.queue_us[1])),
            ("queue_p99_us", Json::U64(self.queue_us[2])),
            ("exec_p50_us", Json::U64(self.exec_us[0])),
            ("exec_p95_us", Json::U64(self.exec_us[1])),
            ("exec_p99_us", Json::U64(self.exec_us[2])),
            ("deadline_hits", Json::U64(self.deadline_hits)),
            ("deadline_misses", Json::U64(self.deadline_misses)),
        ])
    }
}

/// Per-class SLO accounting for one run, read out of the same registry
/// histograms the Prometheus export and rolling snapshots serve — the
/// report cannot drift from the monitoring surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloReport {
    /// One entry per class, in first-completion order.
    pub classes: Vec<ClassSlo>,
}

impl SloReport {
    /// Distills the per-class figures for `classes` out of `reg`.
    pub fn from_registry(reg: &Registry, classes: &[String]) -> SloReport {
        let qs = |h: cuts_obs::Hist| {
            let s = h.snapshot();
            [
                s.quantile(0.50).unwrap_or(0),
                s.quantile(0.95).unwrap_or(0),
                s.quantile(0.99).unwrap_or(0),
            ]
        };
        let classes = classes
            .iter()
            .map(|cls| {
                let l = [("class", cls.as_str())];
                ClassSlo {
                    class: cls.clone(),
                    completed: reg.counter(M_COMPLETED.0, &l, M_COMPLETED.1).get(),
                    failed: reg.counter(M_FAILED.0, &l, M_FAILED.1).get(),
                    queue_us: qs(reg.histogram(M_QUEUE.0, &l, M_QUEUE.1)),
                    exec_us: qs(reg.histogram(M_EXEC.0, &l, M_EXEC.1)),
                    deadline_hits: reg.counter(M_DL_HIT.0, &l, M_DL_HIT.1).get(),
                    deadline_misses: reg.counter(M_DL_MISS.0, &l, M_DL_MISS.1).get(),
                }
            })
            .collect();
        SloReport { classes }
    }

    /// The entry for `class`, if any job of that class finished.
    pub fn class(&self, class: &str) -> Option<&ClassSlo> {
        self.classes.iter().find(|c| c.class == class)
    }
}

impl ToJson for SloReport {
    fn to_json(&self) -> Json {
        Json::obj([(
            "classes",
            Json::Arr(self.classes.iter().map(|c| c.to_json()).collect()),
        )])
    }
}

/// Rolling-snapshot callback handed one JSON line per emission (see
/// [`SchedulerBuilder::stats_every`]).
#[derive(Clone)]
pub struct StatsSink(pub Arc<dyn Fn(&str) + Send + Sync>);

impl std::fmt::Debug for StatsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StatsSink(..)")
    }
}

/// Always-on telemetry state for one run: the registry, pre-resolved
/// hot-path counter handles, SLO class tracking, rolling-snapshot
/// emission, and the once-per-run post-mortem latch. Shared between the
/// scheduler and the serving tier ([`crate::serve`]) so both account
/// SLOs into the same histogram families.
pub(crate) struct Telemetry {
    pub(crate) reg: Registry,
    classes: Mutex<Vec<String>>,
    pub(crate) deferrals: Counter,
    pub(crate) growth_denials: Counter,
    pub(crate) steals: Counter,
    stats_every: u64,
    sink: Option<StatsSink>,
    start: Instant,
    dumped: AtomicBool,
    pub(crate) postmortem: Mutex<Option<String>>,
}

impl Telemetry {
    fn new(sched: &Scheduler) -> Self {
        Telemetry::with(sched.telemetry, sched.stats_every, sched.stats_sink.clone())
    }

    /// Builds the run-scoped telemetry state directly from its knobs
    /// (the serving tier has no `Scheduler` to read them from).
    pub(crate) fn with(enabled: bool, stats_every: u64, sink: Option<StatsSink>) -> Self {
        let reg = Registry::with_enabled(enabled);
        Telemetry {
            deferrals: reg.counter(
                "cuts_sched_deferrals_total",
                &[],
                "Dispatch passes that deferred a job for lack of memory",
            ),
            growth_denials: reg.counter(
                "cuts_sched_growth_denials_total",
                &[],
                "In-place trie growths denied by the admission ledger (job rerun larger)",
            ),
            steals: reg.counter(
                "cuts_sched_steals_total",
                &[],
                "Jobs executed from a stolen deque entry",
            ),
            reg,
            classes: Mutex::new(Vec::new()),
            stats_every,
            sink,
            start: Instant::now(),
            dumped: AtomicBool::new(false),
            postmortem: Mutex::new(None),
        }
    }

    /// The SLO class a job's latency is accounted under.
    pub(crate) fn class_of(job: &Job) -> &str {
        job.class
            .as_deref()
            .or(job.name.as_deref())
            .unwrap_or("default")
    }

    /// Records one finished job: latency histograms, outcome and
    /// deadline counters, flight events, and the first-failure dump.
    pub(crate) fn on_finish(&self, class: &str, deadline: Option<Duration>, o: &JobOutcome) {
        {
            let mut cs = self.classes.lock().unwrap();
            if !cs.iter().any(|c| c == class) {
                cs.push(class.to_string());
            }
        }
        let l = [("class", class)];
        let queue_us = saturating_micros(o.queue_millis);
        let exec_us = saturating_micros(o.exec_millis);
        self.reg
            .histogram(M_QUEUE.0, &l, M_QUEUE.1)
            .record(queue_us);
        self.reg.histogram(M_EXEC.0, &l, M_EXEC.1).record(exec_us);
        match &o.result {
            Ok(_) => {
                self.reg.counter(M_COMPLETED.0, &l, M_COMPLETED.1).inc();
                flight::record(FlightCode::JobComplete, o.id.0, exec_us);
            }
            Err(_) => {
                self.reg.counter(M_FAILED.0, &l, M_FAILED.1).inc();
                flight::record(FlightCode::JobFail, o.id.0, o.lane as u64);
                self.dump_once("job_failure");
            }
        }
        if let Some(d) = deadline {
            if o.queue_millis + o.exec_millis <= d.as_secs_f64() * 1e3 {
                self.reg.counter(M_DL_HIT.0, &l, M_DL_HIT.1).inc();
            } else {
                self.reg.counter(M_DL_MISS.0, &l, M_DL_MISS.1).inc();
                flight::record(FlightCode::DeadlineMiss, o.id.0, queue_us + exec_us);
            }
        }
    }

    /// Dumps the flight recorder at most once per run; the path is
    /// surfaced on the report.
    pub(crate) fn dump_once(&self, reason: &str) {
        if self.dumped.swap(true, Ordering::Relaxed) {
            return;
        }
        if let Some(p) = flight::postmortem(reason) {
            *self.postmortem.lock().unwrap() = Some(p.display().to_string());
        }
    }

    pub(crate) fn slo(&self) -> SloReport {
        SloReport::from_registry(&self.reg, &self.classes.lock().unwrap())
    }

    /// One rolling-snapshot JSON line (`finished` = jobs done so far).
    pub(crate) fn snapshot_line(&self, finished: u64) -> String {
        Json::obj([
            ("finished", Json::U64(finished)),
            (
                "wall_millis",
                Json::F64(self.start.elapsed().as_secs_f64() * 1e3),
            ),
            ("deferrals", Json::U64(self.deferrals.get())),
            ("growth_denials", Json::U64(self.growth_denials.get())),
            ("steals", Json::U64(self.steals.get())),
            ("slo", self.slo().to_json()),
        ])
        .render()
    }

    /// Emits a rolling snapshot when `finished` crosses the cadence.
    pub(crate) fn maybe_emit(&self, finished: u64) {
        if self.stats_every == 0 || finished == 0 || !finished.is_multiple_of(self.stats_every) {
            return;
        }
        if let Some(sink) = &self.sink {
            (sink.0)(&self.snapshot_line(finished));
        }
    }
}

/// The result of draining one job stream.
#[derive(Debug)]
pub struct SchedReport {
    /// One outcome per submitted job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Wall-clock duration of the whole run, milliseconds.
    pub wall_millis: f64,
    /// Aggregate counters.
    pub stats: SchedStats,
    /// Per-class SLO accounting (queue/exec quantiles, deadline rates).
    pub slo: SloReport,
    /// The run's always-on metrics registry; feed its snapshot to the
    /// Prometheus exporter. Disabled (empty) when the scheduler was
    /// built with `.telemetry(false)`.
    pub telemetry: Registry,
    /// Path of the flight-recorder post-mortem written when the first
    /// job of this run failed, if any did.
    pub postmortem: Option<String>,
}

impl SchedReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_millis <= 0.0 {
            return 0.0;
        }
        self.stats.completed as f64 / (self.wall_millis / 1e3)
    }

    /// The `p`-th percentile (0–100) of total job latency
    /// (queue + execution), over completed jobs. `None` when nothing
    /// completed.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        let mut lat: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.result.is_ok())
            .map(|o| o.queue_millis + o.exec_millis)
            .collect();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        Some(lat[idx.min(lat.len() - 1)])
    }
}

impl ToJson for SchedReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("wall_millis", Json::F64(self.wall_millis)),
            ("jobs_per_sec", Json::F64(self.jobs_per_sec())),
            (
                "p50_millis",
                self.latency_percentile(50.0).map_or(Json::Null, Json::F64),
            ),
            (
                "p99_millis",
                self.latency_percentile(99.0).map_or(Json::Null, Json::F64),
            ),
            ("stats", self.stats.to_json()),
            ("slo", self.slo.to_json()),
            (
                "postmortem",
                self.postmortem.clone().map_or(Json::Null, Json::Str),
            ),
        ])
    }
}

/// Builder for [`Scheduler`]; validated at [`SchedulerBuilder::build`].
#[derive(Debug, Clone)]
pub struct SchedulerBuilder {
    device_config: DeviceConfig,
    engine: EngineConfig,
    devices: usize,
    lanes: usize,
    queue_capacity: usize,
    aging: Duration,
    sigma: f64,
    pacing: f64,
    admit_window: usize,
    plan_cache: usize,
    warm_plans: Vec<Arc<QueryPlan>>,
    trace: Option<Trace>,
    telemetry: bool,
    stats_every: u64,
    stats_sink: Option<StatsSink>,
}

impl SchedulerBuilder {
    /// The simulated device model every device instance uses.
    pub fn device_config(mut self, c: DeviceConfig) -> Self {
        self.device_config = c;
        self
    }

    /// The engine configuration shared by every session.
    pub fn engine_config(mut self, c: EngineConfig) -> Self {
        self.engine = c;
        self
    }

    /// Number of simulated devices (≥ 1).
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n;
        self
    }

    /// Worker lanes per device (≥ 1).
    pub fn lanes(mut self, n: usize) -> Self {
        self.lanes = n;
        self
    }

    /// Bounded submission-queue capacity (≥ 1); a full queue makes
    /// [`SubmitHandle::submit`] return [`SchedError::Busy`].
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Aging constant: one unit of dispatch score per `aging` waited.
    pub fn aging(mut self, d: Duration) -> Self {
        self.aging = d;
        self
    }

    /// §5 candidate-survival prior σ for space estimates (must be in
    /// `(0, 1]`; the paper uses 0.25 for unlabelled graphs).
    pub fn sigma(mut self, s: f64) -> Self {
        self.sigma = s;
        self
    }

    /// Host pacing factor: after each job, the executing lane sleeps
    /// `sim_millis × pacing` so the host timeline tracks the simulated
    /// device timeline (same convention as the distributed runtime).
    pub fn pacing(mut self, p: f64) -> Self {
        self.pacing = p;
        self
    }

    /// Maximum admitted-but-unfinished jobs per device, as a multiple of
    /// the lane count (default 2: one running + one queued per lane).
    pub fn admit_window(mut self, w: usize) -> Self {
        self.admit_window = w;
        self
    }

    /// Plan-cache capacity per device session.
    pub fn plan_cache(mut self, n: usize) -> Self {
        self.plan_cache = n;
        self
    }

    /// Pre-built plans (typically from a decoded [`crate::Snapshot`])
    /// seeded into every device session's cache before the first job, so
    /// snapshot-covered queries dispatch with zero plan builds. Plans
    /// whose config or device-class fingerprints don't match this
    /// scheduler are skipped. The per-session cache capacity is raised to
    /// hold all of them if needed.
    pub fn warm_plans(mut self, plans: Vec<Arc<QueryPlan>>) -> Self {
        self.warm_plans = plans;
        self
    }

    /// Attaches a trace: devices emit kernel/run spans and the scheduler
    /// emits [`EventKind::Job`] lifecycle events into it.
    pub fn trace(mut self, t: Trace) -> Self {
        self.trace = Some(t);
        self
    }

    /// Always-on serving telemetry switch (default **on**). When off,
    /// every registry handle degenerates to a no-op — the zero-cost
    /// disabled path the `obs` overhead bench pins down — and
    /// [`SchedReport::telemetry`] / [`SchedReport::slo`] come back
    /// empty. The flight recorder is independent of this switch.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Emits a rolling stats-snapshot JSON line to the
    /// [`StatsSink`](SchedulerBuilder::stats_sink) every `n` finished
    /// jobs (0, the default, disables emission). This is what
    /// `cuts serve --stats-every <n>` wires to its `metrics.jsonl`.
    pub fn stats_every(mut self, n: u64) -> Self {
        self.stats_every = n;
        self
    }

    /// The callback receiving rolling-snapshot lines (one JSON object
    /// per call, no trailing newline).
    pub fn stats_sink(mut self, sink: impl Fn(&str) + Send + Sync + 'static) -> Self {
        self.stats_sink = Some(StatsSink(Arc::new(sink)));
        self
    }

    /// Validates and builds the scheduler (devices are created here).
    pub fn build(self) -> Result<Scheduler, ConfigError> {
        if self.devices == 0 {
            return Err(ConfigError::Invalid {
                field: "devices",
                reason: "must be at least 1",
            });
        }
        if self.lanes == 0 {
            return Err(ConfigError::Invalid {
                field: "lanes",
                reason: "must be at least 1",
            });
        }
        if self.queue_capacity == 0 {
            return Err(ConfigError::Invalid {
                field: "queue_capacity",
                reason: "must be at least 1",
            });
        }
        if !(self.sigma > 0.0 && self.sigma <= 1.0) {
            return Err(ConfigError::Invalid {
                field: "sigma",
                reason: "must be in (0, 1]",
            });
        }
        if self.aging.is_zero() {
            return Err(ConfigError::Invalid {
                field: "aging",
                reason: "must be positive",
            });
        }
        if self.admit_window == 0 {
            return Err(ConfigError::Invalid {
                field: "admit_window",
                reason: "must be at least 1",
            });
        }
        // The engine config must survive its own validation, including
        // the trie budget against this device model.
        let engine = {
            let mut b = EngineConfig::builder()
                .chunk_size(self.engine.chunk_size)
                .trie_fraction(self.engine.trie_fraction)
                .intersect(self.engine.intersect)
                .randomize_placement(self.engine.randomize_placement)
                .order_policy(self.engine.order_policy)
                .virtual_warp(self.engine.virtual_warp)
                .max_blocks(self.engine.max_blocks)
                .seed(self.engine.seed);
            b = b.for_device_words(self.device_config.global_mem_words);
            b.build()?
        };
        // Kernel wall-time histograms live for the scheduler's lifetime
        // (devices are shared immutably across runs), while job/SLO
        // accounting gets a fresh registry per run.
        let kernel_reg = Registry::with_enabled(self.telemetry);
        let devices = (0..self.devices)
            .map(|_| {
                let mut d = Device::new(self.device_config.clone());
                if let Some(t) = &self.trace {
                    d.set_trace(t.clone());
                }
                d.set_registry(kernel_reg.clone());
                d
            })
            .collect();
        Ok(Scheduler {
            devices,
            engine,
            lanes: self.lanes,
            queue_capacity: self.queue_capacity,
            aging: self.aging,
            sigma: self.sigma,
            pacing: self.pacing,
            admit_window: self.admit_window,
            plan_cache: self.plan_cache.max(self.warm_plans.len()),
            warm_plans: self.warm_plans,
            trace: self.trace.unwrap_or_else(Trace::disabled),
            telemetry: self.telemetry,
            stats_every: self.stats_every,
            stats_sink: self.stats_sink,
            kernel_reg,
        })
    }
}

/// Throughput-oriented multi-query scheduler over simulated devices.
///
/// ```
/// use std::sync::Arc;
/// use cuts_core::sched::{Job, Scheduler};
/// use cuts_graph::generators::{clique, mesh2d};
///
/// let sched = Scheduler::builder().lanes(2).build().unwrap();
/// let data = Arc::new(mesh2d(4, 4));
/// let query = Arc::new(clique(2));
/// let report = sched
///     .run(|h| {
///         for _ in 0..4 {
///             h.submit_wait(Job::new(data.clone(), query.clone()));
///         }
///         Ok(())
///     })
///     .unwrap();
/// assert_eq!(report.stats.completed, 4);
/// assert!(report.outcomes.iter().all(|o| o.result.is_ok()));
/// ```
pub struct Scheduler {
    devices: Vec<Device>,
    engine: EngineConfig,
    lanes: usize,
    queue_capacity: usize,
    aging: Duration,
    sigma: f64,
    pacing: f64,
    admit_window: usize,
    plan_cache: usize,
    warm_plans: Vec<Arc<QueryPlan>>,
    trace: Trace,
    telemetry: bool,
    stats_every: u64,
    stats_sink: Option<StatsSink>,
    kernel_reg: Registry,
}

impl Scheduler {
    /// The scheduler-lifetime registry devices record per-kernel wall
    /// histograms into (`cuts_kernel_wall_us{kernel=...}`). Separate from
    /// the per-run [`SchedReport::telemetry`] so successive runs on one
    /// scheduler don't cross-pollute their job SLOs, while kernel timing
    /// accumulates for the device's whole life — merge both snapshots
    /// into one Prometheus exposition.
    pub fn kernel_telemetry(&self) -> &Registry {
        &self.kernel_reg
    }
    /// A builder with serving-oriented defaults: one `v100_like` device,
    /// two lanes, queue capacity 64, 5 ms aging, σ = 0.25, no pacing.
    pub fn builder() -> SchedulerBuilder {
        SchedulerBuilder {
            device_config: DeviceConfig::v100_like(),
            engine: EngineConfig::default(),
            devices: 1,
            lanes: 2,
            queue_capacity: 64,
            aging: Duration::from_millis(5),
            sigma: 0.25,
            pacing: 0.0,
            admit_window: 2,
            plan_cache: crate::session::DEFAULT_PLAN_CACHE_CAPACITY,
            warm_plans: Vec::new(),
            trace: None,
            telemetry: true,
            stats_every: 0,
            stats_sink: None,
        }
    }

    /// The simulated devices jobs execute on.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Worker lanes per device.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The per-job trie capacity (entries) for `plan` over `data`: the
    /// §5 space estimate, rounded up to a power of two so repeat jobs
    /// share chain shapes, clamped into `[MIN, budget]`. Depends only on
    /// the job and
    /// the device model — never on lane count or what ran before — which
    /// is what makes scheduler results bit-identical to a serial loop.
    fn job_entries(&self, plan: &QueryPlan, data: &Graph) -> usize {
        job_entries_for(plan, data, self.sigma)
    }

    /// Runs one stream: `submit` receives a handle, submits jobs (and
    /// may interleave its own logic); when it returns, the stream is
    /// closed and `run` blocks until every accepted job completes.
    pub fn run<F>(&self, submit: F) -> Result<SchedReport, CutsError>
    where
        F: FnOnce(&SubmitHandle<'_>) -> Result<(), CutsError>,
    {
        let mut sessions: Vec<ExecSession<'_>> = Vec::with_capacity(self.devices.len());
        for d in &self.devices {
            let s = ExecSession::with_cache_capacity(d, self.engine.clone(), self.plan_cache);
            s.seed_plans(&self.warm_plans);
            // Carve the trie arena up front: admission accounts in its
            // slab units, so the budget must exist before any dispatch.
            s.prepare_trie_arena().map_err(CutsError::from)?;
            sessions.push(s);
        }
        let devs: Vec<DevState<'_>> = sessions
            .iter()
            .map(|session| DevState {
                session,
                budget_words: session.trie_budget_words(),
                reserved: AtomicUsize::new(0),
                peak_reserved: AtomicUsize::new(0),
                inflight: AtomicUsize::new(0),
                queues: Mutex::new((0..self.lanes).map(|_| VecDeque::new()).collect()),
                work: Condvar::new(),
                done: AtomicBool::new(false),
            })
            .collect();
        let shared = Shared {
            sched: self,
            devs,
            pending: Mutex::new(Pending {
                queue: Vec::new(),
                closed: false,
            }),
            space: Condvar::new(),
            tick: Condvar::new(),
            results: Mutex::new(Vec::new()),
            submitted: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            deferred: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            telem: Telemetry::new(self),
        };
        flight::record(
            FlightCode::RunStart,
            self.devices.len() as u64,
            self.lanes as u64,
        );

        let start = Instant::now();
        let submit_result = std::thread::scope(|scope| {
            for dev in &shared.devs {
                for lane in 0..self.lanes {
                    let shared = &shared;
                    scope.spawn(move || lane_loop(shared, dev, lane));
                }
            }
            {
                let shared = &shared;
                scope.spawn(move || dispatcher_loop(shared));
            }
            let handle = SubmitHandle { shared: &shared };
            let r = submit(&handle);
            let mut p = shared.pending.lock().unwrap();
            p.closed = true;
            drop(p);
            shared.tick.notify_all();
            shared.space.notify_all();
            r
            // Scope exit joins the dispatcher and every lane.
        });
        submit_result?;
        let wall_millis = start.elapsed().as_secs_f64() * 1e3;
        flight::record(FlightCode::RunEnd, wall_millis as u64, 0);

        // Final admission-watermark gauges: cheap, and they surface the
        // memory headroom story next to the latency one in Prometheus.
        for (di, d) in shared.devs.iter().enumerate() {
            let ds = di.to_string();
            let l = [("device", ds.as_str())];
            shared
                .telem
                .reg
                .gauge(
                    "cuts_sched_peak_reserved_words",
                    &l,
                    "Peak reserved trie words per device (admission watermark)",
                )
                .set(d.peak_reserved.load(Ordering::Relaxed) as f64);
            shared
                .telem
                .reg
                .gauge(
                    "cuts_sched_budget_words",
                    &l,
                    "Per-device trie-memory budget the admission check enforced",
                )
                .set(d.budget_words as f64);
        }

        let mut slots = shared.results.into_inner().unwrap();
        slots.sort_by_key(|o: &JobOutcome| o.id);
        let completed = slots.iter().filter(|o| o.result.is_ok()).count() as u64;
        let failed = slots.len() as u64 - completed;
        let (mut plan_hits, mut plan_misses) = (0u64, 0u64);
        for s in &sessions {
            let st = s.stats();
            plan_hits += st.plans.hits;
            plan_misses += st.plans.misses;
        }
        let stats = SchedStats {
            submitted: shared.submitted.load(Ordering::Relaxed),
            completed,
            failed,
            stolen: shared.stolen.load(Ordering::Relaxed),
            deferred: shared.deferred.load(Ordering::Relaxed),
            busy_rejections: shared.busy_rejections.load(Ordering::Relaxed),
            plan_hits,
            plan_misses,
            peak_reserved_words: shared
                .devs
                .iter()
                .map(|d| d.peak_reserved.load(Ordering::Relaxed))
                .collect(),
            budget_words: shared.devs.iter().map(|d| d.budget_words).collect(),
        };
        let slo = shared.telem.slo();
        let postmortem = shared.telem.postmortem.lock().unwrap().take();
        Ok(SchedReport {
            outcomes: slots,
            wall_millis,
            stats,
            slo,
            postmortem,
            telemetry: shared.telem.reg.clone(),
        })
    }

    /// The scheduler's semantic baseline: the same jobs, one at a time,
    /// in submission order, on device 0, with identical per-job trie
    /// sizing and pacing. [`Scheduler::run`] must produce byte-identical
    /// [`MatchResult::canonical_bytes`] per job; the throughput ratio
    /// between the two is what the lanes buy.
    pub fn run_serial(&self, jobs: &[Job]) -> Result<SchedReport, CutsError> {
        let session = ExecSession::with_cache_capacity(
            &self.devices[0],
            self.engine.clone(),
            self.plan_cache,
        );
        session.seed_plans(&self.warm_plans);
        session.prepare_trie_arena().map_err(CutsError::from)?;
        let telem = Telemetry::new(self);
        flight::record(FlightCode::RunStart, 1, 1);
        let start = Instant::now();
        let mut outcomes = Vec::with_capacity(jobs.len());
        let (mut completed, mut failed) = (0u64, 0u64);
        for (i, job) in jobs.iter().enumerate() {
            let queued = start.elapsed().as_secs_f64() * 1e3;
            let exec_start = Instant::now();
            let result = session
                .plan_for(&job.query)
                .map_err(CutsError::from)
                .and_then(|plan| {
                    let entries = self.job_entries(&plan, &job.data);
                    let budget = plan.trie_entries_budget.max(1);
                    // The same growth-on-undershoot sequence the lanes
                    // take (in-place chain appends doubling toward the
                    // budget), so trie sizes and results match exactly.
                    match session
                        .run_with_plan_budgeted(&plan, &job.data, entries, budget, &GrantAll)
                    {
                        Ok(ok) => Ok(ok),
                        Err(BudgetedRunError::Engine(e)) => Err(CutsError::from(e)),
                        Err(BudgetedRunError::GrowthDenied { .. }) => {
                            unreachable!("GrantAll never denies growth")
                        }
                    }
                });
            let (result, entries) = match result {
                Ok((r, e)) => {
                    if self.pacing > 0.0 {
                        std::thread::sleep(Duration::from_secs_f64(
                            r.sim_millis * self.pacing / 1e3,
                        ));
                    }
                    completed += 1;
                    (Ok(r), e)
                }
                Err(e) => {
                    failed += 1;
                    (Err(e), 0)
                }
            };
            let outcome = JobOutcome {
                id: JobId(i as u64),
                name: job.name.clone(),
                device: 0,
                lane: 0,
                queue_millis: queued,
                exec_millis: exec_start.elapsed().as_secs_f64() * 1e3,
                trie_entries: entries,
                stolen: false,
                result,
            };
            telem.on_finish(Telemetry::class_of(job), job.deadline, &outcome);
            telem.maybe_emit(i as u64 + 1);
            outcomes.push(outcome);
        }
        let wall_millis = start.elapsed().as_secs_f64() * 1e3;
        flight::record(FlightCode::RunEnd, wall_millis as u64, 0);
        let st = session.stats();
        let slo = telem.slo();
        let postmortem = telem.postmortem.lock().unwrap().take();
        Ok(SchedReport {
            outcomes,
            wall_millis,
            stats: SchedStats {
                submitted: jobs.len() as u64,
                completed,
                failed,
                plan_hits: st.plans.hits,
                plan_misses: st.plans.misses,
                peak_reserved_words: vec![0],
                budget_words: vec![session.trie_budget_words()],
                ..Default::default()
            },
            slo,
            postmortem,
            telemetry: telem.reg,
        })
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("devices", &self.devices.len())
            .field("lanes", &self.lanes)
            .field("queue_capacity", &self.queue_capacity)
            .finish()
    }
}

/// Submission side of a running scheduler, passed to the closure given
/// to [`Scheduler::run`].
pub struct SubmitHandle<'s> {
    shared: &'s Shared<'s>,
}

impl SubmitHandle<'_> {
    /// Submits a job. Returns [`SchedError::Busy`] when the bounded
    /// queue is full — the caller decides whether to retry, drop, or
    /// shed load.
    pub fn submit(&self, job: Job) -> Result<JobId, SchedError> {
        let mut p = self.shared.pending.lock().unwrap();
        if p.closed {
            return Err(SchedError::Closed);
        }
        if p.queue.len() >= self.shared.sched.queue_capacity {
            self.shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(SchedError::Busy {
                capacity: self.shared.sched.queue_capacity,
            });
        }
        Ok(self.shared.enqueue(&mut p, job))
    }

    /// Submits a job, blocking while the queue is full.
    pub fn submit_wait(&self, job: Job) -> JobId {
        let mut p = self.shared.pending.lock().unwrap();
        while p.queue.len() >= self.shared.sched.queue_capacity && !p.closed {
            p = self.shared.space.wait(p).unwrap();
        }
        self.shared.enqueue(&mut p, job)
    }

    /// Submits a job, blocking at most `timeout` for queue space.
    ///
    /// [`SubmitHandle::submit_wait`] can hang its caller forever when
    /// the stream never drains (every lane wedged behind a dead rank, a
    /// pathological job, …); this is the deadline-aware variant. The
    /// typed [`SchedError::Timeout`] is distinct from
    /// [`SchedError::Busy`] so callers — and the CLI's exit codes — can
    /// tell instant backpressure from a submission that waited its full
    /// budget.
    pub fn submit_wait_timeout(&self, job: Job, timeout: Duration) -> Result<JobId, SchedError> {
        let deadline = Instant::now() + timeout;
        let mut p = self.shared.pending.lock().unwrap();
        while p.queue.len() >= self.shared.sched.queue_capacity && !p.closed {
            let now = Instant::now();
            if now >= deadline {
                self.shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                return Err(SchedError::Timeout {
                    waited_millis: timeout.as_millis() as u64,
                });
            }
            p = self.shared.space.wait_timeout(p, deadline - now).unwrap().0;
        }
        if p.closed {
            return Err(SchedError::Closed);
        }
        Ok(self.shared.enqueue(&mut p, job))
    }

    /// Jobs currently waiting for dispatch.
    pub fn pending(&self) -> usize {
        self.shared.pending.lock().unwrap().queue.len()
    }

    /// Jobs admitted to devices and not yet finished.
    pub fn inflight(&self) -> usize {
        self.shared
            .devs
            .iter()
            .map(|d| d.inflight.load(Ordering::Relaxed))
            .sum()
    }
}

// ---------------------------------------------------------------------
// Internal run-time state.

struct PendingJob {
    id: JobId,
    job: Job,
    submitted_at: Instant,
    not_before: Instant,
    defers: u32,
}

struct Pending {
    queue: Vec<PendingJob>,
    closed: bool,
}

struct Task {
    id: JobId,
    job: Job,
    plan: Arc<QueryPlan>,
    entries: usize,
    reserve_words: usize,
    device: usize,
    submitted_at: Instant,
}

struct DevState<'d> {
    session: &'d ExecSession<'d>,
    budget_words: usize,
    reserved: AtomicUsize,
    peak_reserved: AtomicUsize,
    inflight: AtomicUsize,
    queues: Mutex<Vec<VecDeque<Task>>>,
    work: Condvar,
    done: AtomicBool,
}

impl DevState<'_> {
    /// Atomically reserves `words` in the ledger iff the budget still has
    /// room; the peak watermark moves with every success. This is the only
    /// way reservations grow, so `peak_reserved <= budget_words` holds for
    /// the whole run.
    fn try_reserve(&self, words: usize) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            if cur + words > self.budget_words {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                cur,
                cur + words,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.peak_reserved.fetch_max(cur + words, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Why a job cannot be placed right now (see [`pick_device`]).
#[derive(Clone, Copy)]
enum NoFit {
    /// Every device's admission window is full: transient backpressure,
    /// resolved by the next completion — no backoff.
    WindowFull,
    /// A window slot exists but the job's reservation exceeds every
    /// device's remaining memory budget: defer with backoff.
    OverBudget,
}

struct Shared<'s> {
    sched: &'s Scheduler,
    devs: Vec<DevState<'s>>,
    pending: Mutex<Pending>,
    /// Signals submitters waiting for queue space.
    space: Condvar,
    /// Signals the dispatcher: new work, closure, or released memory.
    tick: Condvar,
    results: Mutex<Vec<JobOutcome>>,
    submitted: AtomicU64,
    stolen: AtomicU64,
    deferred: AtomicU64,
    busy_rejections: AtomicU64,
    telem: Telemetry,
}

impl<'s> Shared<'s> {
    fn enqueue(&self, p: &mut Pending, job: Job) -> JobId {
        let id = JobId(self.submitted.fetch_add(1, Ordering::Relaxed));
        let now = Instant::now();
        self.sched.trace.instant_with(
            EventKind::Job,
            "submit",
            &[
                ("job", Arg::U64(id.0)),
                ("pending", Arg::U64(p.queue.len() as u64)),
            ],
        );
        flight::record(FlightCode::JobSubmit, id.0, p.queue.len() as u64);
        p.queue.push(PendingJob {
            id,
            job,
            submitted_at: now,
            not_before: now,
            defers: 0,
        });
        self.tick.notify_all();
        id
    }

    fn finish(&self, class: &str, deadline: Option<Duration>, outcome: JobOutcome) {
        self.sched.trace.instant_with(
            EventKind::Job,
            "complete",
            &[
                ("job", Arg::U64(outcome.id.0)),
                ("queue_ms", Arg::F64(outcome.queue_millis)),
                ("exec_ms", Arg::F64(outcome.exec_millis)),
                ("ok", Arg::U64(outcome.result.is_ok() as u64)),
            ],
        );
        self.telem.on_finish(class, deadline, &outcome);
        let finished = {
            let mut r = self.results.lock().unwrap();
            r.push(outcome);
            r.len() as u64
        };
        self.telem.maybe_emit(finished);
        // Memory or an admission slot may have been released: wake the
        // dispatcher for another pass.
        let _p = self.pending.lock().unwrap();
        self.tick.notify_all();
    }
}

/// Dispatch score: static priority, plus waited time in units of the
/// aging constant, plus a deadline-urgency boost. Any job's aging term
/// grows without bound, so no job starves behind a stream of
/// higher-priority arrivals. Shared with [`crate::serve`], whose ranks
/// pick work by the same score so priorities and deadlines keep their
/// meaning after a job migrates.
pub(crate) fn dispatch_score(
    priority: i32,
    deadline: Option<Duration>,
    submitted_at: Instant,
    now: Instant,
    aging: Duration,
) -> f64 {
    let waited = now.saturating_duration_since(submitted_at).as_secs_f64();
    let mut s = priority as f64 + waited / aging.as_secs_f64();
    if let Some(d) = deadline {
        let remaining = d.as_secs_f64() - waited;
        s += if remaining <= 0.0 {
            1e6
        } else {
            1.0 / remaining.max(1e-3)
        };
    }
    s
}

fn score(p: &PendingJob, now: Instant, aging: Duration) -> f64 {
    dispatch_score(p.job.priority, p.job.deadline, p.submitted_at, now, aging)
}

fn backoff(defers: u32) -> Duration {
    let d = BACKOFF_FIRST * 2u32.saturating_pow(defers.min(8));
    d.min(BACKOFF_MAX)
}

fn dispatcher_loop(shared: &Shared<'_>) {
    let sched = shared.sched;
    loop {
        let mut p = shared.pending.lock().unwrap();
        if p.queue.is_empty() {
            if p.closed {
                break;
            }
            p = shared
                .tick
                .wait_timeout(p, Duration::from_millis(1))
                .unwrap()
                .0;
            if p.queue.is_empty() {
                continue;
            }
        }
        let now = Instant::now();
        // Best-scored ready candidate overall, and best that fits a
        // device right now.
        let mut best: Option<(usize, f64)> = None;
        let mut best_nofit = NoFit::WindowFull;
        let mut best_fit: Option<(usize, f64, usize)> = None;
        for (i, cand) in p.queue.iter().enumerate() {
            if cand.not_before > now {
                continue;
            }
            let s = score(cand, now, sched.aging);
            let placement = pick_device(shared, &cand.job);
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
                // Unused when the best candidate fits somewhere.
                best_nofit = placement.err().unwrap_or(NoFit::WindowFull);
            }
            if let Ok(di) = placement {
                if best_fit.is_none_or(|(_, bs, _)| s > bs) {
                    best_fit = Some((i, s, di));
                }
            }
        }
        let Some((best_i, best_s)) = best else {
            // Everything ready is backing off.
            let _ = shared
                .tick
                .wait_timeout(p, Duration::from_micros(200))
                .unwrap();
            continue;
        };
        let mut head_held = false;
        let choice = match best_fit {
            Some((i, s, di)) => {
                let head = &p.queue[best_i];
                let head_aged = now.saturating_duration_since(head.submitted_at)
                    >= sched.aging * AGED_HEAD_FACTOR;
                if i == best_i || s >= best_s || !head_aged {
                    Some((i, di))
                } else {
                    // The aged head must not be bypassed by a
                    // lower-scored job; hold dispatch until it fits.
                    head_held = true;
                    None
                }
            }
            None => None,
        };
        let Some((idx, di)) = choice else {
            // Memory-aware deferral with backoff applies only to a job
            // whose reservation genuinely exceeds the remaining budget
            // (and that has not aged into head-of-line protection).
            // Window-full backpressure is transient: the completion that
            // frees the slot wakes `tick`, so no penalty is recorded.
            if !head_held && matches!(best_nofit, NoFit::OverBudget) {
                let cand = &mut p.queue[best_i];
                cand.not_before = now + backoff(cand.defers);
                cand.defers += 1;
                shared.deferred.fetch_add(1, Ordering::Relaxed);
                shared.telem.deferrals.inc();
                flight::record(FlightCode::JobDefer, cand.id.0, cand.defers as u64);
                sched.trace.instant_with(
                    EventKind::Job,
                    "defer",
                    &[
                        ("job", Arg::U64(cand.id.0)),
                        ("defers", Arg::U64(cand.defers as u64)),
                    ],
                );
            }
            let _ = shared
                .tick
                .wait_timeout(p, Duration::from_micros(200))
                .unwrap();
            continue;
        };
        let cand = p.queue.swap_remove(idx);
        drop(p);
        shared.space.notify_all();
        admit(shared, cand, di);
    }
    // Close the lanes: no more admissions will arrive.
    for dev in &shared.devs {
        dev.done.store(true, Ordering::Release);
        let _q = dev.queues.lock().unwrap();
        dev.work.notify_all();
    }
}

/// The device this job fits right now: reservation ledger has room for
/// its trie words and the admission window has a slot. Ties break to
/// the least-reserved device. `Err` distinguishes transient window
/// backpressure from a genuine memory-budget miss.
fn pick_device(shared: &Shared<'_>, job: &Job) -> Result<usize, NoFit> {
    let sched = shared.sched;
    let mut choice: Option<(usize, usize)> = None;
    let mut window_open = false;
    for (di, dev) in shared.devs.iter().enumerate() {
        if dev.inflight.load(Ordering::Relaxed) >= sched.lanes * sched.admit_window {
            continue;
        }
        window_open = true;
        // Sizing needs the plan; resolve it on this device's session
        // (cached thereafter). A plan failure is surfaced at admission.
        let Ok(plan) = dev.session.plan_for(&job.query) else {
            return Ok(di); // fail fast on any device
        };
        let entries = sched.job_entries(&plan, &job.data);
        let words = dev.session.chain_words(entries);
        let reserved = dev.reserved.load(Ordering::Relaxed);
        if reserved + words > dev.budget_words {
            continue;
        }
        if choice.is_none_or(|(_, r)| reserved < r) {
            choice = Some((di, reserved));
        }
    }
    match choice {
        Some((di, _)) => Ok(di),
        None if window_open => Err(NoFit::OverBudget),
        None => Err(NoFit::WindowFull),
    }
}

fn admit(shared: &Shared<'_>, cand: PendingJob, di: usize) {
    let sched = shared.sched;
    let dev = &shared.devs[di];
    let plan = match dev.session.plan_for(&cand.job.query) {
        Ok(p) => p,
        Err(e) => {
            // Unplannable (empty / disconnected query): an immediate
            // per-job failure, not a scheduler failure.
            shared.finish(
                Telemetry::class_of(&cand.job),
                cand.job.deadline,
                JobOutcome {
                    id: cand.id,
                    name: cand.job.name.clone(),
                    device: di,
                    lane: 0,
                    queue_millis: cand.submitted_at.elapsed().as_secs_f64() * 1e3,
                    exec_millis: 0.0,
                    trie_entries: 0,
                    stolen: false,
                    result: Err(e.into()),
                },
            );
            return;
        }
    };
    let entries = sched.job_entries(&plan, &cand.job.data);
    let words = dev.session.chain_words(entries);
    // `pick_device` said this fits, but a lane growing its trie may have
    // raced in; wait rather than overshoot the ledger.
    while !dev.try_reserve(words) {
        std::thread::sleep(Duration::from_micros(100));
    }
    let reserved = dev.reserved.load(Ordering::Relaxed);
    dev.inflight.fetch_add(1, Ordering::AcqRel);
    flight::record(FlightCode::JobAdmit, cand.id.0, di as u64);
    sched.trace.instant_with(
        EventKind::Job,
        "admit",
        &[
            ("job", Arg::U64(cand.id.0)),
            ("device", Arg::U64(di as u64)),
            ("entries", Arg::U64(entries as u64)),
            ("reserved", Arg::U64(reserved as u64)),
        ],
    );
    let task = Task {
        id: cand.id,
        job: cand.job,
        plan,
        entries,
        reserve_words: words,
        device: di,
        submitted_at: cand.submitted_at,
    };
    let mut queues = dev.queues.lock().unwrap();
    // Shortest deque gets the task (ties to the lowest lane index).
    let lane = (0..queues.len())
        .min_by_key(|&l| queues[l].len())
        .unwrap_or(0);
    queues[lane].push_back(task);
    dev.work.notify_all();
}

fn lane_loop(shared: &Shared<'_>, dev: &DevState<'_>, lane: usize) {
    let sched = shared.sched;
    loop {
        let (task, stolen) = {
            let mut queues = dev.queues.lock().unwrap();
            loop {
                if let Some(t) = queues[lane].pop_front() {
                    break (t, false);
                }
                // Steal from the back of the longest sibling deque.
                let victim = (0..queues.len())
                    .filter(|&l| l != lane && !queues[l].is_empty())
                    .max_by_key(|&l| queues[l].len());
                if let Some(v) = victim {
                    let t = queues[v].pop_back().unwrap();
                    shared.stolen.fetch_add(1, Ordering::Relaxed);
                    shared.telem.steals.inc();
                    flight::record(FlightCode::JobSteal, t.id.0, lane as u64);
                    sched.trace.instant_with(
                        EventKind::Job,
                        "steal",
                        &[
                            ("job", Arg::U64(t.id.0)),
                            ("from_lane", Arg::U64(v as u64)),
                            ("lane", Arg::U64(lane as u64)),
                        ],
                    );
                    break (t, true);
                }
                if dev.done.load(Ordering::Acquire) {
                    return;
                }
                queues = dev
                    .work
                    .wait_timeout(queues, Duration::from_millis(1))
                    .unwrap()
                    .0;
            }
        };
        let queue_millis = task.submitted_at.elapsed().as_secs_f64() * 1e3;
        let exec_start = Instant::now();
        let mut entries = task.entries;
        let mut reserve_words = task.reserve_words;
        let budget_entries = task.plan.trie_entries_budget.max(1);
        // The §5 estimate can undershoot: the chain then grows in place,
        // each appended segment charged to this lane's ledger. Only when
        // the ledger has no room does the job release everything and
        // rerun at the denied target — the same doubling sequence a
        // serial loop takes, so results stay identical.
        let result = loop {
            let ledger = LaneLedger {
                dev,
                granted: AtomicUsize::new(0),
            };
            let r = dev.session.run_with_plan_budgeted(
                &task.plan,
                &task.job.data,
                entries,
                budget_entries,
                &ledger,
            );
            let granted = ledger.granted.load(Ordering::Relaxed);
            match r {
                Ok((r, achieved)) => {
                    entries = achieved;
                    reserve_words += granted;
                    break Ok(r);
                }
                Err(BudgetedRunError::GrowthDenied { target_entries }) => {
                    entries = target_entries;
                    shared.telem.growth_denials.inc();
                    flight::record(FlightCode::GrowthDenied, task.id.0, target_entries as u64);
                    sched.trace.instant_with(
                        EventKind::Job,
                        "grow",
                        &[
                            ("job", Arg::U64(task.id.0)),
                            ("entries", Arg::U64(entries as u64)),
                        ],
                    );
                    // Trade the old reservation (and any in-place growth
                    // grants) for the larger one; holding nothing while
                    // waiting keeps growers from deadlocking each other.
                    dev.reserved
                        .fetch_sub(reserve_words + granted, Ordering::AcqRel);
                    let grown_words = dev.session.chain_words(entries);
                    while !dev.try_reserve(grown_words) {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                    reserve_words = grown_words;
                }
                Err(BudgetedRunError::Engine(e)) => {
                    reserve_words += granted;
                    break Err(CutsError::from(e));
                }
            }
        };
        if let Ok(r) = &result {
            if sched.pacing > 0.0 {
                std::thread::sleep(Duration::from_secs_f64(r.sim_millis * sched.pacing / 1e3));
            }
        }
        let exec_millis = exec_start.elapsed().as_secs_f64() * 1e3;
        dev.reserved.fetch_sub(reserve_words, Ordering::AcqRel);
        dev.inflight.fetch_sub(1, Ordering::AcqRel);
        shared.finish(
            Telemetry::class_of(&task.job),
            task.job.deadline,
            JobOutcome {
                id: task.id,
                name: task.job.name.clone(),
                device: task.device,
                lane,
                queue_millis,
                exec_millis,
                // Failed jobs report no capacity, matching the serial path.
                trie_entries: if result.is_ok() { entries } else { 0 },
                stolen,
                result,
            },
        );
    }
}

/// Charges in-place chain growth to the device's admission ledger.
struct LaneLedger<'a, 'd> {
    dev: &'a DevState<'d>,
    granted: AtomicUsize,
}

impl GrowthLedger for LaneLedger<'_, '_> {
    fn try_grant(&self, words: usize) -> bool {
        if self.dev.try_reserve(words) {
            self.granted.fetch_add(words, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn refund(&self, words: usize) {
        self.dev.reserved.fetch_sub(words, Ordering::AcqRel);
        self.granted.fetch_sub(words, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Job manifests.

/// Parses a graph generator spec: `clique:K`, `chain:K`, `cycle:K`,
/// `star:K`, `mesh:WxH`, or `er:N:M:SEED`.
pub fn parse_graph_spec(spec: &str) -> Result<Graph, CutsError> {
    let bad = || CutsError::Invalid {
        what: "graph spec",
        given: spec.to_string(),
    };
    let (kind, rest) = spec.split_once(':').ok_or_else(bad)?;
    match kind {
        "clique" | "chain" | "cycle" | "star" => {
            let k: usize = rest.parse().map_err(|_| bad())?;
            if k == 0 || k > 64 {
                return Err(bad());
            }
            Ok(match kind {
                "clique" => generators::clique(k),
                "chain" => generators::chain(k),
                "cycle" => generators::cycle(k),
                _ => generators::star(k),
            })
        }
        "mesh" => {
            let (w, h) = rest.split_once('x').ok_or_else(bad)?;
            let w: usize = w.parse().map_err(|_| bad())?;
            let h: usize = h.parse().map_err(|_| bad())?;
            if w == 0 || h == 0 {
                return Err(bad());
            }
            Ok(generators::mesh2d(w, h))
        }
        "er" => {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() != 3 {
                return Err(bad());
            }
            let n: usize = parts[0].parse().map_err(|_| bad())?;
            let m: usize = parts[1].parse().map_err(|_| bad())?;
            let seed: u64 = parts[2].parse().map_err(|_| bad())?;
            Ok(generators::erdos_renyi(n, m, seed))
        }
        _ => Err(bad()),
    }
}

/// Parses a job manifest: one job per line, `#` comments, blank lines
/// ignored. Each line is `<data-spec> <query-spec> [key=val ...]` with
/// options `priority=<i32>`, `deadline_ms=<u64>`, `name=<str>`,
/// `class=<str>` (SLO accounting class), and `repeat=<n>` (submit the
/// job `n` times). Repeated specs share one [`Graph`] allocation.
pub fn parse_manifest(text: &str) -> Result<Vec<Job>, CutsError> {
    let mut graphs: std::collections::HashMap<String, Arc<Graph>> =
        std::collections::HashMap::new();
    let mut intern = |spec: &str| -> Result<Arc<Graph>, CutsError> {
        if let Some(g) = graphs.get(spec) {
            return Ok(g.clone());
        }
        let g = Arc::new(parse_graph_spec(spec)?);
        graphs.insert(spec.to_string(), g.clone());
        Ok(g)
    };
    let mut jobs = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (Some(data_spec), Some(query_spec)) = (fields.next(), fields.next()) else {
            return Err(CutsError::Invalid {
                what: "manifest line",
                given: raw.to_string(),
            });
        };
        let mut job = Job::new(intern(data_spec)?, intern(query_spec)?);
        let mut repeat = 1usize;
        for opt in fields {
            let bad = || CutsError::Invalid {
                what: "manifest option",
                given: opt.to_string(),
            };
            let (key, val) = opt.split_once('=').ok_or_else(bad)?;
            match key {
                "priority" => job.priority = val.parse().map_err(|_| bad())?,
                "deadline_ms" => {
                    job.deadline = Some(Duration::from_millis(val.parse().map_err(|_| bad())?))
                }
                "name" => job.name = Some(val.to_string()),
                "class" => job.class = Some(val.to_string()),
                "repeat" => {
                    repeat = val.parse().map_err(|_| bad())?;
                    if repeat == 0 {
                        return Err(bad());
                    }
                }
                _ => return Err(bad()),
            }
        }
        for _ in 0..repeat {
            jobs.push(job.clone());
        }
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuts_graph::generators::{chain, clique, erdos_renyi, mesh2d, star};

    fn small_sched(lanes: usize) -> Scheduler {
        Scheduler::builder()
            .device_config(DeviceConfig::test_small())
            .lanes(lanes)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_bad_values() {
        assert!(matches!(
            Scheduler::builder().devices(0).build(),
            Err(ConfigError::Invalid {
                field: "devices",
                ..
            })
        ));
        assert!(matches!(
            Scheduler::builder().lanes(0).build(),
            Err(ConfigError::Invalid { field: "lanes", .. })
        ));
        assert!(matches!(
            Scheduler::builder().queue_capacity(0).build(),
            Err(ConfigError::Invalid {
                field: "queue_capacity",
                ..
            })
        ));
        assert!(matches!(
            Scheduler::builder().sigma(0.0).build(),
            Err(ConfigError::Invalid { field: "sigma", .. })
        ));
    }

    #[test]
    fn drains_a_stream_and_reports_outcomes() {
        let sched = small_sched(2);
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let q3 = Arc::new(clique(3));
        let q2 = Arc::new(clique(2));
        let report = sched
            .run(|h| {
                for i in 0..6 {
                    let q = if i % 2 == 0 { q3.clone() } else { q2.clone() };
                    h.submit_wait(Job::new(data.clone(), q));
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.submitted, 6);
        assert_eq!(report.stats.completed, 6);
        assert_eq!(report.outcomes.len(), 6);
        // Outcomes come back in submission order.
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.id, JobId(i as u64));
            assert!(o.result.is_ok());
        }
        // Two distinct queries -> exactly two plan builds; admission and
        // execution passes all hit the cache thereafter.
        assert_eq!(report.stats.plan_misses, 2);
        assert!(report.stats.plan_hits >= 4);
        assert!(report.jobs_per_sec() > 0.0);
        assert!(report.latency_percentile(50.0).is_some());
    }

    #[test]
    fn unplannable_jobs_fail_individually() {
        let sched = small_sched(1);
        let data = Arc::new(clique(4));
        let disconnected = Arc::new(Graph::undirected(4, &[(0, 1), (2, 3)]));
        let fine = Arc::new(clique(3));
        let report = sched
            .run(|h| {
                h.submit_wait(Job::new(data.clone(), disconnected.clone()));
                h.submit_wait(Job::new(data.clone(), fine.clone()));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.completed, 1);
        assert_eq!(report.stats.failed, 1);
        assert!(matches!(
            report.outcomes[0].result,
            Err(CutsError::Engine(crate::EngineError::DisconnectedQuery))
        ));
        assert!(report.outcomes[1].result.is_ok());
    }

    #[test]
    fn score_monotonicity_and_deadline_boost() {
        let aging = Duration::from_millis(5);
        let now = Instant::now();
        let mk = |age: Duration, priority: i32, deadline: Option<Duration>| PendingJob {
            id: JobId(0),
            job: Job {
                name: None,
                class: None,
                data: Arc::new(clique(2)),
                query: Arc::new(clique(2)),
                priority,
                deadline,
            },
            submitted_at: now - age,
            not_before: now,
            defers: 0,
        };
        // Older jobs outscore newer ones at equal priority.
        let old = score(&mk(Duration::from_millis(50), 0, None), now, aging);
        let new = score(&mk(Duration::from_millis(1), 0, None), now, aging);
        assert!(old > new);
        // Ten aging periods equal ten priority levels: bounded starvation.
        let aged = score(&mk(aging * 10, 0, None), now, aging);
        let fresh = score(&mk(Duration::ZERO, 9, None), now, aging);
        assert!(aged > fresh);
        // An overdue deadline dominates everything.
        let overdue = score(
            &mk(
                Duration::from_millis(20),
                -5,
                Some(Duration::from_millis(1)),
            ),
            now,
            aging,
        );
        assert!(overdue > 1e5);
    }

    #[test]
    fn backoff_grows_and_caps() {
        assert!(backoff(0) < backoff(2));
        assert_eq!(backoff(20), BACKOFF_MAX);
    }

    #[test]
    fn busy_backpressure_is_typed() {
        let sched = Scheduler::builder()
            .device_config(DeviceConfig::test_small())
            .lanes(1)
            .queue_capacity(1)
            .admit_window(1)
            .pacing(50.0)
            .build()
            .unwrap();
        let data = Arc::new(mesh2d(4, 4));
        let query = Arc::new(clique(2));
        let report = sched
            .run(|h| {
                let a = Job::new(data.clone(), query.clone());
                h.submit(a).unwrap();
                // Wait until the first job is admitted (pending drains).
                while h.pending() > 0 {
                    std::thread::sleep(Duration::from_micros(100));
                }
                // One lane, window 1: the next job stays pending while
                // the first paces, so a third submission must bounce.
                h.submit(Job::new(data.clone(), query.clone())).unwrap();
                match h.submit(Job::new(data.clone(), query.clone())) {
                    Err(SchedError::Busy { capacity: 1 }) => {}
                    other => panic!("expected Busy, got {other:?}"),
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.submitted, 2);
        assert_eq!(report.stats.completed, 2);
        assert_eq!(report.stats.busy_rejections, 1);
    }

    #[test]
    fn manifest_parses_specs_options_and_repeats() {
        let text = "\n\
            # demo manifest\n\
            er:40:120:7 clique:3 priority=2 repeat=3\n\
            mesh:4x4 chain:3 name=walk deadline_ms=50 # trailing comment\n";
        let jobs = parse_manifest(text).unwrap();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].priority, 2);
        assert!(Arc::ptr_eq(&jobs[0].data, &jobs[1].data), "interned");
        assert_eq!(jobs[3].name.as_deref(), Some("walk"));
        assert_eq!(jobs[3].deadline, Some(Duration::from_millis(50)));
        let classed = parse_manifest("clique:4 clique:3 class=gold").unwrap();
        assert_eq!(classed[0].class.as_deref(), Some("gold"));
        assert!(parse_manifest("er:1:2 clique:3").is_err());
        assert!(parse_manifest("clique:3").is_err());
        assert!(parse_manifest("clique:3 chain:2 bogus=1").is_err());
        assert!(matches!(
            parse_graph_spec("dodecahedron:12"),
            Err(CutsError::Invalid {
                what: "graph spec",
                ..
            })
        ));
    }

    #[test]
    fn job_entries_is_clamped_and_pow2() {
        let sched = small_sched(1);
        let session = ExecSession::new(&sched.devices()[0], EngineConfig::default());
        let plan = session.plan_for(&clique(3)).unwrap();
        let e = sched.job_entries(&plan, &erdos_renyi(30, 90, 7));
        assert!(e >= MIN_TRIE_ENTRIES.min(plan.trie_entries_budget));
        assert!(e <= plan.trie_entries_budget);
        assert!(e == plan.trie_entries_budget || e.is_power_of_two());
    }

    #[test]
    fn saturating_micros_survives_poisoned_latencies() {
        // The live poison case: `.max(0.0)` passed +inf through, and
        // `inf as u64` saturates to u64::MAX µs.
        assert_eq!(saturating_micros(f64::INFINITY), 0);
        assert_eq!(saturating_micros(f64::NEG_INFINITY), 0);
        assert_eq!(saturating_micros(f64::NAN), 0);
        assert_eq!(saturating_micros(-3.5), 0);
        assert_eq!(saturating_micros(0.0), 0);
        // Ordinary latencies convert exactly.
        assert_eq!(saturating_micros(1.5), 1500);
        assert_eq!(saturating_micros(0.001), 1);
        // Finite but absurd values saturate at the cast, not wrap.
        assert_eq!(saturating_micros(1e300), u64::MAX);
    }

    #[test]
    fn saturating_entries_survives_overflowing_estimates() {
        let budget = 1 << 20;
        // Non-finite and absurd estimates route straight to the budget.
        assert_eq!(saturating_entries(f64::INFINITY, budget), budget);
        assert_eq!(saturating_entries(f64::NAN, budget), budget);
        assert_eq!(saturating_entries(1e300, budget), budget);
        assert_eq!(saturating_entries(usize::MAX as f64 * 4.0, budget), budget);
        // Negative / sub-one estimates floor at one entry.
        assert_eq!(saturating_entries(-5.0, budget), 1);
        assert_eq!(saturating_entries(0.3, budget), 1);
        // Small estimates round up to a power of two under the budget.
        assert_eq!(saturating_entries(700.0, budget), 1024);
        assert_eq!(saturating_entries(1024.0, budget), 1024);
        // At or past the budget: exactly the budget, never a wrap to 0.
        assert_eq!(saturating_entries(budget as f64, budget), budget);
        assert_eq!(
            saturating_entries((1u64 << 63) as f64 * 4.0, budget),
            budget
        );
        // Degenerate budget still yields a usable capacity.
        assert_eq!(saturating_entries(f64::INFINITY, 0), 1);
    }

    /// Oracle check against the outcome list: the histogram must report
    /// the class quantile within one log2 sub-bucket (≤ 25% relative
    /// error) above the exact value — the acceptance bound.
    fn assert_slo_brackets_outcomes(report: &SchedReport, class: &str) {
        let slo = report.slo.class(class).expect("class accounted");
        let mut queue: Vec<u64> = Vec::new();
        let mut exec: Vec<u64> = Vec::new();
        for o in &report.outcomes {
            queue.push((o.queue_millis * 1e3) as u64);
            exec.push((o.exec_millis * 1e3) as u64);
        }
        queue.sort_unstable();
        exec.sort_unstable();
        let oracle = |sorted: &[u64], q: f64| {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        for (i, q) in [(0usize, 0.50), (1, 0.95), (2, 0.99)] {
            for (reported, sorted) in [(slo.queue_us[i], &queue), (slo.exec_us[i], &exec)] {
                let exact = oracle(sorted, q);
                assert!(reported >= exact, "q={q}: {reported} < exact {exact}");
                assert!(
                    (reported - exact) as f64 <= (exact as f64 * 0.25).max(3.0),
                    "q={q}: {reported} vs exact {exact} exceeds bucket width"
                );
            }
        }
    }

    #[test]
    fn slo_accounting_per_class() {
        let sched = small_sched(2);
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let gold = Arc::new(clique(3));
        let steel = Arc::new(clique(2));
        let report = sched
            .run(|h| {
                for _ in 0..8 {
                    h.submit_wait(Job::new(data.clone(), gold.clone()).with_class("gold"));
                    h.submit_wait(
                        Job::new(data.clone(), steel.clone())
                            .with_class("steel")
                            .with_deadline(Duration::from_secs(60)),
                    );
                }
                Ok(())
            })
            .unwrap();
        assert!(report.telemetry.is_enabled());
        assert_eq!(report.slo.classes.len(), 2);
        let gold_slo = report.slo.class("gold").unwrap();
        assert_eq!(gold_slo.completed, 8);
        assert_eq!(gold_slo.failed, 0);
        assert_eq!((gold_slo.deadline_hits, gold_slo.deadline_misses), (0, 0));
        // Quantiles are monotone and populated for completed work.
        assert!(gold_slo.exec_us[0] <= gold_slo.exec_us[1]);
        assert!(gold_slo.exec_us[1] <= gold_slo.exec_us[2]);
        let steel_slo = report.slo.class("steel").unwrap();
        assert_eq!(steel_slo.completed, 8);
        // A 60 s deadline on sub-second jobs: every one is a hit.
        assert_eq!((steel_slo.deadline_hits, steel_slo.deadline_misses), (8, 0));
        // The report JSON carries the SLO block.
        let json = report.to_json().render();
        assert!(
            json.contains("\"queue_p99_us\""),
            "slo absent from json: {json}"
        );
        // And the Prometheus snapshot exports the same families.
        let prom = report.telemetry.snapshot().render();
        assert!(prom.contains("cuts_job_queue_us"));
        assert!(prom.contains("class=\"gold\""));
        cuts_obs::validate_exposition(&prom).expect("scrapeable exposition");
    }

    #[test]
    fn slo_quantiles_bracket_outcome_oracle() {
        let sched = small_sched(1);
        let data = Arc::new(erdos_renyi(40, 120, 3));
        let q = Arc::new(clique(3));
        let report = sched
            .run(|h| {
                for _ in 0..20 {
                    h.submit_wait(Job::new(data.clone(), q.clone()).with_class("only"));
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.completed, 20);
        assert_slo_brackets_outcomes(&report, "only");
    }

    #[test]
    fn deadline_misses_are_counted() {
        // Pacing stretches exec time well past a 1 ms deadline.
        let sched = Scheduler::builder()
            .device_config(DeviceConfig::test_small())
            .lanes(1)
            .pacing(100.0)
            .build()
            .unwrap();
        let data = Arc::new(mesh2d(4, 4));
        let q = Arc::new(clique(2));
        let report = sched
            .run(|h| {
                h.submit_wait(
                    Job::new(data.clone(), q.clone())
                        .with_class("tight")
                        .with_deadline(Duration::from_micros(1)),
                );
                Ok(())
            })
            .unwrap();
        let slo = report.slo.class("tight").unwrap();
        assert_eq!((slo.deadline_hits, slo.deadline_misses), (0, 1));
    }

    #[test]
    fn telemetry_off_keeps_results_and_empties_slo() {
        let sched = Scheduler::builder()
            .device_config(DeviceConfig::test_small())
            .lanes(2)
            .telemetry(false)
            .build()
            .unwrap();
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let q = Arc::new(clique(3));
        let report = sched
            .run(|h| {
                h.submit_wait(Job::new(data.clone(), q.clone()));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.completed, 1);
        assert!(!report.telemetry.is_enabled());
        let slo = report.slo.class("default").unwrap();
        assert_eq!(slo.completed, 0, "disabled registry records nothing");
        assert_eq!(slo.queue_us, [0, 0, 0]);
    }

    #[test]
    fn failed_job_writes_parseable_postmortem() {
        let sched = small_sched(1);
        let data = Arc::new(clique(4));
        let disconnected = Arc::new(Graph::undirected(4, &[(0, 1), (2, 3)]));
        let report = sched
            .run(|h| {
                h.submit_wait(Job::new(data.clone(), disconnected.clone()).with_name("bad"));
                h.submit_wait(Job::new(data.clone(), disconnected.clone()).with_name("bad2"));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.failed, 2);
        // One dump per run, not per failure.
        let path = report.postmortem.as_ref().expect("postmortem written");
        let text = std::fs::read_to_string(path).expect("dump readable");
        let (reason, events) = flight::parse_dump(&text).expect("dump parses");
        assert_eq!(reason, "job_failure");
        // The dump holds the failing job's typed lifecycle: at least its
        // submission and the failure itself.
        assert!(events.iter().any(|e| e.code == FlightCode::JobSubmit));
        assert!(events.iter().any(|e| e.code == FlightCode::JobFail));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stats_every_emits_rolling_snapshots() {
        let lines = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink_lines = lines.clone();
        let sched = Scheduler::builder()
            .device_config(DeviceConfig::test_small())
            .lanes(2)
            .stats_every(2)
            .stats_sink(move |line| sink_lines.lock().unwrap().push(line.to_string()))
            .build()
            .unwrap();
        let data = Arc::new(erdos_renyi(30, 90, 7));
        let q = Arc::new(clique(3));
        let report = sched
            .run(|h| {
                for _ in 0..6 {
                    h.submit_wait(Job::new(data.clone(), q.clone()));
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(report.stats.completed, 6);
        let lines = lines.lock().unwrap();
        assert_eq!(lines.len(), 3, "every 2 of 6 completions: {lines:?}");
        for line in lines.iter() {
            let v = Json::parse(line).expect("snapshot line parses");
            let Json::Obj(fields) = &v else {
                panic!("not an object")
            };
            assert!(fields.iter().any(|(k, _)| k == "finished"));
            assert!(fields.iter().any(|(k, _)| k == "slo"));
        }
    }

    #[test]
    fn admission_survives_huge_growth_factor() {
        // A deep chain query on a star data graph: δ = 4000, so the §5
        // estimate is p1 · (δσ)^(l-1) ≈ 1000^102 — infinite in f64. The
        // old `as usize` + next_power_of_two path could wrap before the
        // clamp; admission must instead size at the budget and finish.
        let sched = small_sched(1);
        let data = Arc::new(star(4001));
        let query = Arc::new(chain(103));
        let session = ExecSession::new(&sched.devices()[0], EngineConfig::default());
        let plan = session.plan_for(&query).unwrap();
        assert!(
            !plan.space_estimate(&data, 0.25).is_finite(),
            "test premise: the estimate must overflow f64"
        );
        let e = sched.job_entries(&plan, &data);
        assert_eq!(e, plan.trie_entries_budget);
        // End-to-end: the job admits and completes (zero matches — the
        // star has no 103-vertex path).
        let report = sched
            .run(|h| {
                h.submit_wait(Job::new(data.clone(), query.clone()));
                Ok(())
            })
            .unwrap();
        assert_eq!(report.outcomes.len(), 1);
        let r = report.outcomes[0].result.as_ref().unwrap();
        assert_eq!(r.num_matches, 0);
    }
}
