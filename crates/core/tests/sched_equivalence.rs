//! Scheduler semantics: lane-count equivalence with the serial loop,
//! starvation-freedom under an adversarial priority mix, and the
//! memory-admission invariant.

use std::time::Duration;

use cuts_core::prelude::*;
use cuts_core::sched::Job;
use cuts_gpu_sim::DeviceConfig;
use cuts_graph::generators;

/// A mixed stream: cheap and expensive jobs, repeated queries (plan-cache
/// hits), one under-estimated job that forces the growth-retry path, and
/// one unplannable job that must fail identically everywhere.
fn job_mix() -> Vec<Job> {
    let mesh = std::sync::Arc::new(generators::mesh2d(8, 8));
    let er = std::sync::Arc::new(generators::erdos_renyi(64, 200, 1));
    let tricky = std::sync::Arc::new(generators::erdos_renyi(48, 140, 7));
    let clique3 = std::sync::Arc::new(generators::clique(3));
    let chain4 = std::sync::Arc::new(generators::chain(4));
    let chain5 = std::sync::Arc::new(generators::chain(5));
    let disconnected = std::sync::Arc::new(cuts_graph::Graph::undirected(4, &[(0, 1), (2, 3)]));
    let mut jobs = Vec::new();
    for i in 0..4 {
        jobs.push(Job::new(mesh.clone(), clique3.clone()).with_priority(i));
    }
    for _ in 0..3 {
        jobs.push(Job::new(er.clone(), chain4.clone()));
    }
    // Undershoots the §5 estimate: exercises deterministic trie growth.
    jobs.push(Job::new(tricky.clone(), chain5.clone()));
    jobs.push(Job::new(mesh.clone(), chain4.clone()).with_deadline(Duration::from_millis(50)));
    jobs.push(Job::new(er, clique3).with_name("last"));
    jobs.push(Job::new(mesh, disconnected).with_name("unplannable"));
    jobs
}

fn drain(scheduler: &Scheduler, jobs: &[Job]) -> SchedReport {
    scheduler
        .run(|h| {
            for job in jobs.iter().cloned() {
                h.submit_wait(job);
            }
            Ok(())
        })
        .unwrap()
}

#[test]
fn lane_counts_are_byte_identical_to_serial() {
    let jobs = job_mix();
    let serial = Scheduler::builder()
        .build()
        .unwrap()
        .run_serial(&jobs)
        .unwrap();
    assert_eq!(serial.outcomes.len(), jobs.len());
    assert_eq!(serial.stats.failed, 1); // only the unplannable job

    for lanes in [1usize, 2, 4] {
        let scheduler = Scheduler::builder().lanes(lanes).build().unwrap();
        let report = drain(&scheduler, &jobs);
        assert_eq!(report.outcomes.len(), jobs.len(), "{lanes} lanes");
        assert_eq!(report.stats.failed, 1, "{lanes} lanes");
        for (a, b) in serial.outcomes.iter().zip(&report.outcomes) {
            assert_eq!(a.id, b.id);
            assert_eq!(
                a.trie_entries, b.trie_entries,
                "job {:?} sized differently at {lanes} lanes",
                a.id
            );
            match (&a.result, &b.result) {
                (Ok(x), Ok(y)) => assert_eq!(
                    x.canonical_bytes(),
                    y.canonical_bytes(),
                    "job {:?} diverged at {lanes} lanes",
                    a.id
                ),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("outcome kind diverged at {lanes} lanes: {a:?} vs {b:?}"),
            }
        }
    }
}

/// An adversarial mix: one low-priority job submitted first, then a
/// steady stream of fresh high-priority jobs. With aging enabled the old
/// job's score grows past any static priority, so it is picked up long
/// before the stream drains; with aging effectively disabled it waits for
/// the whole stream.
#[test]
fn aging_prevents_priority_starvation() {
    let data = std::sync::Arc::new(generators::erdos_renyi(32, 120, 5));
    let clique = std::sync::Arc::new(generators::clique(3));

    let run_with = |aging: Duration| -> (f64, f64) {
        let scheduler = Scheduler::builder()
            .lanes(1)
            .queue_capacity(128)
            .aging(aging)
            .pacing(40.0)
            .build()
            .unwrap();
        let report = scheduler
            .run(|h| {
                // Pre-load enough high-priority work that the lone lane
                // and the admission window are saturated before the
                // victim arrives — it can never be dispatched on an
                // empty queue.
                for _ in 0..6 {
                    h.submit_wait(Job::new(data.clone(), clique.clone()).with_priority(2));
                }
                h.submit_wait(
                    Job::new(data.clone(), clique.clone())
                        .with_priority(-2)
                        .with_name("victim"),
                );
                // Staggered arrivals: each newcomer is fresher than the
                // victim, so only aging can ever rank the victim first.
                for _ in 0..30 {
                    h.submit_wait(Job::new(data.clone(), clique.clone()).with_priority(2));
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(())
            })
            .unwrap();
        let victim = report
            .outcomes
            .iter()
            .find(|o| o.name.as_deref() == Some("victim"))
            .expect("victim completes");
        assert!(victim.result.is_ok());
        (victim.queue_millis, report.wall_millis)
    };

    let (aged_wait, _) = run_with(Duration::from_millis(1));
    let (starved_wait, starved_wall) = run_with(Duration::from_secs(3600));
    // Without aging the victim is picked last — its wait is essentially
    // the whole stream; with 1 ms aging it overtakes fresh arrivals.
    assert!(
        starved_wait > 0.5 * starved_wall,
        "victim should drain last without aging: waited {starved_wait:.1} of {starved_wall:.1} ms"
    );
    assert!(
        aged_wait * 1.5 < starved_wait,
        "aging should rescue the victim: {aged_wait:.1} ms vs {starved_wait:.1} ms"
    );
}

/// Arena discipline end to end: once every device's arena is carved and
/// the warmup stream has drained, a full follow-up stream — including the
/// growth-retry job — must be served purely by slab recycling, with not
/// one further call into the device allocator.
#[test]
fn warm_scheduler_stream_performs_zero_device_allocations() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let jobs = job_mix();
    let scheduler = Scheduler::builder().lanes(2).devices(2).build().unwrap();
    let warm_allocs = AtomicU64::new(0);
    let report = scheduler
        .run(|h| {
            // Warmup pass: same job shapes as the main stream, so every
            // plan is cached and every arena is carved.
            for job in jobs.iter().cloned() {
                h.submit_wait(job);
            }
            while h.pending() > 0 || h.inflight() > 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let carved: u64 = scheduler.devices().iter().map(|d| d.alloc_calls()).sum();
            warm_allocs.store(carved, Ordering::SeqCst);
            // Main stream: every trie acquire, growth, and release below
            // must be pure slab-bitmap traffic.
            for _ in 0..3 {
                for job in jobs.iter().cloned() {
                    h.submit_wait(job);
                }
            }
            Ok(())
        })
        .unwrap();

    let warm = warm_allocs.load(Ordering::SeqCst);
    assert!(warm > 0, "carving the arenas must allocate");
    let after: u64 = scheduler.devices().iter().map(|d| d.alloc_calls()).sum();
    assert_eq!(
        after, warm,
        "warm stream must not touch the device allocator"
    );
    // The stream itself behaved normally (only the unplannable job fails).
    assert_eq!(report.stats.failed, 4);
    assert_eq!(
        report.stats.completed + report.stats.failed,
        4 * jobs.len() as u64
    );
}

/// Memory-aware admission: a device with a tiny budget, fed jobs whose
/// estimates clamp to the whole budget, must defer (not fail) and keep the
/// reservation ledger inside the budget at all times.
#[test]
fn admission_never_exceeds_the_budget() {
    let device = DeviceConfig::test_small().with_global_mem_words(1 << 16);
    let jobs = {
        let big_data = std::sync::Arc::new(generators::erdos_renyi(128, 1024, 3));
        let small_data = std::sync::Arc::new(generators::mesh2d(4, 4));
        let clique4 = std::sync::Arc::new(generators::clique(4));
        let clique3 = std::sync::Arc::new(generators::clique(3));
        let mut jobs = Vec::new();
        for _ in 0..4 {
            jobs.push(Job::new(big_data.clone(), clique4.clone()));
            jobs.push(Job::new(small_data.clone(), clique3.clone()));
        }
        jobs
    };
    let scheduler = Scheduler::builder()
        .device_config(device)
        .lanes(2)
        .pacing(10.0)
        .build()
        .unwrap();
    let report = drain(&scheduler, &jobs);
    eprintln!(
        "stats: deferred={} peak={:?} budget={:?} failed={} entries={:?}",
        report.stats.deferred,
        report.stats.peak_reserved_words,
        report.stats.budget_words,
        report.stats.failed,
        report
            .outcomes
            .iter()
            .map(|o| o.trie_entries)
            .collect::<Vec<_>>()
    );
    assert_eq!(report.stats.completed, jobs.len() as u64);
    for (peak, budget) in report
        .stats
        .peak_reserved_words
        .iter()
        .zip(&report.stats.budget_words)
    {
        assert!(
            peak <= budget,
            "reservation ledger overshot: {peak} > {budget}"
        );
    }
    // The big jobs cannot share the device: admission must have deferred.
    assert!(report.stats.deferred > 0, "expected memory deferrals");
}
